//! The paper's motivating scenario (Example 1): summarizing IP flow data
//! and answering ad-hoc traffic questions from the summary.
//!
//! Generates a synthetic flow table (sources × destinations in a prefix
//! hierarchy, heavy-tailed volumes), builds a 2 000-key structure-aware
//! summary with the two-pass I/O-efficient algorithm, and estimates
//! "traffic between subnet ranges" queries against the exact answer.
//!
//! ```sh
//! cargo run --release --example network_flows
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use structure_aware_sampling::data::NetworkConfig;
use structure_aware_sampling::sampling::two_pass;
use structure_aware_sampling::structures::product::BoxRange;
use structure_aware_sampling::summaries::exact::{ExactEngine, SampleSummary};
use structure_aware_sampling::summaries::RangeSumSummary;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let cfg = NetworkConfig {
        bits: 16,
        flows: 120_000,
        ..Default::default()
    };
    let data = cfg.generate(&mut rng);
    let exact = ExactEngine::new(&data);
    println!(
        "flow table: {} (src,dst) pairs, total volume {:.3e}",
        data.len(),
        exact.total()
    );

    // Two read-only passes, O(s') memory — the summary a collector can
    // build without holding the flow table.
    let s = 2_000;
    let sample = two_pass::sample_product(&data, s, 5, &mut rng);
    let summary = SampleSummary::new("aware", &sample, &data);
    println!("built {s}-key structure-aware summary (two-pass, guide factor 5)\n");

    // Ad-hoc analysis: traffic between address ranges ("subnets").
    let side = 1u64 << 16;
    let queries = [
        ("whole matrix", BoxRange::xy(0, side - 1, 0, side - 1)),
        (
            "top-left /2 × /2",
            BoxRange::xy(0, side / 4 - 1, 0, side / 4 - 1),
        ),
        (
            "src /4 slice",
            BoxRange::xy(side / 2, side / 2 + side / 16 - 1, 0, side - 1),
        ),
        (
            "dst /4 slice",
            BoxRange::xy(0, side - 1, side / 4, side / 4 + side / 16 - 1),
        ),
        ("small subnet pair", BoxRange::xy(1000, 1255, 2000, 2255)),
    ];
    println!(
        "{:<22}{:>14}{:>14}{:>10}",
        "query", "truth", "estimate", "rel.err"
    );
    for (name, q) in &queries {
        let truth = exact.box_sum(q);
        let est = summary.estimate_box(q);
        let rel = if truth > 0.0 {
            (est - truth).abs() / truth
        } else {
            est.abs()
        };
        println!(
            "{name:<22}{truth:>14.3e}{est:>14.3e}{rel:>9.2}%",
            rel = rel * 100.0
        );
    }

    // Samples also answer questions no dedicated summary can: e.g. "show me
    // representative flows above the threshold in this subnet".
    let subnet = BoxRange::xy(0, side / 4 - 1, 0, side - 1);
    let mut reps: Vec<_> = sample
        .iter()
        .filter(|e| data.point_of(e.key).is_some_and(|p| subnet.contains(p)))
        .take(5)
        .collect();
    reps.sort_by(|a, b| b.adjusted_weight.total_cmp(&a.adjusted_weight));
    println!("\nrepresentative flows from the top-left source quadrant:");
    for e in reps {
        println!(
            "  key {:>10}: adjusted volume {:.3e}",
            e.key, e.adjusted_weight
        );
    }
}
