//! The save → merge → query workflow: summaries as durable artifacts.
//!
//! Two workers each summarize their shard of a stream and persist the
//! result as a binary frame; a separate merge step — which could run in
//! another process, on another machine, at another time — loads the
//! frames, combines them with the structure-aware threshold merge, and
//! answers range queries without ever seeing the original data.
//!
//! ```sh
//! cargo run --release --example save_merge_query
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::core::{total_weight, WeightedKey};
use structure_aware_sampling::sampling::order;
use structure_aware_sampling::summaries::{decode_summary, encode_summary, StoredSample};

fn main() {
    // A heavy-tailed 1-D stream, split across two workers by key range.
    let data: Vec<WeightedKey> = (0..100_000u64)
        .map(|k| {
            let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
            let w = 0.5 + (h % 997) as f64 / 10.0 + if h % 53 == 0 { 500.0 } else { 0.0 };
            WeightedKey::new(k, w)
        })
        .collect();
    let (left, right) = data.split_at(data.len() / 2);
    let budget = 2_000;

    // --- worker phase: sample each shard, persist the summary -------------
    let dir = std::env::temp_dir().join(format!("sas-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    for (i, shard) in [left, right].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let sample = order::sample(shard, budget, &mut rng);
        let frame = encode_summary(&StoredSample::one_dim(sample));
        let path = dir.join(format!("shard.{i}.sas"));
        std::fs::write(&path, &frame).expect("write frame");
        println!(
            "worker {i}: wrote {} bytes to {}",
            frame.len(),
            path.display()
        );
    }

    // --- merge phase: no access to `data`, only to the two files ----------
    let mut rng = StdRng::seed_from_u64(7);
    let mut merged =
        decode_summary(&std::fs::read(dir.join("shard.0.sas")).unwrap()).expect("decode shard 0");
    let other =
        decode_summary(&std::fs::read(dir.join("shard.1.sas")).unwrap()).expect("decode shard 1");
    merged
        .merge_in_place(other, Some(budget), &mut rng)
        .expect("same-kind merge");
    println!(
        "merged: {} entries, kind {}, τ = {:.3}",
        merged.item_count(),
        merged.kind(),
        merged.tau().unwrap_or(0.0),
    );

    // --- query phase -------------------------------------------------------
    let truth_total = total_weight(&data);
    let est_total = merged.range_sum(&[(0, u64::MAX)]);
    println!("total:      estimate {est_total:.1} vs truth {truth_total:.1} (conserved exactly)");
    assert!((est_total - truth_total).abs() / truth_total < 1e-9);

    for (lo, hi) in [(10_000u64, 39_999u64), (45_000, 55_000), (80_000, 99_999)] {
        let truth: f64 = data
            .iter()
            .filter(|wk| (lo..=hi).contains(&wk.key))
            .map(|wk| wk.weight)
            .sum();
        let est = merged.range_sum(&[(lo, hi)]);
        println!(
            "[{lo:>6}, {hi:>6}]: estimate {est:>12.1} vs truth {truth:>12.1} ({:+.3}%)",
            (est - truth) / truth * 100.0
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
