//! Higher-level analysis from summaries alone: heavy hitters, hierarchical
//! heavy hitters, quantiles, and a two-period comparison — the paper's
//! Section 1 workflow ("one table per hour, keep a compact summary of
//! each, analyze from the summaries").
//!
//! ```sh
//! cargo run --release --example traffic_analysis
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use structure_aware_sampling::apps::{compare, heavy_hitters, quantiles};
use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::sampling;
use structure_aware_sampling::structures::hierarchy::HierarchyBuilder;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);

    // A /8-style hierarchy over 4096 "addresses": 16 prefixes × 256 hosts.
    let mut b = HierarchyBuilder::new();
    let root = b.root();
    let mut key = 0u64;
    for _ in 0..16 {
        let prefix = b.add_internal(root);
        for _ in 0..256 {
            b.add_leaf(prefix, key);
            key += 1;
        }
    }
    let h = b.build();

    // Hour 1: background noise + one hot host + one diffusely hot prefix.
    use rand::Rng;
    let mut hour1: Vec<WeightedKey> = (0..key)
        .map(|k| WeightedKey::new(k, rng.gen_range(0.1..1.0)))
        .collect();
    hour1[777] = WeightedKey::new(777, 800.0); // hot host
    for k in 1024..1280 {
        hour1[k as usize] = WeightedKey::new(k, 3.0); // hot prefix #4 (diffuse)
    }

    // Hour 2: the hot prefix doubles; the hot host disappears.
    let mut hour2 = hour1.clone();
    hour2[777] = WeightedKey::new(777, 1.0);
    for k in 1024..1280 {
        hour2[k as usize] = WeightedKey::new(k, 6.0);
    }

    // Keep only 300-key structure-aware summaries of each hour.
    let s = 300;
    let smp1 = sampling::hierarchy::sample(&hour1, &h, s, &mut rng);
    let smp2 = sampling::hierarchy::sample(&hour2, &h, s, &mut rng);
    println!("summaries: two hours x {s} keys (data discarded)\n");

    // 1. Heavy hitters of hour 1.
    println!("hour-1 heavy hitters (phi = 0.05):");
    for hh in heavy_hitters::heavy_hitters(&smp1, 0.05) {
        println!("  host {:>5}: ~{:.0}", hh.key, hh.estimate);
    }

    // 2. Hierarchical heavy hitters: the diffuse prefix only shows up here.
    println!("\nhour-1 hierarchical heavy hitters (phi = 0.15):");
    for hhh in heavy_hitters::hierarchical_heavy_hitters(&smp1, &h, 0.15) {
        let span = h.leaf_span(hhh.node);
        println!(
            "  node over hosts [{}, {}]: ~{:.0} (after discounting descendants)",
            span.lo, span.hi, hhh.discounted_estimate
        );
    }

    // 3. Order statistics: median traffic of prefix #4's hosts.
    let med = quantiles::subset_quantile(&smp1, 0.5, |k| (1024..1280).contains(&k), |k| k as f64);
    println!("\nmedian host id within the hot prefix: {med:?} (true center 1151)");

    // 4. Longitudinal comparison: did prefix #4 really grow?
    let cmp = compare::compare_subset(&smp1, &smp2, |k| (1024..1280).contains(&k), 0.05);
    println!(
        "\nprefix #4 hour-over-hour: {:.0} -> {:.0} (Δ ~{:+.0}, 95% CI [{:+.0}, {:+.0}])",
        cmp.before, cmp.after, cmp.delta, cmp.ci.0, cmp.ci.1
    );
    let grew = cmp.ci.0 > 0.0;
    println!(
        "growth statistically significant: {}",
        if grew { "YES" } else { "no" }
    );

    let host_cmp = compare::compare_subset(&smp1, &smp2, |k| k == 777, 0.05);
    println!(
        "host 777 hour-over-hour: {:.0} -> {:.0} (disappearing heavy hitter)",
        host_cmp.before, host_cmp.after
    );
}
