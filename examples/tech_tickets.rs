//! Tech-ticket analysis: product of two hierarchies (trouble codes ×
//! network locations), comparing structure-aware and oblivious samples on
//! hierarchy-aligned queries.
//!
//! Subtrees of each hierarchy map to contiguous coordinate intervals
//! (mixed-radix path encoding), so "all tickets with trouble code under
//! node X at locations under node Y" is a box query.
//!
//! ```sh
//! cargo run --release --example tech_tickets
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::data::TicketConfig;
use structure_aware_sampling::sampling::two_pass;
use structure_aware_sampling::structures::product::BoxRange;
use structure_aware_sampling::summaries::exact::{ExactEngine, SampleSummary};
use structure_aware_sampling::summaries::RangeSumSummary;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let cfg = TicketConfig {
        tickets: 150_000,
        ..Default::default()
    };
    let (trouble_domain, location_domain) = cfg.domains();
    let data = cfg.generate(&mut rng);
    let exact = ExactEngine::new(&data);
    println!(
        "tickets: {} distinct (code, location) pairs; domains {trouble_domain} × {location_domain}",
        data.len()
    );

    let s = 3_000;
    let aware = SampleSummary::new(
        "aware",
        &two_pass::sample_product(&data, s, 5, &mut rng),
        &data,
    );
    let obliv = SampleSummary::new(
        "obliv",
        &VarOptSampler::sample_slice(s, &data.keys, &mut rng),
        &data,
    );

    // Hierarchy-aligned queries: top-level trouble subtree c crossed with
    // top-level location subtree l.
    let t_sub = trouble_domain / 16; // 16 first-level trouble children
    let l_sub = location_domain / 16;
    println!(
        "\n{:<28}{:>13}{:>13}{:>13}",
        "trouble-subtree × loc-subtree", "truth", "aware", "obliv"
    );
    let mut aware_err = 0.0;
    let mut obliv_err = 0.0;
    let mut shown = 0;
    for c in 0..16u64 {
        for l in 0..16u64 {
            let q = BoxRange::xy(
                c * t_sub,
                (c + 1) * t_sub - 1,
                l * l_sub,
                (l + 1) * l_sub - 1,
            );
            let truth = exact.box_sum(&q);
            let ea = aware.estimate_box(&q);
            let eo = obliv.estimate_box(&q);
            aware_err += (ea - truth).abs();
            obliv_err += (eo - truth).abs();
            if truth > 0.0 && shown < 8 {
                println!(
                    "code[{c:>2}] × loc[{l:>2}]           {truth:>13.3e}{ea:>13.3e}{eo:>13.3e}"
                );
                shown += 1;
            }
        }
    }
    println!(
        "\nsummed |error| over all 256 subtree pairs: aware {aware_err:.3e}, obliv {obliv_err:.3e} ({:.1}x)",
        obliv_err / aware_err
    );
}
