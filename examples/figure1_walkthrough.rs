//! Reproduces the paper's Figure 1 / Example 2: structure-aware sampling
//! over a 10-leaf hierarchy with sample size s = 4.
//!
//! Weights 3,6,4,7,1,8,4,2,3,2 give τ = 10 and IPPS probabilities
//! 0.3,0.6,0.4,0.7,0.1,0.8,0.4,0.2,0.3,0.2. The hierarchy sampler
//! guarantees that the number of sampled leaves under EVERY internal node
//! is the floor or ceiling of its expectation.
//!
//! ```sh
//! cargo run --release --example figure1_walkthrough
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::sampling::hierarchy;
use structure_aware_sampling::sampling::IppsSetup;
use structure_aware_sampling::structures::hierarchy::figure1_hierarchy;

fn main() {
    let h = figure1_hierarchy();
    let weights = [3.0, 6.0, 4.0, 7.0, 1.0, 8.0, 4.0, 2.0, 3.0, 2.0];
    let data: Vec<WeightedKey> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| WeightedKey::new(i as u64 + 1, w))
        .collect();

    let setup = IppsSetup::compute(&data, 4);
    println!("IPPS threshold τ = {} (paper: 10)", setup.tau);
    println!("leaf  weight  probability");
    for wk in &data {
        println!(
            "{:>4}  {:>6}  {:.1}",
            wk.key,
            wk.weight,
            setup.probability_of(wk.key)
        );
    }

    // Draw a few samples; verify the per-node floor/ceiling property.
    for seed in 0..5 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = hierarchy::sample(&data, &h, 4, &mut rng);
        let mut keys: Vec<u64> = sample.keys().collect();
        keys.sort_unstable();
        println!("\nseed {seed}: sample = {keys:?}");
        for node in h.internal_nodes() {
            let under: Vec<u64> = h.keys_under(node).collect();
            let expected: f64 = under.iter().map(|&k| setup.probability_of(k)).sum();
            let actual = keys.iter().filter(|k| under.contains(k)).count();
            let ok = (actual as f64 - expected).abs() < 1.0;
            println!(
                "  node over {:?}: expected {expected:.1}, sampled {actual} {}",
                (under.first().unwrap(), under.last().unwrap()),
                if ok { "✓" } else { "✗ DISCREPANCY ≥ 1!" }
            );
            assert!(ok, "discrepancy guarantee violated");
        }
    }
    println!("\nEvery internal node holds ⌊p(v)⌋ or ⌈p(v)⌉ samples — Δ < 1, as in the paper.");
}
