//! Quickstart: summarize a weighted data set three ways and compare range
//! estimates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::sampling;
use structure_aware_sampling::structures::order::Interval;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A weighted data set over an ordered domain: keys 0..10_000 (think
    // timestamps or sorted account ids) with heavy-tailed weights.
    let data: Vec<WeightedKey> = (0..10_000u64)
        .map(|k| {
            let w = if rng.gen_bool(0.01) {
                rng.gen_range(100.0..1000.0)
            } else {
                rng.gen_range(0.1..5.0)
            };
            WeightedKey::new(k, w)
        })
        .collect();
    let total: f64 = data.iter().map(|wk| wk.weight).sum();
    println!("data: {} keys, total weight {total:.1}", data.len());

    let s = 200;

    // 1. Structure-aware sample over the order (Δ < 2 on every interval).
    let aware = sampling::order::sample(&data, s, &mut rng);

    // 2. Structure-oblivious VarOpt (the classic baseline).
    let obliv = VarOptSampler::sample_slice(s, &data, &mut rng);

    // 3. I/O-efficient two-pass variant (O(s') memory, streaming passes).
    let two_pass = sampling::two_pass::sample_order(&data, s, 5, |k| k, &mut rng);

    println!(
        "samples built: aware={} obliv={} two_pass={} keys (all exactly s={s})",
        aware.len(),
        obliv.len(),
        two_pass.len()
    );

    // Estimate a few range sums and compare against the truth. Any subset
    // works — here, intervals of the key order.
    println!(
        "\n{:<22}{:>12}{:>12}{:>12}{:>12}",
        "range", "truth", "aware", "obliv", "two-pass"
    );
    for (lo, hi) in [(0, 999), (2_000, 4_999), (5_000, 9_999), (9_900, 9_999)] {
        let iv = Interval::new(lo, hi);
        let truth: f64 = data
            .iter()
            .filter(|wk| iv.contains(wk.key))
            .map(|wk| wk.weight)
            .sum();
        let est =
            |s: &structure_aware_sampling::core::Sample| s.subset_estimate(|k| iv.contains(k));
        println!(
            "[{lo:>5}, {hi:>5}]      {truth:>12.1}{:>12.1}{:>12.1}{:>12.1}",
            est(&aware),
            est(&obliv),
            est(&two_pass)
        );
    }

    // The discrepancy guarantee in action: every interval of the aware
    // sample deviates from its expected sample count by less than 2.
    let mut worst: f64 = 0.0;
    for lo in (0..10_000).step_by(251) {
        for hi in (lo..10_000).step_by(251) {
            let d = sampling::order::interval_discrepancy(
                &aware,
                &data,
                s,
                Interval::new(lo, hi),
                |k| k,
            );
            worst = worst.max(d);
        }
    }
    println!("\nworst interval discrepancy of the aware sample: {worst:.3} (guarantee: < 2)");
}
