//! Offline stand-in for [`proptest` 1.x](https://docs.rs/proptest): the API
//! surface this workspace's property suites use. The build environment has no
//! registry access, so the workspace vendors this minimal implementation
//! instead of the real crate (see README § Vendored dependencies).
//!
//! Implemented: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], range and tuple
//! strategies, `prop::collection::vec`, [`strategy::Just`] and
//! [`Strategy::prop_map`].
//!
//! Semantics deliberately differ from real proptest in two ways:
//!
//! * **deterministic**: every run draws from a fixed RNG seed (mixed with the
//!   per-test case index), so suites pass or fail reproducibly — CI never sees
//!   a flaky property;
//! * **no shrinking**: a failing case reports its inputs via the panic
//!   message (all `prop_assert!`s here format their context eagerly) but is
//!   not minimized.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies (no shrink trees — generation only).

    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike real proptest there is no `ValueTree`: strategies produce final
    /// values directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform in `size` (half-open, like real proptest's `1..80`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case-driving loop behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property (default 256, like proptest).
        pub cases: u32,
        /// Base RNG seed; each case `i` uses `seed ⊕ mix(i)`.
        pub rng_seed: u64,
    }

    /// Fixed base seed: property suites must be reproducible in CI.
    pub const DEFAULT_RNG_SEED: u64 = 0x53A5_C0DE_D011_A12D;

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                rng_seed: DEFAULT_RNG_SEED,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases (the only constructor the
        /// workspace uses).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    /// Runs a property once per case with a per-case deterministic RNG.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner for the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per configured case. The closure panics on
        /// failure (see `prop_assert!`); `Err(())` means "assumption
        /// rejected, don't count this case".
        pub fn run(&mut self, mut case: impl FnMut(&mut StdRng, u32) -> Result<(), ()>) {
            let mut rejected = 0u32;
            let mut i = 0u32;
            let mut executed = 0u32;
            while executed < self.config.cases {
                // Cap total draws so a strategy whose assumptions almost
                // always fail terminates with a clear message.
                if i >= self.config.cases.saturating_mul(20) {
                    panic!(
                        "proptest stand-in: too many rejected cases \
                         ({rejected} rejections for {executed} accepted)"
                    );
                }
                let mut rng = StdRng::seed_from_u64(
                    self.config.rng_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                match case(&mut rng, i) {
                    Ok(()) => executed += 1,
                    Err(()) => rejected += 1,
                }
                i += 1;
            }
        }
    }
}

pub mod prelude {
    //! Everything the workspace's suites import via `use proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec(..)` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

pub use strategy::Strategy;

/// Defines property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(|__proptest_rng, __proptest_case| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                // Shadow so the case body can't accidentally reuse the
                // generation RNG non-deterministically across cases.
                let _ = __proptest_case;
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property; panics with the formatted message.
///
/// (Real proptest returns a `TestCaseError` to drive shrinking; this
/// stand-in has no shrinking, so a panic is equivalent.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -1.5f64..2.5) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn vec_respects_size_and_maps(v in prop::collection::vec(0.0f64..1.0, 3..7)
            .prop_map(|xs| xs.into_iter().map(|x| x * 2.0).collect::<Vec<_>>()))
        {
            prop_assert!((3..7).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..2.0).contains(x));
            }
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..100, 0u32..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0.0f64..1.0, 1..20);
        let collect = || {
            let mut out = Vec::new();
            let mut runner = crate::test_runner::TestRunner::new(
                crate::test_runner::ProptestConfig::with_cases(10),
            );
            runner.run(|rng, _| {
                out.push(strat.generate(rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        #[should_panic]
        fn failures_surface_as_panics(x in 0u64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
