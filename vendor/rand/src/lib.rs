//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8): the exact API
//! surface this workspace uses, nothing more. The build environment has no
//! registry access, so the workspace vendors this minimal implementation
//! instead of the real crate (see README § Vendored dependencies).
//!
//! Implemented: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`from_seed`, `seed_from_u64`), and [`rngs::StdRng`] backed by
//! xoshiro256** seeded through SplitMix64. Streams differ from the real
//! `StdRng` (ChaCha12), but every consumer in this workspace only requires a
//! deterministic, well-mixed, seedable generator.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64 so that
    /// nearby integer seeds yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (so `&mut StdRng` and trait objects work like in real rand).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` over its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the given (half-open or inclusive) range.
    ///
    /// Panics if the range is empty, matching rand 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`, matching rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types samplable uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. Caller guarantees `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Samples uniformly from `[low, high]`. Caller guarantees `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add(bounded_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Unbiased sampling of `[0, bound)` via Lemire's multiply-shift rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let u = <$t as Standard>::sample(rng);
                let v = low + (high - low) * u;
                if v < high {
                    v
                } else {
                    // FP rounding landed on `high` (possible whenever the ULP
                    // at `high` exceeds span × 2⁻⁵³); step one ULP below it
                    // to keep the range half-open.
                    let below = if high > 0.0 {
                        <$t>::from_bits(high.to_bits() - 1)
                    } else if high < 0.0 {
                        <$t>::from_bits(high.to_bits() + 1)
                    } else {
                        -<$t>::from_bits(1) // largest value below ±0.0
                    };
                    <$t>::max(low, below)
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                low + (high - low) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Same API as rand 0.8's `StdRng` (which is ChaCha12); the stream
    /// differs, which is fine — no consumer depends on exact draws, only on
    /// determinism for a fixed seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point of xoshiro; displace it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_half_open_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_low = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..7);
            assert!((3..7).contains(&x));
            seen_low |= x == 3;
        }
        assert!(seen_low);
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1_000 {
            match rng.gen_range(0usize..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_range_float_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_float_half_open_when_ulp_exceeds_span() {
        // At 1e16 the f64 ULP is 2.0, equal to the span: naive scaling
        // rounds to `high` about half the time. The contract is half-open.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let x = rng.gen_range(1e16f64..(1e16 + 2.0));
            assert!(x < 1e16 + 2.0, "gen_range returned the excluded endpoint");
            assert!(x >= 1e16);
        }
        // Tiny span just below zero: the step-below-±0.0 branch.
        for _ in 0..1_000 {
            let x = rng.gen_range(-f64::MIN_POSITIVE..0.0);
            assert!(x < 0.0);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "gen_bool(0.3) frequency {frac}");
    }

    #[test]
    fn works_through_mut_ref_and_dyn() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            // Generic call through &mut R, the pattern the workspace uses.
            rng.gen_range(0u64..10) + rng.gen::<u64>() % 2
        }
        let mut rng = StdRng::seed_from_u64(1);
        draw(&mut rng);
    }
}
