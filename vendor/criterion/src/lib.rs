//! Offline stand-in for [`criterion` 0.5](https://docs.rs/criterion): the API
//! surface this workspace's `harness = false` benches use. The build
//! environment has no registry access, so the workspace vendors this minimal
//! implementation instead of the real crate (see README § Vendored
//! dependencies).
//!
//! Implemented: [`Criterion::benchmark_group`], `bench_function` (on both
//! [`Criterion`] and [`BenchmarkGroup`]), [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Measurement is simple wall-clock median-of-samples with a plain-text
//! report — no statistics engine, plots, or saved baselines.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, passed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far fewer samples than real criterion (100): this stand-in is for
        // relative, smoke-level timing, not statistical rigor.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(None, &id.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks one function under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group (report lines are already printed; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies a benchmark: a bare name, a name/parameter pair, or a bare
/// parameter (`from_parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("wavelet", size)`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// measured routine.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call, if any.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then time `sample_size` batches. Batch size is
        // chosen so a batch takes ≳100µs, keeping timer noise bounded.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let batch = (Duration::from_micros(100).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 10_000) as usize;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort();
        self.measured = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut bencher = Bencher {
        sample_size,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(t) => println!("bench {label:<50} {t:>12.2?}/iter (median of {sample_size})"),
        None => println!("bench {label:<50} (no iter() call)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(c: &mut Criterion) {
        let mut group = c.benchmark_group("arith");
        group.sample_size(5);
        group.bench_function(BenchmarkId::new("square", 4), |b| {
            b.iter(|| black_box(4u64).pow(2))
        });
        group.finish();
        c.bench_function("square_plain", |b| b.iter(|| black_box(4u64).pow(2)));
    }

    criterion_group!(benches, square);

    #[test]
    fn group_and_main_macros_run() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
        assert_eq!(BenchmarkId::from("name").to_string(), "name");
    }
}
