//! # sas-bench — experiment harness for every figure in the paper
//!
//! The binaries in `src/bin/` regenerate the series of the paper's Figures
//! 2, 3 and 4 (see `EXPERIMENTS.md` for the index and observed outputs):
//!
//! | binary | paper figure | series |
//! |---|---|---|
//! | `fig2a` | 2(a) | accuracy vs summary size, Network, uniform-area queries |
//! | `fig2b` | 2(b) | accuracy vs query weight, Network, uniform-weight queries |
//! | `fig2c` | 2(c) | accuracy vs ranges/query, Network |
//! | `fig3a` | 3(a) | construction throughput, Network |
//! | `fig3b` | 3(b) | construction throughput, Tech Ticket |
//! | `fig3c` | 3(c) | query time vs summary size |
//! | `fig4a` | 4(a) | accuracy vs size, Tech Ticket, uniform-weight queries |
//! | `fig4b` | 4(b) | accuracy vs query weight, Tech Ticket, uniform-area |
//! | `fig4c` | 4(c) | accuracy vs query weight, Tech Ticket, uniform-weight |
//! | `discrepancy` | Thm 1 / Sec 3-4 | empirical max discrepancy per structure |
//! | `ablation_guide` | design ablation | two-pass accuracy vs s′/s factor |
//! | `ablation_pair_rule` | design ablation | structure-aware vs arbitrary pair order |
//!
//! Scale is controlled by the `SAS_SCALE` env var: `small` (default —
//! seconds per figure) or `full` (matches the paper's data scale; the
//! wavelet/sketch baselines then take correspondingly long, which is itself
//! one of the paper's findings).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_data::{NetworkConfig, TicketConfig};
use sas_sampling::product::SpatialData;
use sas_structures::product::MultiRangeQuery;
use sas_summaries::exact::{ExactEngine, SampleSummary};
use sas_summaries::RangeSumSummary;

/// Experiment scale, selected by the `SAS_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced data and size sweep: every figure runs in seconds.
    Small,
    /// The paper's data scale (196K network pairs, 100K+ tickets).
    Full,
}

impl Scale {
    /// Reads `SAS_SCALE` (default `Small`).
    pub fn from_env() -> Self {
        match std::env::var("SAS_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// Address bits per axis for the network data set.
    pub fn network_bits(self) -> u32 {
        match self {
            Scale::Small => 12,
            Scale::Full => 16,
        }
    }

    /// Flow count for the network data set.
    pub fn network_flows(self) -> usize {
        match self {
            Scale::Small => 40_000,
            Scale::Full => 196_000,
        }
    }

    /// Ticket count for the tech-ticket data set.
    pub fn tickets(self) -> usize {
        match self {
            Scale::Small => 40_000,
            Scale::Full => 500_000,
        }
    }

    /// Summary sizes swept in the "vs size" figures.
    pub fn size_sweep(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![100, 300, 1_000, 3_000, 10_000],
            Scale::Full => vec![100, 300, 1_000, 3_000, 10_000, 30_000, 100_000],
        }
    }

    /// Number of queries per battery (paper: 50).
    pub fn query_count(self) -> usize {
        50
    }
}

/// A prepared data set with its exact engine.
pub struct Workload {
    /// Human-readable name ("network" / "tickets").
    pub name: &'static str,
    /// The data.
    pub data: SpatialData,
    /// Ground-truth engine.
    pub exact: ExactEngine,
    /// Total data weight (normalizer for absolute error).
    pub total: f64,
    /// Domain bits per axis (square domains).
    pub bits: u32,
}

/// Generates the Network workload at the given scale (fixed seed).
pub fn network_workload(scale: Scale) -> Workload {
    let cfg = NetworkConfig {
        bits: scale.network_bits(),
        flows: scale.network_flows(),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(0xB007);
    let data = cfg.generate(&mut rng);
    let exact = ExactEngine::new(&data);
    let total = exact.total();
    Workload {
        name: "network",
        data,
        exact,
        total,
        bits: cfg.bits,
    }
}

/// Generates the Tech Ticket workload at the given scale (fixed seed).
pub fn ticket_workload(scale: Scale) -> Workload {
    let cfg = TicketConfig {
        tickets: scale.tickets(),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(0x7_1CCE7);
    let data = cfg.generate(&mut rng);
    let exact = ExactEngine::new(&data);
    let total = exact.total();
    // Ticket domains are 2^14 per axis with the default branching.
    let (dx, _) = cfg.domains();
    let bits = 64 - (dx - 1).leading_zeros();
    Workload {
        name: "tickets",
        data,
        exact,
        total,
        bits,
    }
}

/// Mean absolute error of a summary over a query battery, normalized by the
/// total data weight — the y-axis of the paper's accuracy plots.
pub fn avg_abs_error(
    summary: &dyn RangeSumSummary,
    exact: &ExactEngine,
    queries: &[MultiRangeQuery],
    total: f64,
) -> f64 {
    error_metrics(summary, exact, queries, total).mean_abs
}

/// The three error metrics the paper reports ("absolute, sum-squared and
/// relative errors"), all computed in one pass over the battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorMetrics {
    /// Mean |estimate − truth| / total weight.
    pub mean_abs: f64,
    /// Root-mean-square of (estimate − truth) / total weight.
    pub rms: f64,
    /// Mean |estimate − truth| / truth over queries with positive truth.
    pub mean_rel: f64,
}

/// Computes [`ErrorMetrics`] for a summary over a query battery.
pub fn error_metrics(
    summary: &dyn RangeSumSummary,
    exact: &ExactEngine,
    queries: &[MultiRangeQuery],
    total: f64,
) -> ErrorMetrics {
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut rel_sum = 0.0;
    let mut rel_count = 0usize;
    for q in queries {
        let truth = exact.multi_sum(q);
        let err = summary.estimate_multi(q) - truth;
        abs_sum += err.abs();
        sq_sum += err * err;
        if truth > 0.0 {
            rel_sum += err.abs() / truth;
            rel_count += 1;
        }
    }
    let n = queries.len().max(1) as f64;
    ErrorMetrics {
        mean_abs: abs_sum / (n * total),
        rms: (sq_sum / n).sqrt() / total,
        mean_rel: if rel_count > 0 {
            rel_sum / rel_count as f64
        } else {
            0.0
        },
    }
}

/// Builds the structure-aware sample ("aware"): the two-pass product
/// sampler with the paper's guide factor of 5.
pub fn build_aware(data: &SpatialData, s: usize, seed: u64) -> SampleSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = sas_sampling::two_pass::sample_product(data, s, 5, &mut rng);
    SampleSummary::new("aware", &sample, data)
}

/// Builds the structure-oblivious VarOpt sample ("obliv").
pub fn build_obliv(data: &SpatialData, s: usize, seed: u64) -> SampleSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = sas_core::varopt::VarOptSampler::sample_slice(s, &data.keys, &mut rng);
    SampleSummary::new("obliv", &sample, data)
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Sort-based percentile over an ascending slice at the same nearest-rank
/// rule (`ceil(p/100 * n)`) that [`sas_obs::HistogramSnapshot::percentile`]
/// uses, so a histogram percentile and the sort-based one pick the same
/// ranked observation and can be compared bucket-for-bucket.
pub fn rank_value(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Asserts that a histogram snapshot's p50/p95/p99 each land within one
/// log-bucket of the sort-based percentile over the raw latencies
/// (milliseconds, ascending). Shared by the `store` and `cold` bins, whose
/// reported percentiles come from [`sas_obs::Histogram`] — the same math
/// the daemon's metrics endpoint serves — with the raw vector kept as
/// ground truth.
pub fn assert_hist_matches_sorted(
    snap: &sas_obs::HistogramSnapshot,
    sorted_ms: &[f64],
    what: &str,
) {
    for p in [50.0, 95.0, 99.0] {
        let hist_ns = snap.percentile(p);
        let sorted_ns = (rank_value(sorted_ms, p) * 1e6).round() as u64;
        assert!(
            sas_obs::within_one_bucket(hist_ns, sorted_ns),
            "{what}: histogram p{p} = {hist_ns} ns more than one bucket away \
             from sort-based {sorted_ns} ns"
        );
    }
}

/// Reads a `usize` environment knob with a default (shared by the bins).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses the bin's command line: `--json PATH` selects machine-readable
/// output alongside the human tables. Unknown arguments are an error so a
/// scripted invocation with a typo fails loudly instead of silently
/// printing text and exiting 0.
pub fn parse_json_flag() -> Result<Option<std::path::PathBuf>, String> {
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                let p = args.next().ok_or("--json requires a path")?;
                out = Some(std::path::PathBuf::from(p));
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected: --json PATH)"
                ))
            }
        }
    }
    Ok(out)
}

/// Incremental writer for the flat JSON objects the bins emit under
/// `--json`. Fields keep insertion order; one level of nesting via
/// [`JsonObj::obj`]. Numbers are written as plain decimals (never
/// scientific notation) so `scripts/bench_regression.sh` can extract them
/// with a `"name": *[0-9.]*` grep.
#[derive(Debug, Default, Clone)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric field (non-finite values are recorded as 0).
    pub fn num(&mut self, name: &str, v: f64) -> &mut Self {
        let v = if v.is_finite() { v } else { 0.0 };
        let s = if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.0}")
        } else if v.abs() < 0.01 {
            format!("{v:.8}")
        } else {
            format!("{v:.3}")
        };
        self.fields.push((name.to_string(), s));
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, name: &str, v: u64) -> &mut Self {
        self.fields.push((name.to_string(), v.to_string()));
        self
    }

    /// Adds a string field (callers pass plain identifiers; quotes and
    /// backslashes are escaped just in case).
    pub fn str(&mut self, name: &str, v: &str) -> &mut Self {
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields
            .push((name.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a nested object field.
    pub fn obj(&mut self, name: &str, v: &JsonObj) -> &mut Self {
        self.fields.push((name.to_string(), v.render()));
        self
    }

    /// Renders the object as a single-line JSON string.
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            s.push_str(k);
            s.push_str("\": ");
            s.push_str(v);
        }
        s.push('}');
        s
    }

    /// Writes the rendered object (plus trailing newline) to `path`.
    pub fn write(&self, path: &std::path::Path) -> Result<(), String> {
        std::fs::write(path, self.render() + "\n")
            .map_err(|e| format!("write {}: {e}", path.display()))
    }
}

/// A counting global allocator for bins that report allocation deltas
/// (e.g. allocations per merge). Opt in from a bin with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sas_bench::alloc_count::CountingAlloc =
///     sas_bench::alloc_count::CountingAlloc;
/// ```
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Forwards to the system allocator, counting every allocation
    /// (including reallocations, which allocate).
    pub struct CountingAlloc;

    // SAFETY: pure pass-through to `System`; the counter has no effect on
    // the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    /// Total allocations since process start (take deltas around a region).
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

/// Prints a TSV header plus rows; shared output format of the figure bins.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}

/// Formats an error value in compact scientific notation.
pub fn fmt_err(e: f64) -> String {
    format!("{e:.3e}")
}

/// Formats a rate (items/s) with thousands grouping dropped for TSV use.
pub fn fmt_rate(r: f64) -> String {
    format!("{r:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_default_small() {
        // Note: does not set the env var to avoid cross-test interference.
        assert_eq!(Scale::Small.network_bits(), 12);
        assert_eq!(Scale::Full.network_bits(), 16);
        assert!(Scale::Full.size_sweep().len() > Scale::Small.size_sweep().len());
    }

    #[test]
    fn workloads_generate() {
        let w = network_workload(Scale::Small);
        assert!(w.data.len() > 10_000);
        assert!(w.total > 0.0);
        let t = ticket_workload(Scale::Small);
        assert!(t.data.len() > 10_000);
    }

    #[test]
    fn builders_produce_requested_sizes() {
        let w = network_workload(Scale::Small);
        let aware = build_aware(&w.data, 500, 1);
        let obliv = build_obliv(&w.data, 500, 1);
        assert_eq!(aware.size_elements(), 500);
        assert_eq!(obliv.size_elements(), 500);
    }

    #[test]
    fn json_obj_renders_grepable_fields() {
        let mut nested = JsonObj::new();
        nested.num("rate", 12.3456);
        let mut obj = JsonObj::new();
        obj.str("bench", "core")
            .num("whole", 42.0)
            .int("count", 7)
            .num("bad", f64::NAN)
            .obj("inner", &nested);
        let s = obj.render();
        assert_eq!(
            s,
            "{\"bench\": \"core\", \"whole\": 42, \"count\": 7, \
             \"bad\": 0, \"inner\": {\"rate\": 12.346}}"
        );
        // The regression script's extraction pattern must match.
        assert!(s.contains("\"whole\": 42"));
    }

    #[test]
    fn env_usize_falls_back_to_default() {
        assert_eq!(env_usize("SAS_BENCH_NO_SUCH_KNOB", 77), 77);
    }

    #[test]
    fn avg_error_zero_for_exact() {
        let w = network_workload(Scale::Small);
        let mut rng = StdRng::seed_from_u64(2);
        let side = 1u64 << w.bits;
        let queries = sas_data::uniform_area_queries(&mut rng, side, side, 5, 5, 0.2);
        let e = avg_abs_error(&w.exact, &w.exact, &queries, w.total);
        assert_eq!(e, 0.0);
    }
}
