//! Figure 2(c): accuracy vs number of ranges per query on Network data,
//! total query weight held at ≈ 0.12 of the data.
//!
//! Paper's reading: oblivious error is flat in the range count (to a sample
//! every query is just a subset of similar weight); structure-aware error
//! starts several times lower for few-range queries and converges to
//! oblivious by ~40 ranges; wavelet is an order of magnitude worse.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_weight_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let s = 2700;
    let weight_frac = 0.12;

    eprintln!(
        "fig2c: network data, {} pairs, summary size {s}, query weight ≈ {weight_frac}",
        w.data.len()
    );

    let aware = build_aware(&w.data, s, 21);
    let obliv = build_obliv(&w.data, s, 22);
    let wavelet = WaveletSummary::build(&w.data, w.bits, w.bits, s);
    let qdigest = QDigestSummary::build(&w.data, w.bits, s);

    let mut rows = Vec::new();
    for &ranges in &[1usize, 2, 5, 10, 20, 40, 100] {
        let mut qrng = StdRng::seed_from_u64(900 + ranges as u64);
        let queries =
            uniform_weight_queries(&mut qrng, &w.data, scale.query_count(), ranges, weight_frac);
        rows.push(vec![
            ranges.to_string(),
            fmt_err(avg_abs_error(&aware, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&obliv, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&wavelet, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&qdigest, &w.exact, &queries, w.total)),
        ]);
    }
    print_table(
        "Figure 2(c): Network, fixed query weight ≈ 0.12, absolute error vs ranges per query",
        &["ranges", "aware", "obliv", "wavelet", "qdigest"],
        &rows,
    );
}
