//! Figure 4(a): accuracy vs summary size on Tech Ticket data,
//! uniform-weight queries.
//!
//! Paper's reading: aware ≈ obliv at small sizes (the heavy-headed weight
//! distribution forces both to include the same keys); the methods diverge
//! at larger sizes where aware gets to place its remaining probability
//! mass, reaching less than half the oblivious error for samples of 1–10%
//! of the data.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_weight_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = ticket_workload(scale);
    let mut qrng = StdRng::seed_from_u64(61);
    let queries = uniform_weight_queries(&mut qrng, &w.data, scale.query_count(), 10, 0.1);

    eprintln!(
        "fig4a: ticket data, {} pairs, uniform-weight queries x 10 ranges",
        w.data.len()
    );

    let wavelet_full = WaveletSummary::build(&w.data, w.bits, w.bits, usize::MAX);

    let mut rows = Vec::new();
    for &s in &scale.size_sweep() {
        let aware = build_aware(&w.data, s, 6100 + s as u64);
        let obliv = build_obliv(&w.data, s, 6200 + s as u64);
        let wavelet = wavelet_full.truncated(s);
        let qdigest = QDigestSummary::build(&w.data, w.bits, s);
        rows.push(vec![
            s.to_string(),
            fmt_err(avg_abs_error(&aware, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&obliv, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&wavelet, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&qdigest, &w.exact, &queries, w.total)),
        ]);
    }
    print_table(
        "Figure 4(a): Tech Ticket, uniform-weight queries (10 ranges), absolute error vs summary size",
        &["size", "aware", "obliv", "wavelet", "qdigest"],
        &rows,
    );
}
