//! Cold-catalog query throughput: v2 mapped segments served in place vs.
//! v1 frames decoded on demand.
//!
//! The workload models a store waking up over a catalog of `W` persisted
//! windows and answering `Q` range queries against every window, repeated
//! for `R` rounds:
//!
//! * **decode** — the v1 path: each round reads and decodes every window's
//!   frame (a cold catalog holds no hydrated summaries, so serving a round
//!   of queries pays the full decode), then answers the batch against the
//!   owned summary.
//! * **view** — the v2 path: each window's segment file is mapped and
//!   validated once (that is the catalog's resident state — the store
//!   keeps cold windows as [`sas_store::mapped::Mapped`] segments), and
//!   every round answers the same batch straight through the column views,
//!   no decode and no allocation per round.
//!
//! Both paths answer the identical query battery and the bench exits
//! non-zero if any answer drifts bitwise — the ratio is only meaningful if
//! the two paths agree. `scripts/bench_core.sh` records the two rates in
//! `BENCH_core.json` (`cold_query_view_qps`, `cold_query_decode_qps`) and
//! `scripts/bench_regression.sh --core` gates them; CI additionally
//! asserts the view/decode ratio stays ≥ 2x.
//!
//! The battery per round is deliberately small (default 8 queries): the
//! cold-catalog access pattern is a few queries arriving at a window whose
//! summary is not resident, so the v1 path pays a full decode for a
//! handful of answers. Large batteries amortize the decode away and
//! measure the (identical) answer loops instead.
//!
//! Environment knobs: `SAS_COLD_WINDOWS` (default 64), `SAS_COLD_ROWS`
//! (rows per window, default 2000), `SAS_COLD_BUDGET` (sample budget per
//! window, default 512), `SAS_COLD_QUERIES` (queries per round, default
//! 8), `SAS_COLD_ROUNDS` (default 32). `--json PATH` writes the
//! machine-readable result.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_bench::{env_usize, parse_json_flag, print_table, timed, JsonObj};
use sas_core::WeightedKey;
use sas_store::mapped::Mapped;
use sas_summaries::{
    decode_summary, encode_segment, encode_summary, Estimate, Query, SegmentSummary, StoredSample,
    Summary,
};

/// splitmix64, decorrelating query indices from probed ranges.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cold bench failed: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let json_path = parse_json_flag()?;
    let windows = env_usize("SAS_COLD_WINDOWS", 64).max(1);
    let rows = env_usize("SAS_COLD_ROWS", 2000).max(16) as u64;
    let budget = env_usize("SAS_COLD_BUDGET", 512).max(8);
    let queries = env_usize("SAS_COLD_QUERIES", 8).max(1);
    let rounds = env_usize("SAS_COLD_ROUNDS", 32).max(1);
    let confidence = 0.95;

    let dir = std::env::temp_dir().join(format!("sas-cold-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    // One budgeted 1-D stored sample per window over adjacent key spans,
    // persisted twice: the v1 frame and the equivalent v2 segment.
    let mut frame_paths: Vec<PathBuf> = Vec::with_capacity(windows);
    let mut segment_paths: Vec<PathBuf> = Vec::with_capacity(windows);
    for w in 0..windows as u64 {
        let data: Vec<WeightedKey> = (w * rows..(w + 1) * rows)
            .map(|k| WeightedKey::new(k, 0.5 + (k % 11) as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(w + 11);
        let sample = sas_sampling::order::sample(&data, budget, &mut rng);
        let stored = StoredSample::one_dim(sample);
        let frame = encode_summary(&stored);
        let segment = encode_segment(&stored).ok_or("stored sample has a segment layout")?;
        let frame_path = dir.join(format!("w{w}.frame.sas"));
        let segment_path = dir.join(format!("w{w}.segment.sas"));
        std::fs::write(&frame_path, &frame).map_err(|e| format!("write frame: {e}"))?;
        std::fs::write(&segment_path, &segment).map_err(|e| format!("write segment: {e}"))?;
        frame_paths.push(frame_path);
        segment_paths.push(segment_path);
    }

    let span = windows as u64 * rows;
    let battery: Vec<Query> = (0..queries as u64)
        .map(|i| {
            let lo = mix(i) % span;
            let hi = lo + (mix(i ^ 1) % (span - lo)).max(1);
            Query::interval(lo, hi)
        })
        .collect();

    // The catalog's resident state for the view path: every segment mapped
    // and validated once, up front.
    let views: Vec<SegmentSummary> = segment_paths
        .iter()
        .map(|p| {
            let mapped = Mapped::open(p).map_err(|e| format!("map {}: {e}", p.display()))?;
            SegmentSummary::open(Arc::new(mapped)).map_err(|e| format!("open segment: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let mapped_count = views.iter().filter(|v| v.segment_len() > 0).count();

    // Per-batch latencies live twice on each path: the lock-free histogram
    // is what gets reported (the same math the daemon's metrics serve), the
    // raw vector is sort-based ground truth to cross-check it against.
    let answered = (queries * windows * rounds) as f64;
    let decode_hist = sas_obs::Histogram::new();
    let mut decode_lat_ms: Vec<f64> = Vec::with_capacity(windows * rounds);
    let mut decode_answers: Vec<Vec<Estimate>> = Vec::new();
    let mut decode_err = None;
    let (_, decode_secs) = timed(|| {
        for round in 0..rounds {
            for path in &frame_paths {
                let batch_started = Instant::now();
                let result = std::fs::read(path)
                    .map_err(|e| format!("read frame: {e}"))
                    .and_then(|bytes| {
                        decode_summary(&bytes).map_err(|e| format!("decode frame: {e}"))
                    })
                    .and_then(|summary| {
                        summary
                            .answer_batch(&battery, confidence)
                            .map_err(|e| format!("decode-path answer: {e}"))
                    });
                let elapsed = batch_started.elapsed();
                decode_hist.record_duration(elapsed);
                decode_lat_ms.push(elapsed.as_secs_f64() * 1e3);
                match result {
                    Ok(answers) => {
                        if round == 0 {
                            decode_answers.push(answers);
                        }
                    }
                    Err(e) => decode_err = Some(e),
                }
            }
        }
    });
    if let Some(e) = decode_err {
        return Err(e);
    }

    let view_hist = sas_obs::Histogram::new();
    let mut view_lat_ms: Vec<f64> = Vec::with_capacity(windows * rounds);
    let mut view_answers: Vec<Vec<Estimate>> = Vec::new();
    let mut view_err = None;
    let (_, view_secs) = timed(|| {
        for round in 0..rounds {
            for view in &views {
                let batch_started = Instant::now();
                let result = view.answer_batch(&battery, confidence);
                let elapsed = batch_started.elapsed();
                view_hist.record_duration(elapsed);
                view_lat_ms.push(elapsed.as_secs_f64() * 1e3);
                match result {
                    Ok(answers) => {
                        if round == 0 {
                            view_answers.push(answers);
                        }
                    }
                    Err(e) => view_err = Some(format!("view-path answer: {e}")),
                }
            }
        }
    });
    if let Some(e) = view_err {
        return Err(e);
    }

    let _ = std::fs::remove_dir_all(&dir);

    // The ratio is only meaningful if the paths agree bitwise.
    if decode_answers.len() != view_answers.len() {
        return Err("decode/view window count mismatch".into());
    }
    for (w, (d, v)) in decode_answers.iter().zip(&view_answers).enumerate() {
        for (q, (a, b)) in d.iter().zip(v).enumerate() {
            if a.value.to_bits() != b.value.to_bits()
                || a.lower.to_bits() != b.lower.to_bits()
                || a.upper.to_bits() != b.upper.to_bits()
            {
                return Err(format!(
                    "window {w} query {q}: view answer drifted from decode ({} vs {})",
                    b.value, a.value
                ));
            }
        }
    }

    // Histogram percentiles must agree with a sort of the raw batch
    // latencies to within one log bucket before they are worth reporting.
    decode_lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    view_lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let decode_snap = decode_hist.snapshot();
    let view_snap = view_hist.snapshot();
    sas_bench::assert_hist_matches_sorted(&decode_snap, &decode_lat_ms, "decode path");
    sas_bench::assert_hist_matches_sorted(&view_snap, &view_lat_ms, "view path");

    let decode_qps = answered / decode_secs;
    let view_qps = answered / view_secs;
    let ratio = view_qps / decode_qps;
    let batch_us = |snap: &sas_obs::HistogramSnapshot, p: f64| snap.percentile(p) as f64 / 1e3;
    print_table(
        &format!(
            "cold catalog ({windows} windows x {queries} queries x {rounds} rounds, \
             {mapped_count} segments mapped)"
        ),
        &["path", "qps", "secs", "ratio", "p50_us", "p95_us", "p99_us"],
        &[
            vec![
                "decode".into(),
                format!("{decode_qps:.0}"),
                format!("{decode_secs:.3}"),
                "1.00".into(),
                format!("{:.1}", batch_us(&decode_snap, 50.0)),
                format!("{:.1}", batch_us(&decode_snap, 95.0)),
                format!("{:.1}", batch_us(&decode_snap, 99.0)),
            ],
            vec![
                "view".into(),
                format!("{view_qps:.0}"),
                format!("{view_secs:.3}"),
                format!("{ratio:.2}"),
                format!("{:.1}", batch_us(&view_snap, 50.0)),
                format!("{:.1}", batch_us(&view_snap, 95.0)),
                format!("{:.1}", batch_us(&view_snap, 99.0)),
            ],
        ],
    );

    if let Some(path) = json_path {
        let mut obj = JsonObj::new();
        obj.str("bench", "cold_catalog")
            .int("windows", windows as u64)
            .int("rows", rows)
            .int("budget", budget as u64)
            .int("queries", queries as u64)
            .int("rounds", rounds as u64)
            .num("cold_query_decode_qps", decode_qps)
            .num("cold_query_view_qps", view_qps)
            .num("cold_view_decode_ratio", ratio)
            .num("cold_decode_batch_p99_us", batch_us(&decode_snap, 99.0))
            .num("cold_view_batch_p99_us", batch_us(&view_snap, 99.0));
        obj.write(&path)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
