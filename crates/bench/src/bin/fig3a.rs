//! Figure 3(a): construction throughput (items/s) vs summary size on the
//! Network data.
//!
//! Paper's reading: obliv is fastest (one pass); aware costs a second pass
//! plus kd-tree lookups; qdigest and sketch are ~2 orders slower (every
//! point touches log²-many cells); wavelet is ~4 orders slower.

use sas_bench::*;
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let n = w.data.len() as f64;

    eprintln!(
        "fig3a: network data, {} pairs, construction throughput (items/s)",
        w.data.len()
    );

    let mut rows = Vec::new();
    for &s in &scale.size_sweep() {
        let (_, t_aware) = timed(|| build_aware(&w.data, s, 31));
        let (_, t_obliv) = timed(|| build_obliv(&w.data, s, 32));
        let (_, t_wavelet) = timed(|| WaveletSummary::build(&w.data, w.bits, w.bits, s));
        let (_, t_qdigest) = timed(|| QDigestSummary::build(&w.data, w.bits, s));
        let (_, t_sketch) = timed(|| SketchSummary::build(&w.data, w.bits, w.bits, s, 33));
        rows.push(vec![
            s.to_string(),
            fmt_rate(n / t_aware),
            fmt_rate(n / t_obliv),
            fmt_rate(n / t_wavelet),
            fmt_rate(n / t_qdigest),
            fmt_rate(n / t_sketch),
        ]);
    }
    print_table(
        "Figure 3(a): Network, construction throughput (items/s) vs summary size",
        &["size", "aware", "obliv", "wavelet", "qdigest", "sketch"],
        &rows,
    );
}
