//! Empirical discrepancy study: the guarantees of Sections 3–4 / Theorem 1
//! measured directly.
//!
//! * hierarchy sampler: max node discrepancy must be < 1;
//! * order sampler: max interval discrepancy must be < 2;
//! * product sampler: boundary-cell bound O(2d·s^((d−1)/d)) vs the
//!   structure-oblivious √p(R) scaling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sas_bench::*;
use sas_core::WeightedKey;
use sas_structures::hierarchy::HierarchyBuilder;
use sas_structures::order::Interval;
use sas_structures::product::BoxRange;
use sas_summaries::exact::SampleSummary;
use sas_summaries::RangeSumSummary;

fn main() {
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(1);

    // --- Hierarchy: random 3-level tree, 500 keys, s = 50 ------------------
    {
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        let mut key = 0u64;
        for _ in 0..10 {
            let g = b.add_internal(root);
            for _ in 0..5 {
                let sg = b.add_internal(g);
                for _ in 0..10 {
                    b.add_leaf(sg, key);
                    key += 1;
                }
            }
        }
        let h = b.build();
        let data: Vec<WeightedKey> = (0..key)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..20.0)))
            .collect();
        let mut worst: f64 = 0.0;
        for _ in 0..20 {
            let smp = sas_sampling::hierarchy::sample(&data, &h, 50, &mut rng);
            for d in sas_sampling::hierarchy::node_discrepancies(&smp, &data, &h, 50) {
                worst = worst.max(d);
            }
        }
        rows.push(vec![
            "hierarchy".into(),
            "node ranges".into(),
            format!("{worst:.4}"),
            "< 1".into(),
        ]);
    }

    // --- Order: 500 keys, s = 50, all intervals ----------------------------
    {
        let data: Vec<WeightedKey> = (0..500)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..10.0)))
            .collect();
        let mut worst: f64 = 0.0;
        for _ in 0..10 {
            let smp = sas_sampling::order::sample(&data, 50, &mut rng);
            for lo in 0..500 {
                for hi in (lo..500).step_by(7) {
                    let d = sas_sampling::order::interval_discrepancy(
                        &smp,
                        &data,
                        50,
                        Interval::new(lo, hi),
                        |k| k,
                    );
                    worst = worst.max(d);
                }
            }
        }
        rows.push(vec![
            "order".into(),
            "intervals".into(),
            format!("{worst:.4}"),
            "< 2".into(),
        ]);
    }

    // --- Product: aware vs obliv box discrepancy ---------------------------
    {
        let scale = Scale::from_env();
        let w = network_workload(scale);
        let s = 1000;
        let side = 1u64 << w.bits;
        let aware = build_aware(&w.data, s, 99);
        let obliv = build_obliv(&w.data, s, 98);
        let mut qrng = StdRng::seed_from_u64(3);
        let queries = sas_data::uniform_area_queries(&mut qrng, side, side, 50, 1, 0.4);
        let score = |sm: &SampleSummary| -> f64 {
            let mut acc: f64 = 0.0;
            for q in &queries {
                let b: &BoxRange = &q.boxes[0];
                let err = (sm.estimate_box(b) - w.exact.box_sum(b)).abs();
                acc = acc.max(err / w.total);
            }
            acc
        };
        rows.push(vec![
            "product(aware)".into(),
            "boxes".into(),
            format!("{:.3e}", score(&aware)),
            "≤ obliv".into(),
        ]);
        rows.push(vec![
            "product(obliv)".into(),
            "boxes".into(),
            format!("{:.3e}", score(&obliv)),
            "-".into(),
        ]);
    }

    print_table(
        "Empirical max discrepancy per structure (Sections 3-4, Theorem 1)",
        &["structure", "range family", "max observed", "guarantee"],
        &rows,
    );
}
