//! Store-layer throughput: windowed ingest (batches and rows per second,
//! including the per-batch frame + manifest persistence), one compaction
//! pass, and snapshot query throughput at 1/4/8 reader threads — cold
//! (distinct ranges, every query walks the summaries) and hot (repeated
//! range, served by the LRU cache).
//!
//! Environment knobs: `SAS_STORE_BATCHES` (default 240), `SAS_STORE_ROWS`
//! (rows per batch, default 500), `SAS_STORE_QUERIES` (queries per thread
//! count, default 4000), `SAS_STORE_BUDGET` (window budget, default 4000).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_bench::{print_table, timed};
use sas_core::WeightedKey;
use sas_store::{Store, StoreConfig};
use sas_summaries::{StoredSample, Summary, SummaryKind};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// splitmix64: decorrelates the query index from the probed range (a
/// linear stride aliases modulo the key span and quietly turns the cold
/// runs into cache hits).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn main() {
    let batches = env_usize("SAS_STORE_BATCHES", 240);
    let rows = env_usize("SAS_STORE_ROWS", 500) as u64;
    let queries = env_usize("SAS_STORE_QUERIES", 4000);
    let budget = env_usize("SAS_STORE_BUDGET", 4000);

    let dir = std::env::temp_dir().join(format!("sas-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        Store::open(
            &dir,
            StoreConfig {
                budget: Some(budget),
                cache_capacity: 4096,
            },
        )
        .expect("open store"),
    );

    // Pre-build the batch summaries so ingest timing measures the store
    // (merge + frame write + manifest + snapshot swap), not the sampler.
    let built: Vec<(u64, Box<dyn Summary>)> = (0..batches as u64)
        .map(|i| {
            let data: Vec<WeightedKey> = (0..rows)
                .map(|r| WeightedKey::new(i * rows + r, 0.5 + ((i + r) % 13) as f64))
                .collect();
            let mut rng = StdRng::seed_from_u64(i);
            let sample = sas_sampling::order::sample(&data, (rows as usize).min(budget), &mut rng);
            // 45-tick spacing crosses minute windows and spans hours, so
            // the compaction pass below has real work.
            (
                i * 45,
                Box::new(StoredSample::one_dim(sample)) as Box<dyn Summary>,
            )
        })
        .collect();
    let total_rows = batches as u64 * rows;

    let mut table: Vec<Vec<String>> = Vec::new();
    let (_, secs) = timed(|| {
        for (ts, batch) in built {
            store.ingest("bench", ts, batch).expect("ingest");
        }
    });
    table.push(vec![
        "ingest".into(),
        "1".into(),
        format!("{:.0}", batches as f64 / secs),
        format!("{:.3e}", total_rows as f64 / secs),
    ]);

    let (rollups, secs) = timed(|| store.compact_once().expect("compact"));
    table.push(vec![
        format!("compact({rollups} rollups)"),
        "1".into(),
        format!("{:.0}", rollups as f64 / secs.max(1e-9)),
        "-".into(),
    ]);

    let key_span = total_rows;
    for threads in [1usize, 4, 8] {
        for (mode, hot) in [("query-cold", false), ("query-hot", true)] {
            let per_thread = queries / threads;
            let (_, secs) = timed(|| {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let store = store.clone();
                        scope.spawn(move || {
                            for i in 0..per_thread {
                                // Salt with the thread count so each run
                                // probes ranges no earlier run cached.
                                let lo = if hot {
                                    0
                                } else {
                                    mix((threads * 1_000_003 + t * per_thread + i) as u64)
                                        % key_span
                                };
                                let range = [(lo, lo + key_span / 4)];
                                let ans = store.query("bench", SummaryKind::Sample, &range, None);
                                assert!(ans.value >= 0.0);
                            }
                        });
                    }
                });
            });
            let done = (per_thread * threads) as f64;
            table.push(vec![
                mode.into(),
                threads.to_string(),
                format!("{:.0}", done / secs),
                "-".into(),
            ]);
        }
    }

    let stats = store.stats();
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    eprintln!(
        "# windows={} frame_bytes={} cache_hits={} cache_misses={}",
        get("windows"),
        get("frame_bytes"),
        get("cache_hits"),
        get("cache_misses"),
    );
    print_table(
        "store throughput (ingest: batches/s + rows/s; query: ops/s)",
        &["op", "threads", "ops_per_sec", "rows_per_sec"],
        &table,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
