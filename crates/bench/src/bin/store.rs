//! Store-layer throughput, in two phases.
//!
//! **Local**: windowed ingest (batches and rows per second, including the
//! per-batch frame + manifest persistence), one compaction pass, and
//! snapshot query throughput at 1/4/8 reader threads — cold (distinct
//! ranges, every query walks the summaries) and hot (repeated range,
//! served by the LRU cache).
//!
//! **Daemon (c10k)**: starts the non-blocking event-loop daemon and
//! drives it with an event-driven load generator built on the same
//! exported [`sas_store::poller`] — one client thread multiplexing
//! thousands of concurrent pipelined connections of mixed
//! ingest/query/estimate/ping traffic, measuring per-request latency
//! (p50/p95/p99/max) and aggregate throughput.
//!
//! Environment knobs: `SAS_STORE_BATCHES` (default 240), `SAS_STORE_ROWS`
//! (rows per batch, default 500), `SAS_STORE_QUERIES` (queries per thread
//! count, default 4000), `SAS_STORE_BUDGET` (window budget, default 4000),
//! `SAS_STORE_LOCAL` (`0` skips the local phase), `SAS_STORE_CONNS`
//! (daemon connections, default 1000; `0` skips the daemon phase),
//! `SAS_STORE_DEPTH` (pipeline depth per connection, default 8),
//! `SAS_STORE_CONN_REQS` (requests per connection, default 30),
//! `SAS_STORE_JSON` (path to also write the daemon results as JSON —
//! the committed `BENCH_store.json` baseline is produced this way).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_bench::{print_table, timed};
use sas_codec::proto;
use sas_core::WeightedKey;
use sas_store::poller::{Interest, InterestCache, Poller};
use sas_store::server::{Server, ServerConfig};
use sas_store::wire::{decode_response, encode_request, Request, Response};
use sas_store::{Store, StoreConfig};
use sas_summaries::{encode_summary, Query, StoredSample, Summary, SummaryKind};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// splitmix64: decorrelates the query index from the probed range (a
/// linear stride aliases modulo the key span and quietly turns the cold
/// runs into cache hits).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn main() {
    if env_usize("SAS_STORE_LOCAL", 1) != 0 {
        local_phase();
    }
    let conns = env_usize("SAS_STORE_CONNS", 1000);
    if conns > 0 {
        daemon_phase(conns);
    }
}

fn local_phase() {
    let batches = env_usize("SAS_STORE_BATCHES", 240);
    let rows = env_usize("SAS_STORE_ROWS", 500) as u64;
    let queries = env_usize("SAS_STORE_QUERIES", 4000);
    let budget = env_usize("SAS_STORE_BUDGET", 4000);

    let dir = std::env::temp_dir().join(format!("sas-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        Store::open(
            &dir,
            StoreConfig {
                budget: Some(budget),
                cache_capacity: 4096,
            },
        )
        .expect("open store"),
    );

    // Pre-build the batch summaries so ingest timing measures the store
    // (merge + frame write + manifest + snapshot swap), not the sampler.
    let built: Vec<(u64, Box<dyn Summary>)> = (0..batches as u64)
        .map(|i| {
            let data: Vec<WeightedKey> = (0..rows)
                .map(|r| WeightedKey::new(i * rows + r, 0.5 + ((i + r) % 13) as f64))
                .collect();
            let mut rng = StdRng::seed_from_u64(i);
            let sample = sas_sampling::order::sample(&data, (rows as usize).min(budget), &mut rng);
            // 45-tick spacing crosses minute windows and spans hours, so
            // the compaction pass below has real work.
            (
                i * 45,
                Box::new(StoredSample::one_dim(sample)) as Box<dyn Summary>,
            )
        })
        .collect();
    let total_rows = batches as u64 * rows;

    let mut table: Vec<Vec<String>> = Vec::new();
    let (_, secs) = timed(|| {
        for (ts, batch) in built {
            store.ingest("bench", ts, batch).expect("ingest");
        }
    });
    table.push(vec![
        "ingest".into(),
        "1".into(),
        format!("{:.0}", batches as f64 / secs),
        format!("{:.3e}", total_rows as f64 / secs),
    ]);

    let (rollups, secs) = timed(|| store.compact_once().expect("compact"));
    table.push(vec![
        format!("compact({rollups} rollups)"),
        "1".into(),
        format!("{:.0}", rollups as f64 / secs.max(1e-9)),
        "-".into(),
    ]);

    let key_span = total_rows;
    for threads in [1usize, 4, 8] {
        for (mode, hot) in [("query-cold", false), ("query-hot", true)] {
            let per_thread = queries / threads;
            let (_, secs) = timed(|| {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let store = store.clone();
                        scope.spawn(move || {
                            for i in 0..per_thread {
                                // Salt with the thread count so each run
                                // probes ranges no earlier run cached.
                                let lo = if hot {
                                    0
                                } else {
                                    mix((threads * 1_000_003 + t * per_thread + i) as u64)
                                        % key_span
                                };
                                let range = [(lo, lo + key_span / 4)];
                                let ans = store.query("bench", SummaryKind::Sample, &range, None);
                                assert!(ans.value >= 0.0);
                            }
                        });
                    }
                });
            });
            let done = (per_thread * threads) as f64;
            table.push(vec![
                mode.into(),
                threads.to_string(),
                format!("{:.0}", done / secs),
                "-".into(),
            ]);
        }
    }

    let stats = store.stats();
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    eprintln!(
        "# windows={} frame_bytes={} cache_hits={} cache_misses={}",
        get("windows"),
        get("frame_bytes"),
        get("cache_hits"),
        get("cache_misses"),
    );
    print_table(
        "store throughput (ingest: batches/s + rows/s; query: ops/s)",
        &["op", "threads", "ops_per_sec", "rows_per_sec"],
        &table,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- daemon (c10k) phase ------------------------------------------------

/// Windows pre-ingested before the load starts, so queries have real work.
const SEED_WINDOWS: u64 = 24;
/// Rows per pre-ingested window.
const SEED_ROWS: u64 = 256;

/// One pipelined connection inside the load generator: its own outbound
/// byte queue, inbound parse buffer, and the FIFO of send timestamps the
/// in-order responses are matched against.
struct LoadConn {
    stream: TcpStream,
    out: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
    sent: u64,
    recvd: u64,
    pending: VecDeque<(Instant, u16)>,
}

impl LoadConn {
    /// Desired interest: read while responses are owed, write while bytes
    /// are queued.
    fn interest(&self, total: u64) -> Interest {
        Interest {
            readable: self.recvd < total,
            writable: self.out_pos < self.out.len(),
        }
    }

    fn done(&self, total: u64) -> bool {
        self.recvd >= total
    }
}

/// The deterministic mixed workload: one ingest, four queries, one
/// estimate and one ping per eight requests, varied by connection and
/// request index.
fn nth_request(conn: u64, i: u64, ingest_frame: &[u8]) -> (Request, u16) {
    let span = SEED_WINDOWS * SEED_ROWS;
    match (conn.wrapping_mul(7).wrapping_add(i)) % 8 {
        0 => (
            Request::Ingest {
                dataset: "load".into(),
                ts: 61 + ((conn * 13 + i) % 240) * 60,
                frame: ingest_frame.to_vec(),
            },
            proto::REQ_INGEST,
        ),
        6 => (
            Request::Estimate {
                dataset: "bench".into(),
                kind: SummaryKind::Sample,
                query: Query::Total,
                confidence: 0.95,
                time: None,
            },
            proto::REQ_ESTIMATE,
        ),
        7 => (Request::Ping, proto::REQ_PING),
        slot => {
            let lo = mix(conn * 1_000_003 + i * 8 + slot) % span;
            (
                Request::Query {
                    dataset: "bench".into(),
                    kind: SummaryKind::Sample,
                    range: vec![(lo, lo + span / 4)],
                    time: None,
                },
                proto::REQ_QUERY,
            )
        }
    }
}

/// Tops up a connection's pipeline to `depth` in-flight requests.
fn refill(c: &mut LoadConn, token: u64, total: u64, depth: usize, ingest_frame: &[u8]) {
    while c.sent < total && c.pending.len() < depth {
        let (req, tag) = nth_request(token, c.sent, ingest_frame);
        let frame = encode_request(&req);
        c.out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        c.out.extend_from_slice(&frame);
        c.pending.push_back((Instant::now(), tag));
        c.sent += 1;
    }
}

/// Results of one load run. Latencies live twice: the lock-free
/// histogram is what gets reported (the same math the daemon's metrics
/// use), the raw vector is kept as sort-based ground truth to cross-check
/// the histogram's percentiles against.
struct LoadReport {
    requests: u64,
    ok: u64,
    errs: u64,
    secs: f64,
    latencies_ms: Vec<f64>,
    hist: sas_obs::HistogramSnapshot,
}

/// Drives `conns` concurrent pipelined connections from a single thread —
/// the client side is the same poller the daemon runs on, so neither end
/// spends a thread per connection.
fn drive_load(addr: std::net::SocketAddr, conns: usize, depth: usize, per_conn: u64) -> LoadReport {
    let ingest_frame = {
        let rows: Vec<WeightedKey> = (0..16u64).map(|k| WeightedKey::new(k, 1.0)).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let sample = sas_sampling::order::sample(&rows, rows.len(), &mut rng);
        encode_summary(&StoredSample::one_dim(sample))
    };

    let mut poller = Poller::new().expect("client poller");
    let mut cache = InterestCache::new();
    let mut slots: Vec<Option<LoadConn>> = Vec::with_capacity(conns);
    for token in 0..conns as u64 {
        let stream = connect_retry(addr);
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        let mut c = LoadConn {
            stream,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            sent: 0,
            recvd: 0,
            pending: VecDeque::new(),
        };
        refill(&mut c, token, per_conn, depth, &ingest_frame);
        use std::os::fd::AsRawFd;
        cache
            .register(
                &mut poller,
                c.stream.as_raw_fd(),
                token,
                c.interest(per_conn),
            )
            .expect("register");
        slots.push(Some(c));
    }

    let start = Instant::now();
    let deadline = start + Duration::from_secs(600);
    let hist = sas_obs::Histogram::new();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(conns * per_conn as usize);
    let mut ok = 0u64;
    let mut errs = 0u64;
    let mut open = conns;
    let mut events = Vec::new();
    while open > 0 {
        assert!(Instant::now() < deadline, "load run exceeded 600 s");
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("client wait");
        for ev in events.clone() {
            let token = ev.token;
            let Some(c) = slots[token as usize].as_mut() else {
                continue;
            };
            if ev.writable || ev.error {
                flush_out(c);
            }
            if ev.readable || ev.error {
                read_and_parse(
                    c,
                    token,
                    per_conn,
                    depth,
                    &ingest_frame,
                    &mut latencies_ms,
                    &hist,
                    &mut ok,
                    &mut errs,
                );
                flush_out(c); // refill may have queued more requests
            }
            use std::os::fd::AsRawFd;
            let fd = c.stream.as_raw_fd();
            if c.done(per_conn) {
                cache.deregister(&mut poller, fd).expect("deregister");
                slots[token as usize] = None;
                open -= 1;
            } else {
                cache
                    .ensure(&mut poller, fd, token, c.interest(per_conn))
                    .expect("reregister");
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LoadReport {
        requests: conns as u64 * per_conn,
        ok,
        errs,
        secs,
        latencies_ms,
        hist: hist.snapshot(),
    }
}

/// Connects with a short retry loop: a kernel accept backlog overflowing
/// during mass connect is expected at this scale, not an error.
fn connect_retry(addr: std::net::SocketAddr) -> TcpStream {
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    panic!("could not connect to the daemon at {addr}");
}

/// Writes queued bytes until the socket would block.
fn flush_out(c: &mut LoadConn) {
    while c.out_pos < c.out.len() {
        match c.stream.write(&c.out[c.out_pos..]) {
            Ok(0) => break,
            Ok(n) => c.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => panic!("client write: {e}"),
        }
    }
    if c.out_pos == c.out.len() {
        c.out.clear();
        c.out_pos = 0;
    }
}

/// Reads until the socket would block, then parses every complete
/// response frame: match it to the oldest pending request, record the
/// latency, and top the pipeline back up.
#[allow(clippy::too_many_arguments)]
fn read_and_parse(
    c: &mut LoadConn,
    token: u64,
    per_conn: u64,
    depth: usize,
    ingest_frame: &[u8],
    latencies_ms: &mut Vec<f64>,
    hist: &sas_obs::Histogram,
    ok: &mut u64,
    errs: &mut u64,
) {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match c.stream.read(&mut chunk) {
            Ok(0) => panic!("daemon closed connection {token} early"),
            Ok(n) => c.inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => panic!("client read: {e}"),
        }
    }
    let mut consumed = 0;
    loop {
        let rest = &c.inbuf[consumed..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len {
            break;
        }
        let frame = &rest[4..4 + len];
        let (sent_at, tag) = c.pending.pop_front().expect("response without a request");
        let elapsed = sent_at.elapsed();
        latencies_ms.push(elapsed.as_secs_f64() * 1e3);
        hist.record_duration(elapsed);
        match decode_response(frame, tag) {
            Ok(Response::Err(_)) | Ok(Response::Busy(_)) | Err(_) => *errs += 1,
            Ok(_) => *ok += 1,
        }
        c.recvd += 1;
        consumed += 4 + len;
    }
    c.inbuf.drain(..consumed);
    refill(c, token, per_conn, depth, ingest_frame);
}

fn daemon_phase(conns: usize) {
    let depth = env_usize("SAS_STORE_DEPTH", 8).max(1);
    let per_conn = env_usize("SAS_STORE_CONN_REQS", 30) as u64;

    let dir = std::env::temp_dir().join(format!("sas-store-c10k-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(Store::open(&dir, StoreConfig::default()).expect("open store"));
    for i in 0..SEED_WINDOWS {
        let rows: Vec<WeightedKey> = (i * SEED_ROWS..(i + 1) * SEED_ROWS)
            .map(|k| WeightedKey::new(k, 1.0 + (k % 5) as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(i);
        let sample = sas_sampling::order::sample(&rows, rows.len(), &mut rng);
        store
            .ingest(
                "bench",
                61 + i * 60,
                Box::new(StoredSample::one_dim(sample)),
            )
            .expect("seed ingest");
    }

    let server = Server::start_with(
        store,
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            max_conns: conns + 64,
            ..ServerConfig::default()
        },
    )
    .expect("start daemon");

    let report = drive_load(server.local_addr(), conns, depth, per_conn);
    server.shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.ok + report.errs, report.requests);
    assert_eq!(
        report.errs, 0,
        "daemon answered {} requests with errors",
        report.errs
    );

    // Reported percentiles come from the histogram — the same math the
    // daemon's metrics endpoint uses. The sorted vector is the ground
    // truth it must agree with, rank-for-rank, to within one log bucket.
    let snap = &report.hist;
    sas_bench::assert_hist_matches_sorted(snap, &report.latencies_ms, "daemon load");
    let p50 = snap.percentile(50.0) as f64 / 1e6;
    let p95 = snap.percentile(95.0) as f64 / 1e6;
    let p99 = snap.percentile(99.0) as f64 / 1e6;
    let max = snap.max as f64 / 1e6;
    let rps = report.requests as f64 / report.secs;
    print_table(
        "daemon c10k (pipelined mixed ingest/query/estimate/ping)",
        &[
            "conns", "depth", "requests", "secs", "rps", "p50_ms", "p95_ms", "p99_ms", "max_ms",
        ],
        &[vec![
            conns.to_string(),
            depth.to_string(),
            report.requests.to_string(),
            format!("{:.2}", report.secs),
            format!("{rps:.0}"),
            format!("{p50:.3}"),
            format!("{p95:.3}"),
            format!("{p99:.3}"),
            format!("{max:.3}"),
        ]],
    );

    if let Ok(path) = std::env::var("SAS_STORE_JSON") {
        if !path.is_empty() {
            let json = format!(
                "{{\n  \"bench\": \"store-daemon\",\n  \"conns\": {conns},\n  \"pipeline_depth\": {depth},\n  \"requests\": {},\n  \"duration_secs\": {:.3},\n  \"throughput_rps\": {:.0},\n  \"latency_ms\": {{ \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"max\": {:.3} }},\n  \"responses\": {{ \"ok\": {}, \"err\": {} }}\n}}\n",
                report.requests, report.secs, rps, p50, p95, p99, max, report.ok, report.errs,
            );
            std::fs::write(&path, json).expect("write json");
            eprintln!("# wrote {path}");
        }
    }
}
