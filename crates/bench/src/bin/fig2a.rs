//! Figure 2(a): accuracy vs summary size on Network data, uniform-area
//! queries of 25 ranges each.
//!
//! Paper's reading: aware ≲ obliv/2 ≲ wavelet < qdigest (1–2 orders worse);
//! sketch error is off the scale and is reported here but was dropped from
//! the paper's plot.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_area_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let side = 1u64 << w.bits;
    let mut qrng = StdRng::seed_from_u64(42);
    let queries = uniform_area_queries(&mut qrng, side, side, scale.query_count(), 25, 0.3);

    eprintln!(
        "fig2a: network data, {} pairs, domain 2^{} per axis, {} uniform-area queries x 25 ranges",
        w.data.len(),
        w.bits,
        queries.len()
    );

    // One full wavelet transform serves the whole sweep via truncation.
    let wavelet_full = WaveletSummary::build(&w.data, w.bits, w.bits, usize::MAX);

    let mut rows = Vec::new();
    for &s in &scale.size_sweep() {
        let aware = build_aware(&w.data, s, 1000 + s as u64);
        let obliv = build_obliv(&w.data, s, 2000 + s as u64);
        let wavelet = wavelet_full.truncated(s);
        let qdigest = QDigestSummary::build(&w.data, w.bits, s);
        rows.push(vec![
            s.to_string(),
            fmt_err(avg_abs_error(&aware, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&obliv, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&wavelet, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&qdigest, &w.exact, &queries, w.total)),
        ]);
    }
    print_table(
        "Figure 2(a): Network, uniform-area queries (25 ranges), absolute error vs summary size",
        &["size", "aware", "obliv", "wavelet", "qdigest"],
        &rows,
    );
}
