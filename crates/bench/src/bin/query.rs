//! Query-API throughput: batch vs. loop evaluation across the five summary
//! kinds, and estimate throughput against a live store at 1/4/8 reader
//! threads — the measurement behind the `QueryBatch` one-pass claim.
//!
//! Two tables:
//!
//! 1. **summary-level** — per kind, `M` mixed queries answered one
//!    `answer()` call at a time (loop) vs. one `answer_batch()` call
//!    (batch: a single pass over the sample items for the sample-based
//!    kinds).
//! 2. **store-level** — `Store::estimate` ops/s at 1/4/8 threads, cold
//!    (distinct canonical queries, every call walks the windows) and hot
//!    (one repeated query, served by the LRU cache).
//!
//! Environment knobs: `SAS_QUERY_ITEMS` (rows per dataset, default 20000),
//! `SAS_QUERY_BATCH` (queries per batch, default 64), `SAS_QUERY_OPS`
//! (store queries per thread count, default 4000).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_bench::{print_table, timed};
use sas_core::varopt::VarOptSampler;
use sas_core::WeightedKey;
use sas_sampling::product::SpatialData;
use sas_store::{Store, StoreConfig};
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::{Query, StoredSample, Summary, SummaryKind};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// splitmix64, decorrelating query indices from probed ranges.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A mixed battery over a 1-D key span or a 2-D `2^bits` square: boxes,
/// multi-ranges, points, hierarchy nodes, and totals.
fn battery(count: usize, dims: usize, span: u64, salt: u64) -> Vec<Query> {
    (0..count as u64)
        .map(|i| {
            let lo = mix(i ^ salt) % span;
            let hi = lo + (mix(i ^ salt ^ 1) % (span - lo)).max(1);
            match i % 5 {
                0 => {
                    if dims == 1 {
                        Query::BoxRange(vec![(lo, hi)])
                    } else {
                        Query::BoxRange(vec![(lo, hi), (mix(i) % span, span - 1)])
                    }
                }
                1 => {
                    let mid = lo + (hi - lo) / 2;
                    if mid + 1 < hi && lo < mid {
                        Query::MultiRange(vec![vec![(lo, mid)], vec![(mid + 1, hi)]])
                    } else {
                        Query::BoxRange(vec![(lo, hi)])
                    }
                }
                2 => Query::Point(vec![lo % span; dims]),
                3 => Query::HierarchyNode {
                    level: 4,
                    index: (lo % span) >> 4,
                },
                _ => Query::Total,
            }
        })
        .collect()
}

fn main() {
    let items = env_usize("SAS_QUERY_ITEMS", 20_000);
    let batch = env_usize("SAS_QUERY_BATCH", 64);
    let ops = env_usize("SAS_QUERY_OPS", 4000);
    let confidence = 0.95;

    let data: Vec<WeightedKey> = (0..items as u64)
        .map(|k| WeightedKey::new(k, 0.5 + (k % 13) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let sample = sas_sampling::order::sample(&data, 2000, &mut rng);
    let mut varopt = VarOptSampler::new(2000);
    for wk in &data {
        varopt.push(wk.key, wk.weight, &mut rng);
    }
    let rows: Vec<(u64, u64, f64)> = (0..items as u64)
        .map(|i| (mix(i) % 256, mix(i ^ 99) % 256, 0.5 + (i % 9) as f64))
        .collect();
    let spatial = SpatialData::from_xyw(&rows);
    let summaries: Vec<(SummaryKind, Box<dyn Summary>)> = vec![
        (
            SummaryKind::Sample,
            Box::new(StoredSample::one_dim(sample.clone())),
        ),
        (SummaryKind::VarOptReservoir, Box::new(varopt)),
        (
            SummaryKind::QDigest,
            Box::new(QDigestSummary::build(&spatial, 8, 800)),
        ),
        (
            SummaryKind::Wavelet,
            Box::new(WaveletSummary::build(&spatial, 8, 8, 800)),
        ),
        (
            SummaryKind::CountSketch,
            Box::new(SketchSummary::build(&spatial, 8, 8, 4000, 7)),
        ),
    ];

    let mut table: Vec<Vec<String>> = Vec::new();
    for (kind, summary) in &summaries {
        let dims = summary.dims();
        let span = if dims == 1 { items as u64 } else { 256 };
        let queries = battery(batch, dims, span, kind.tag() as u64);
        let (loop_answers, loop_secs) = timed(|| {
            queries
                .iter()
                .map(|q| summary.answer(q, confidence).expect("loop answer"))
                .collect::<Vec<_>>()
        });
        let (batch_answers, batch_secs) = timed(|| {
            summary
                .answer_batch(&queries, confidence)
                .expect("batch answer")
        });
        assert_eq!(loop_answers.len(), batch_answers.len());
        for (a, b) in loop_answers.iter().zip(&batch_answers) {
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "{kind}");
        }
        table.push(vec![
            kind.name().into(),
            format!("{:.0}", queries.len() as f64 / loop_secs),
            format!("{:.0}", queries.len() as f64 / batch_secs),
            format!("{:.2}", loop_secs / batch_secs),
        ]);
    }
    print_table(
        "batch vs loop (queries/s, one summary per kind)",
        &["kind", "loop_qps", "batch_qps", "speedup"],
        &table,
    );

    // Store-level: ingest one window per kind, then hammer estimates.
    let dir = std::env::temp_dir().join(format!("sas-query-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        Store::open(
            &dir,
            StoreConfig {
                budget: None,
                cache_capacity: 4096,
            },
        )
        .expect("open store"),
    );
    for (i, (_, summary)) in summaries.iter().enumerate() {
        store
            .ingest("bench", i as u64 * 60, summary.clone())
            .expect("ingest");
    }

    let mut table: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4, 8] {
        for (mode, hot) in [("estimate-cold", false), ("estimate-hot", true)] {
            let per_thread = ops / threads;
            let (_, secs) = timed(|| {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let store = store.clone();
                        scope.spawn(move || {
                            for i in 0..per_thread {
                                let lo = if hot {
                                    0
                                } else {
                                    mix((threads * 1_000_003 + t * per_thread + i) as u64)
                                        % items as u64
                                };
                                let q = Query::interval(lo, lo + items as u64 / 4);
                                let ans = store
                                    .estimate("bench", SummaryKind::Sample, &q, confidence, None)
                                    .expect("estimate");
                                assert!(ans.estimate.lower <= ans.estimate.upper);
                            }
                        });
                    }
                });
            });
            table.push(vec![
                mode.into(),
                threads.to_string(),
                format!("{:.0}", (per_thread * threads) as f64 / secs),
            ]);
        }
    }
    print_table(
        "store estimate throughput (ops/s)",
        &["op", "threads", "ops_per_sec"],
        &table,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
