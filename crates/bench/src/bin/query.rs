//! Query-API throughput: batch vs. loop evaluation across the summary
//! kinds (including a 2-D stored sample — the SoA hot path), and estimate
//! throughput against a live store at 1/4/8 reader threads.
//!
//! Two tables:
//!
//! 1. **summary-level** — per kind, `M` mixed queries answered one
//!    `answer()` call at a time (loop) vs. one `answer_batch()` call
//!    (batch: a single pass over the sample items for the sample-based
//!    kinds), repeated `SAS_QUERY_REPS` times for stable rates.
//! 2. **store-level** — `Store::estimate` ops/s at 1/4/8 threads, cold
//!    (distinct canonical queries, every call walks the windows) and hot
//!    (one repeated query, served by the LRU cache).
//!
//! Environment knobs: `SAS_QUERY_ITEMS` (rows per dataset, default 20000),
//! `SAS_QUERY_BATCH` (queries per batch, default 64), `SAS_QUERY_OPS`
//! (store queries per thread count, default 4000), `SAS_QUERY_REPS`
//! (summary-level repetitions, default 50).
//!
//! `--json PATH` writes the machine-readable result consumed by
//! `scripts/bench_core.sh`; any phase failure (including a batch answer
//! drifting from the loop answer bitwise) exits non-zero.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_bench::{env_usize, parse_json_flag, print_table, timed, JsonObj};
use sas_core::varopt::VarOptSampler;
use sas_core::{KeyId, WeightedKey};
use sas_sampling::product::SpatialData;
use sas_store::{Store, StoreConfig};
use sas_structures::product::Point;
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::{Query, StoredSample, Summary, SummaryKind};

/// splitmix64, decorrelating query indices from probed ranges.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A mixed battery over a 1-D key span or a 2-D `2^bits` square: boxes,
/// multi-ranges, points, hierarchy nodes, and totals.
fn battery(count: usize, dims: usize, span: u64, salt: u64) -> Vec<Query> {
    (0..count as u64)
        .map(|i| {
            let lo = mix(i ^ salt) % span;
            let hi = lo + (mix(i ^ salt ^ 1) % (span - lo)).max(1);
            match i % 5 {
                0 => {
                    if dims == 1 {
                        Query::BoxRange(vec![(lo, hi)])
                    } else {
                        Query::BoxRange(vec![(lo, hi), (mix(i) % span, span - 1)])
                    }
                }
                1 => {
                    let mid = lo + (hi - lo) / 2;
                    if mid + 1 < hi && lo < mid {
                        Query::MultiRange(vec![vec![(lo, mid)], vec![(mid + 1, hi)]])
                    } else {
                        Query::BoxRange(vec![(lo, hi)])
                    }
                }
                2 => Query::Point(vec![lo % span; dims]),
                3 => Query::HierarchyNode {
                    level: 4,
                    index: (lo % span) >> 4,
                },
                _ => Query::Total,
            }
        })
        .collect()
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("query bench failed: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let json_path = parse_json_flag()?;
    let items = env_usize("SAS_QUERY_ITEMS", 20_000);
    let batch = env_usize("SAS_QUERY_BATCH", 64);
    let ops = env_usize("SAS_QUERY_OPS", 4000);
    let reps = env_usize("SAS_QUERY_REPS", 50).max(1);
    let confidence = 0.95;

    let data: Vec<WeightedKey> = (0..items as u64)
        .map(|k| WeightedKey::new(k, 0.5 + (k % 13) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let sample = sas_sampling::order::sample(&data, 2000, &mut rng);
    let mut varopt = VarOptSampler::new(2000);
    for wk in &data {
        varopt.push(wk.key, wk.weight, &mut rng);
    }
    let rows: Vec<(u64, u64, f64)> = (0..items as u64)
        .map(|i| (mix(i) % 256, mix(i ^ 99) % 256, 0.5 + (i % 9) as f64))
        .collect();
    let spatial = SpatialData::from_xyw(&rows);

    // The 2-D stored sample: keys are row indices, each carrying its (x, y)
    // location — the layout whose per-item range tests dominate the
    // answer_batch profile.
    let sample2d = {
        let keys2d: Vec<WeightedKey> = rows
            .iter()
            .enumerate()
            .map(|(i, &(_, _, w))| WeightedKey::new(i as u64, w))
            .collect();
        let mut r = StdRng::seed_from_u64(2);
        let smp = sas_sampling::order::sample(&keys2d, 2000, &mut r);
        let points: HashMap<KeyId, Point> = rows
            .iter()
            .enumerate()
            .map(|(i, &(x, y, _))| (i as u64, Point::xy(x, y)))
            .collect();
        StoredSample::two_dim(smp, points).map_err(|e| format!("build 2-D sample: {e}"))?
    };

    let summaries: Vec<(&str, Box<dyn Summary>)> = vec![
        ("sample", Box::new(StoredSample::one_dim(sample.clone()))),
        ("sample2d", Box::new(sample2d)),
        ("varopt", Box::new(varopt)),
        ("qdigest", Box::new(QDigestSummary::build(&spatial, 8, 800))),
        (
            "wavelet",
            Box::new(WaveletSummary::build(&spatial, 8, 8, 800)),
        ),
        (
            "sketch",
            Box::new(SketchSummary::build(&spatial, 8, 8, 4000, 7)),
        ),
    ];

    let mut table: Vec<Vec<String>> = Vec::new();
    let mut rates: Vec<(String, f64, f64)> = Vec::new();
    for (idx, (label, summary)) in summaries.iter().enumerate() {
        let dims = summary.dims();
        let span = if dims == 1 { items as u64 } else { 256 };
        let queries = battery(batch, dims, span, idx as u64 + 1);
        let mut loop_err = None;
        let (loop_answers, loop_secs) = timed(|| {
            let mut last = Vec::new();
            for _ in 0..reps {
                match queries
                    .iter()
                    .map(|q| summary.answer(q, confidence))
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(a) => last = a,
                    Err(e) => loop_err = Some(format!("{label}: loop answer: {e}")),
                }
            }
            last
        });
        let mut batch_err = None;
        let (batch_answers, batch_secs) = timed(|| {
            let mut last = Vec::new();
            for _ in 0..reps {
                match summary.answer_batch(&queries, confidence) {
                    Ok(a) => last = a,
                    Err(e) => batch_err = Some(format!("{label}: batch answer: {e}")),
                }
            }
            last
        });
        if let Some(e) = loop_err.or(batch_err) {
            return Err(e);
        }
        if loop_answers.len() != batch_answers.len() {
            return Err(format!("{label}: loop/batch answer count mismatch"));
        }
        for (q, (a, b)) in queries.iter().zip(loop_answers.iter().zip(&batch_answers)) {
            if a.value.to_bits() != b.value.to_bits() {
                return Err(format!(
                    "{label}: batch answer drifted from loop answer on {q}: {} vs {}",
                    a.value, b.value
                ));
            }
        }
        let total_queries = (queries.len() * reps) as f64;
        let loop_qps = total_queries / loop_secs;
        let batch_qps = total_queries / batch_secs;
        rates.push(((*label).to_string(), loop_qps, batch_qps));
        table.push(vec![
            (*label).to_string(),
            format!("{loop_qps:.0}"),
            format!("{batch_qps:.0}"),
            format!("{:.2}", loop_secs / batch_secs),
        ]);
    }
    print_table(
        &format!("batch vs loop (queries/s, {batch} queries x {reps} reps)"),
        &["kind", "loop_qps", "batch_qps", "speedup"],
        &table,
    );

    // Store-level: ingest one window per kind, then hammer estimates.
    let dir = std::env::temp_dir().join(format!("sas-query-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        Store::open(
            &dir,
            StoreConfig {
                budget: None,
                cache_capacity: 4096,
            },
        )
        .map_err(|e| format!("open store: {e}"))?,
    );
    for (i, (_, summary)) in summaries.iter().enumerate() {
        store
            .ingest("bench", i as u64 * 60, summary.clone())
            .map_err(|e| format!("ingest: {e}"))?;
    }

    let mut table: Vec<Vec<String>> = Vec::new();
    let mut store_hot_8t = 0.0;
    for threads in [1usize, 4, 8] {
        for (mode, hot) in [("estimate-cold", false), ("estimate-hot", true)] {
            let per_thread = ops / threads;
            let (worker_results, secs) = timed(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let store = store.clone();
                            scope.spawn(move || -> Result<(), String> {
                                for i in 0..per_thread {
                                    let lo = if hot {
                                        0
                                    } else {
                                        mix((threads * 1_000_003 + t * per_thread + i) as u64)
                                            % items as u64
                                    };
                                    let q = Query::interval(lo, lo + items as u64 / 4);
                                    let ans = store
                                        .estimate(
                                            "bench",
                                            SummaryKind::Sample,
                                            &q,
                                            confidence,
                                            None,
                                        )
                                        .map_err(|e| format!("estimate: {e}"))?;
                                    if ans.estimate.lower > ans.estimate.upper {
                                        return Err("estimate bounds inverted".into());
                                    }
                                }
                                Ok(())
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("estimate worker panicked"))
                        .collect::<Result<Vec<_>, _>>()
                })
            });
            worker_results?;
            let ops_per_sec = (per_thread * threads) as f64 / secs;
            if hot && threads == 8 {
                store_hot_8t = ops_per_sec;
            }
            table.push(vec![
                mode.into(),
                threads.to_string(),
                format!("{ops_per_sec:.0}"),
            ]);
        }
    }
    print_table(
        "store estimate throughput (ops/s)",
        &["op", "threads", "ops_per_sec"],
        &table,
    );
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(path) = json_path {
        let mut obj = JsonObj::new();
        obj.str("bench", "core_query")
            .int("items", items as u64)
            .int("batch", batch as u64)
            .int("reps", reps as u64);
        for (label, loop_qps, batch_qps) in &rates {
            if label == "sample" {
                obj.num("answer_batch_1d_qps", *batch_qps)
                    .num("answer_loop_1d_qps", *loop_qps);
            } else if label == "sample2d" {
                obj.num("answer_batch_2d_qps", *batch_qps)
                    .num("answer_loop_2d_qps", *loop_qps);
            }
        }
        let mut kinds = JsonObj::new();
        for (label, loop_qps, batch_qps) in &rates {
            let mut kind = JsonObj::new();
            kind.num("loop_qps", *loop_qps).num("batch_qps", *batch_qps);
            kinds.obj(label, &kind);
        }
        obj.obj("kinds", &kinds)
            .num("store_hot_8t_ops_per_s", store_hot_8t);
        obj.write(&path)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
