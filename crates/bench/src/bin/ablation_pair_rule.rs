//! Ablation: where does the structure-awareness win come from?
//!
//! Both samplers below are VarOpt with identical IPPS probabilities; they
//! differ only in *which pairs* are aggregated:
//!
//! * `structured` — lowest-LCA pairing along the kd-hierarchy (the paper's
//!   scheme);
//! * `arbitrary` — pairs chosen without regard to structure (equivalent in
//!   distribution-class to oblivious VarOpt).
//!
//! Per-key estimates are identically distributed; only range behaviour
//! differs — demonstrating that pair selection alone carries the benefit.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_core::aggregate::{aggregate_all, AggregationState};
use sas_core::Sample;
use sas_data::uniform_area_queries;
use sas_sampling::IppsSetup;
use sas_summaries::exact::SampleSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let side = 1u64 << w.bits;
    let s = 1000;
    let mut qrng = StdRng::seed_from_u64(21);
    let queries = uniform_area_queries(&mut qrng, side, side, scale.query_count(), 25, 0.3);

    eprintln!("ablation_pair_rule: network data, summary size {s}");

    let seeds = 5;
    let mut err_structured = 0.0;
    let mut err_arbitrary = 0.0;
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        // Structured: main-memory kd-hierarchy aggregation.
        let aware = sas_sampling::product::sample(&w.data, s, &mut rng);
        let aware = SampleSummary::new("structured", &aware, &w.data);
        err_structured += avg_abs_error(&aware, &w.exact, &queries, w.total);

        // Arbitrary: same IPPS setup, pairs aggregated in arbitrary order.
        let setup = IppsSetup::compute(&w.data.keys, s);
        let keys: Vec<u64> = setup.active.iter().map(|(wk, _)| wk.key).collect();
        let probs: Vec<f64> = setup.active.iter().map(|(_, p)| *p).collect();
        let mut state = AggregationState::new(keys, probs);
        aggregate_all(&mut state, &mut rng);
        let mut smp = Sample::from_inclusion(
            &w.data.keys,
            &[],
            state.included_keys().collect::<Vec<_>>(),
            setup.tau,
        );
        smp.merge(Sample::from_inclusion(
            &w.data.keys,
            &[],
            setup.certain.iter().map(|wk| wk.key),
            setup.tau,
        ));
        let arb = SampleSummary::new("arbitrary", &smp, &w.data);
        err_arbitrary += avg_abs_error(&arb, &w.exact, &queries, w.total);
    }

    print_table(
        "Ablation: pair-selection rule (same IPPS probabilities, same VarOpt class)",
        &["rule", "avg_abs_error"],
        &[
            vec![
                "structured(lowest-LCA/kd)".into(),
                fmt_err(err_structured / seeds as f64),
            ],
            vec!["arbitrary".into(), fmt_err(err_arbitrary / seeds as f64)],
        ],
    );
}
