//! One-dimensional comparison: order-structure-aware sampling vs the
//! classic 1-D wavelet and q-digest.
//!
//! The paper's related-work observation: dedicated summaries "have shown
//! their value in efficiently summarizing one-dimensional data (essentially,
//! arrays of counts)" while their 2-D behaviour degrades. This experiment
//! regenerates the 1-D side of that statement: on a 1-D heavy-tailed array
//! all three methods are competitive, in stark contrast to the 2-D figures.
//!
//! `--json PATH` writes the per-size mean errors in machine-readable form;
//! any phase failure exits non-zero.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sas_bench::*;
use sas_core::WeightedKey;
use sas_structures::order::Interval;
use sas_summaries::qdigest1d::QDigest1D;
use sas_summaries::wavelet1d::Wavelet1D;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("one_dim bench failed: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let json_path = parse_json_flag()?;
    let bits = 16u32;
    let side = 1u64 << bits;
    let n = env_usize("SAS_ONEDIM_N", 60_000) as u64;
    let mut rng = StdRng::seed_from_u64(1);
    // Heavy-tailed weights over clustered positions (1-D analogue of the
    // network data).
    let mut agg: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for _ in 0..n {
        let cluster = rng.gen_range(0..64u64) * (side / 64);
        let pos = cluster + (rng.gen_range(0..side / 64) / (1 + rng.gen_range(0..8)));
        let w = if rng.gen_bool(0.05) {
            rng.gen_range(100.0..1000.0)
        } else {
            rng.gen_range(0.1..5.0)
        };
        *agg.entry(pos).or_insert(0.0) += w;
    }
    let mut data: Vec<WeightedKey> = agg
        .into_iter()
        .map(|(k, w)| WeightedKey::new(k, w))
        .collect();
    data.sort_by_key(|wk| wk.key);
    let total: f64 = data.iter().map(|wk| wk.weight).sum();
    if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err("degenerate workload: total weight is not positive".into());
    }

    // Query battery: random intervals of mixed sizes.
    let mut qrng = StdRng::seed_from_u64(2);
    let queries: Vec<Interval> = (0..200)
        .map(|_| {
            let len = 1 + (side as f64 * 10f64.powf(qrng.gen_range(-4.0..-0.5))) as u64;
            let lo = qrng.gen_range(0..side - len);
            Interval::new(lo, lo + len - 1)
        })
        .collect();
    let exact = |iv: Interval| -> f64 {
        data.iter()
            .filter(|wk| iv.contains(wk.key))
            .map(|wk| wk.weight)
            .sum()
    };

    eprintln!(
        "one_dim: {} distinct positions, domain 2^{bits}",
        data.len()
    );

    let mut rows = Vec::new();
    let mut sizes_json = JsonObj::new();
    for &s in &[100usize, 300, 1000, 3000] {
        let mut srng = StdRng::seed_from_u64(100 + s as u64);
        let aware = sas_sampling::order::sample_by(&data, s, |k| k, &mut srng);
        if aware.len() != s.min(data.len()) {
            return Err(format!(
                "aware sample has {} entries, expected {}",
                aware.len(),
                s.min(data.len())
            ));
        }
        let wavelet = Wavelet1D::build(&data, bits, s);
        let qdigest = QDigest1D::build(&data, bits, s);
        let mean_err = |est: &dyn Fn(Interval) -> f64| -> f64 {
            queries
                .iter()
                .map(|&iv| (est(iv) - exact(iv)).abs())
                .sum::<f64>()
                / (queries.len() as f64 * total)
        };
        let aware_err = mean_err(&|iv| aware.subset_estimate(|k| iv.contains(k)));
        let wavelet_err = mean_err(&|iv| wavelet.estimate(iv));
        let qdigest_err = mean_err(&|iv| qdigest.estimate(iv));
        if !aware_err.is_finite() || !wavelet_err.is_finite() || !qdigest_err.is_finite() {
            return Err(format!("non-finite error at size {s}"));
        }
        let mut size_json = JsonObj::new();
        size_json
            .num("aware_err", aware_err)
            .num("wavelet_err", wavelet_err)
            .num("qdigest_err", qdigest_err);
        sizes_json.obj(&format!("s{s}"), &size_json);
        rows.push(vec![
            s.to_string(),
            fmt_err(aware_err),
            fmt_err(wavelet_err),
            fmt_err(qdigest_err),
        ]);
    }
    print_table(
        "One-dimensional interval queries: all methods competitive (contrast with Figures 2-4)",
        &["size", "aware(order)", "wavelet1d", "qdigest1d"],
        &rows,
    );

    if let Some(path) = json_path {
        let mut obj = JsonObj::new();
        obj.str("bench", "core_one_dim")
            .int("n", n)
            .int("positions", data.len() as u64)
            .obj("sizes", &sizes_json);
        obj.write(&path)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
