//! Figure 3(b): construction throughput (items/s) vs summary size on the
//! Tech Ticket data.
//!
//! Paper's reading: same ordering as Figure 3(a); wavelets are emphatically
//! impractical on this data ("generating and using samples takes seconds,
//! while using wavelets takes (literally) hours").

use sas_bench::*;
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = ticket_workload(scale);
    let n = w.data.len() as f64;

    eprintln!(
        "fig3b: ticket data, {} pairs, domain 2^{} per axis, construction throughput",
        w.data.len(),
        w.bits
    );

    let mut rows = Vec::new();
    for &s in &scale.size_sweep() {
        let (_, t_aware) = timed(|| build_aware(&w.data, s, 41));
        let (_, t_obliv) = timed(|| build_obliv(&w.data, s, 42));
        let (_, t_wavelet) = timed(|| WaveletSummary::build(&w.data, w.bits, w.bits, s));
        let (_, t_qdigest) = timed(|| QDigestSummary::build(&w.data, w.bits, s));
        let (_, t_sketch) = timed(|| SketchSummary::build(&w.data, w.bits, w.bits, s, 43));
        rows.push(vec![
            s.to_string(),
            fmt_rate(n / t_aware),
            fmt_rate(n / t_obliv),
            fmt_rate(n / t_wavelet),
            fmt_rate(n / t_qdigest),
            fmt_rate(n / t_sketch),
        ]);
    }
    print_table(
        "Figure 3(b): Tech Ticket, construction throughput (items/s) vs summary size",
        &["size", "aware", "obliv", "wavelet", "qdigest", "sketch"],
        &rows,
    );
}
