//! All three error metrics the paper reports (Section 6.1: "we compute the
//! exact range sum ... and compare the absolute, sum-squared and relative
//! errors") on the Figure 2(b) setting — demonstrating "the same trends"
//! claim across metrics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_weight_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let s = 2700;
    let mut qrng = StdRng::seed_from_u64(31);
    let queries = uniform_weight_queries(&mut qrng, &w.data, scale.query_count(), 10, 0.1);

    let aware = build_aware(&w.data, s, 301);
    let obliv = build_obliv(&w.data, s, 302);
    let wavelet = WaveletSummary::build(&w.data, w.bits, w.bits, s);
    let qdigest = QDigestSummary::build(&w.data, w.bits, s);

    let mut rows = Vec::new();
    for (name, m) in [
        ("aware", error_metrics(&aware, &w.exact, &queries, w.total)),
        ("obliv", error_metrics(&obliv, &w.exact, &queries, w.total)),
        (
            "wavelet",
            error_metrics(&wavelet, &w.exact, &queries, w.total),
        ),
        (
            "qdigest",
            error_metrics(&qdigest, &w.exact, &queries, w.total),
        ),
    ] {
        rows.push(vec![
            name.to_string(),
            fmt_err(m.mean_abs),
            fmt_err(m.rms),
            fmt_err(m.mean_rel),
        ]);
    }
    print_table(
        "Error metrics on the Fig 2(b) setting (size 2700, uniform-weight 10-range queries, weight 0.1)",
        &["method", "mean_abs", "rms", "mean_rel"],
        &rows,
    );
}
