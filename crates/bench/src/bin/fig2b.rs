//! Figure 2(b): accuracy vs query weight on Network data, uniform-weight
//! queries of 10 ranges, summary size fixed at 2700 keys.
//!
//! Paper's reading: sampling methods beat wavelet/qdigest throughout;
//! q-digest error approaches the query weight itself; aware ≈ obliv for
//! light queries and ≈ obliv/2 for heavy ones; absolute error grows slowly
//! (relative error improves).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_weight_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let s = 2700;

    eprintln!(
        "fig2b: network data, {} pairs, summary size {s}, uniform-weight queries x 10 ranges",
        w.data.len()
    );

    let aware = build_aware(&w.data, s, 11);
    let obliv = build_obliv(&w.data, s, 12);
    let wavelet = WaveletSummary::build(&w.data, w.bits, w.bits, s);
    let qdigest = QDigestSummary::build(&w.data, w.bits, s);

    let mut rows = Vec::new();
    for &frac in &[0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.9] {
        let mut qrng = StdRng::seed_from_u64(500 + (frac * 1e4) as u64);
        let queries = uniform_weight_queries(&mut qrng, &w.data, scale.query_count(), 10, frac);
        rows.push(vec![
            format!("{frac}"),
            fmt_err(avg_abs_error(&aware, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&obliv, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&wavelet, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&qdigest, &w.exact, &queries, w.total)),
        ]);
    }
    print_table(
        "Figure 2(b): Network, uniform-weight queries (10 ranges), absolute error vs query weight",
        &["query_weight", "aware", "obliv", "wavelet", "qdigest"],
        &rows,
    );
}
