//! Figure 4(b): accuracy vs query weight on Tech Ticket data,
//! uniform-area queries of 25 ranges, fixed summary size.
//!
//! Paper's reading: wavelets become competitive at high query weights under
//! uniform-area querying, but sampling methods remain best overall.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_area_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn main() {
    let scale = Scale::from_env();
    let w = ticket_workload(scale);
    let s = 2700;
    let side = 1u64 << w.bits;

    eprintln!(
        "fig4b: ticket data, {} pairs, summary size {s}, uniform-area queries x 25 ranges",
        w.data.len()
    );

    let aware = build_aware(&w.data, s, 71);
    let obliv = build_obliv(&w.data, s, 72);
    let wavelet = WaveletSummary::build(&w.data, w.bits, w.bits, s);
    let qdigest = QDigestSummary::build(&w.data, w.bits, s);

    // Sweep rectangle scale: larger rectangles -> heavier queries. Bucket
    // the batteries by their realized weight fraction.
    let mut rows = Vec::new();
    for &max_frac in &[0.01, 0.03, 0.1, 0.2, 0.4, 0.8] {
        let mut qrng = StdRng::seed_from_u64(7000 + (max_frac * 1e3) as u64);
        let queries =
            uniform_area_queries(&mut qrng, side, side, scale.query_count(), 25, max_frac);
        let mean_weight: f64 = queries.iter().map(|q| w.exact.multi_sum(q)).sum::<f64>()
            / (queries.len() as f64 * w.total);
        rows.push(vec![
            format!("{mean_weight:.4}"),
            fmt_err(avg_abs_error(&aware, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&obliv, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&wavelet, &w.exact, &queries, w.total)),
            fmt_err(avg_abs_error(&qdigest, &w.exact, &queries, w.total)),
        ]);
    }
    print_table(
        "Figure 4(b): Tech Ticket, uniform-area queries (25 ranges), absolute error vs realized query weight",
        &["query_weight", "aware", "obliv", "wavelet", "qdigest"],
        &rows,
    );
}
