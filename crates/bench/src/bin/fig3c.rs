//! Figure 3(c): time to answer 2500 rectangle queries vs summary size on
//! Network data.
//!
//! Paper's reading: samples answer by scanning (aware = obliv, thousands of
//! rectangles per second, cost growing linearly in the sample size); the
//! wavelet pays ~1000× more per rectangle (dyadic decomposition × retained
//! coefficients).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_area_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::RangeSumSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let side = 1u64 << w.bits;
    // 2500 rectangles as in the paper: 100 queries x 25 ranges.
    let mut qrng = StdRng::seed_from_u64(77);
    let queries = uniform_area_queries(&mut qrng, side, side, 100, 25, 0.2);
    let total_rects: usize = queries.iter().map(|q| q.range_count()).sum();

    eprintln!("fig3c: network data, timing {total_rects} rectangle queries per summary");

    let wavelet_full = WaveletSummary::build(&w.data, w.bits, w.bits, usize::MAX);

    let mut rows = Vec::new();
    for &s in &scale.size_sweep() {
        let aware = build_aware(&w.data, s, 51);
        let obliv = build_obliv(&w.data, s, 52);
        let wavelet = wavelet_full.truncated(s);
        let qdigest = QDigestSummary::build(&w.data, w.bits, s);

        let run = |summary: &dyn RangeSumSummary| -> f64 {
            let (acc, secs) = timed(|| {
                let mut acc = 0.0;
                for q in &queries {
                    acc += summary.estimate_multi(q);
                }
                acc
            });
            std::hint::black_box(acc);
            secs
        };
        rows.push(vec![
            s.to_string(),
            format!("{:.4}", run(&aware)),
            format!("{:.4}", run(&obliv)),
            format!("{:.4}", run(&wavelet)),
            format!("{:.4}", run(&qdigest)),
        ]);
    }
    print_table(
        "Figure 3(c): Network, seconds to answer 2500 rectangle queries vs summary size",
        &["size", "aware", "obliv", "wavelet", "qdigest"],
        &rows,
    );
}
