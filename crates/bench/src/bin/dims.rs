//! Dimension-scaling experiment (Section 4's bound): discrepancy of the
//! structure-aware product sampler vs the oblivious baseline in d = 1, 2, 3
//! dimensions.
//!
//! The theory: aware discrepancy concentrates around
//! `min{√p(R), √(2d)·s^((d−1)/(2d))}` while oblivious stays at `√p(R)`.
//! For d = 1 the aware advantage is maximal (O(1) vs √p(R)); it narrows as
//! d grows — the boundary term grows with d.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sas_bench::*;
use sas_core::varopt::VarOptSampler;
use sas_sampling::product::SpatialData;
use sas_structures::order::Interval;
use sas_structures::product::{BoxRange, Point};
use sas_summaries::exact::SampleSummary;
use sas_summaries::RangeSumSummary;

fn main() {
    let n = 20_000usize;
    let side = 1u64 << 10;
    let s = 1000;
    let queries_per_dim = 40;
    let mut rows = Vec::new();

    for d in 1usize..=3 {
        let mut rng = StdRng::seed_from_u64(d as u64);
        // Uniform-ish positions, mildly varying weights.
        let keys: Vec<sas_core::WeightedKey> = (0..n as u64)
            .map(|k| sas_core::WeightedKey::new(k, rng.gen_range(0.5..2.0)))
            .collect();
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0..side)).collect()))
            .collect();
        let data = SpatialData::new(keys, points);

        // Random boxes covering ~1/4 of each axis.
        let queries: Vec<BoxRange> = (0..queries_per_dim)
            .map(|_| {
                BoxRange::new(
                    (0..d)
                        .map(|_| {
                            let lo = rng.gen_range(0..side * 3 / 4);
                            Interval::new(lo, lo + side / 4)
                        })
                        .collect(),
                )
            })
            .collect();

        let aware_s = sas_sampling::product::sample(&data, s, &mut rng);
        let aware = SampleSummary::new("aware", &aware_s, &data);
        let obliv_s = VarOptSampler::sample_slice(s, &data.keys, &mut rng);
        let obliv = SampleSummary::new("obliv", &obliv_s, &data);

        let rms = |sm: &SampleSummary| -> f64 {
            let acc: f64 = queries
                .iter()
                .map(|q| {
                    let e = sm.estimate_box(q) - data.box_weight(q);
                    e * e
                })
                .sum();
            (acc / queries.len() as f64).sqrt()
        };
        let (ra, ro) = (rms(&aware), rms(&obliv));
        let bound = (2.0 * d as f64).sqrt() * (s as f64).powf((d as f64 - 1.0) / (2.0 * d as f64));
        rows.push(vec![
            d.to_string(),
            format!("{ra:.1}"),
            format!("{ro:.1}"),
            format!("{:.2}", ro / ra),
            format!("{bound:.1}"),
        ]);
    }
    print_table(
        "Dimension scaling: RMS box-query error, aware vs obliv (s = 1000, n = 20000)",
        &[
            "d",
            "aware_rms",
            "obliv_rms",
            "obliv/aware",
            "theory √(2d)·s^((d-1)/(2d))",
        ],
        &rows,
    );
}
