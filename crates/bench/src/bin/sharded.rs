//! Sharded vs serial summarization, plus merge-tree throughput: the core
//! ingest path (`sas_sampling::order::sample`), the sharded build
//! (`summarize_sharded`), and a dedicated merge-tree phase that measures
//! threshold merges per second *and* heap allocations per merge (this bin
//! installs a counting global allocator for that purpose).
//!
//! Environment knobs: `SAS_SHARD_N` (stream length, default 400000),
//! `SAS_SHARD_S` (budget, default 2000), `SAS_SHARD_MERGE_REPS`
//! (merge-tree repetitions, default 30).
//!
//! `--json PATH` writes the machine-readable result consumed by
//! `scripts/bench_core.sh`; any phase failure exits non-zero.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sas_bench::{alloc_count, env_usize, fmt_err, parse_json_flag, print_table, timed, JsonObj};
use sas_core::{total_weight, Sample, WeightedKey};
use sas_sampling::order;
use sas_sampling::sharded::{
    merge_sample_tree, per_shard_samples, summarize_sharded, ShardTopology, ShardedConfig,
};
use sas_structures::order::Interval;

#[global_allocator]
static ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sharded bench failed: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let json_path = parse_json_flag()?;
    let n = env_usize("SAS_SHARD_N", 400_000) as u64;
    let s = env_usize("SAS_SHARD_S", 2_000);
    let merge_reps = env_usize("SAS_SHARD_MERGE_REPS", 30);
    let seed = 7u64;

    // Heavy-tailed weights, keys = positions (order structure).
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<WeightedKey> = (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.02) {
                rng.gen_range(200.0..2000.0)
            } else {
                rng.gen_range(0.1..4.0)
            };
            WeightedKey::new(k, w)
        })
        .collect();
    let total = total_weight(&data);

    let mut qrng = StdRng::seed_from_u64(seed + 1);
    let queries: Vec<Interval> = (0..150)
        .map(|_| {
            let len = 1 + (n as f64 * 10f64.powf(qrng.gen_range(-3.0..-0.5))) as u64;
            let lo = qrng.gen_range(0..n - len);
            Interval::new(lo, lo + len - 1)
        })
        .collect();
    let exact: Vec<f64> = queries
        .iter()
        .map(|iv| {
            data.iter()
                .filter(|wk| iv.contains(wk.key))
                .map(|wk| wk.weight)
                .sum()
        })
        .collect();
    let avg_rel_err = |smp: &Sample| -> f64 {
        queries
            .iter()
            .zip(&exact)
            .map(|(iv, &truth)| {
                let est = smp.subset_estimate(|k| iv.contains(k));
                if truth > 0.0 {
                    (est - truth).abs() / truth
                } else {
                    est.abs()
                }
            })
            .sum::<f64>()
            / queries.len() as f64
    };

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "sharded: n = {n}, budget s = {s}, {} queries, {cores} core(s) available",
        queries.len()
    );
    if cores == 1 {
        eprintln!("note: single core — speedups reflect subdivision only, not parallelism");
    }

    // --- serial ingest (the per-shard sampling kernel) --------------------
    let (serial, t_serial) = timed(|| {
        let mut rng = StdRng::seed_from_u64(seed + 2);
        order::sample(&data, s, &mut rng)
    });
    if serial.len() != s.min(data.len()) {
        return Err(format!(
            "serial sample has {} entries, expected {}",
            serial.len(),
            s.min(data.len())
        ));
    }
    let ingest_keys_per_s = n as f64 / t_serial;

    let mut rows: Vec<Vec<String>> = vec![vec![
        "serial".into(),
        "-".into(),
        format!("{:.1}", t_serial * 1e3),
        "1.00×".into(),
        fmt_err(avg_rel_err(&serial)),
        format!("{:.2e}", (serial.total_estimate() - total).abs() / total),
    ]];

    let mut sharded8_keys_per_s = 0.0;
    for topology in [ShardTopology::KeyRange, ShardTopology::RoundRobin] {
        for shards in [2usize, 4, 8] {
            let cfg = ShardedConfig {
                shards,
                topology,
                seed: seed + 3,
            };
            let (smp, t) = timed(|| summarize_sharded(&data, s, &cfg));
            if smp.len() != s.min(data.len()) {
                return Err(format!(
                    "{topology:?}/{shards}: sharded sample has {} entries, expected {}",
                    smp.len(),
                    s.min(data.len())
                ));
            }
            if topology == ShardTopology::KeyRange && shards == 8 {
                sharded8_keys_per_s = n as f64 / t;
            }
            rows.push(vec![
                format!("{topology:?}"),
                shards.to_string(),
                format!("{:.1}", t * 1e3),
                format!("{:.2}×", t_serial / t),
                fmt_err(avg_rel_err(&smp)),
                format!("{:.2e}", (smp.total_estimate() - total).abs() / total),
            ]);
        }
    }

    print_table(
        "sharded vs serial (order structure, 1-D)",
        &[
            "topology",
            "shards",
            "build ms",
            "speedup",
            "avg rel err",
            "total rel err",
        ],
        &rows,
    );

    // --- merge-tree throughput + allocations per merge --------------------
    // Eight per-shard samples merged bottom-up = 7 threshold merges per
    // tree. The inputs for every repetition are cloned *before* the
    // measured region so the allocation delta counts only the merges.
    let cfg8 = ShardedConfig::key_range(8, seed + 3);
    let parts = per_shard_samples(&data, s, &cfg8);
    let merges_per_tree = (parts.len() - 1) as u64;
    let inputs: Vec<Vec<Sample>> = (0..merge_reps).map(|_| parts.clone()).collect();
    let mut rngs: Vec<StdRng> = (0..merge_reps)
        .map(|rep| StdRng::seed_from_u64(seed + 100 + rep as u64))
        .collect();

    let allocs_before = alloc_count::allocations();
    let (merged_len, t_merge) = timed(|| {
        let mut last = 0;
        for (level, rng) in inputs.into_iter().zip(rngs.iter_mut()) {
            last = merge_sample_tree(level, s, rng).len();
        }
        last
    });
    let allocs = alloc_count::allocations() - allocs_before;
    if merged_len != s.min(data.len()) {
        return Err(format!(
            "merge tree produced {merged_len} entries, expected {}",
            s.min(data.len())
        ));
    }
    let total_merges = merges_per_tree * merge_reps as u64;
    let merge_tree_merges_per_s = total_merges as f64 / t_merge;
    let merge_tree_allocs_per_merge = allocs as f64 / total_merges as f64;

    print_table(
        "merge tree (8 shards, 7 threshold merges per tree)",
        &["reps", "merges_per_s", "allocs_per_merge"],
        &[vec![
            merge_reps.to_string(),
            format!("{merge_tree_merges_per_s:.1}"),
            format!("{merge_tree_allocs_per_merge:.1}"),
        ]],
    );

    if let Some(path) = json_path {
        let mut obj = JsonObj::new();
        obj.str("bench", "core_sharded")
            .int("n", n)
            .int("s", s as u64)
            .int("merge_reps", merge_reps as u64)
            .num("ingest_keys_per_s", ingest_keys_per_s)
            .num("sharded8_keys_per_s", sharded8_keys_per_s)
            .num("merge_tree_merges_per_s", merge_tree_merges_per_s)
            .num("merge_tree_allocs_per_merge", merge_tree_allocs_per_merge);
        obj.write(&path)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
