//! Sharded vs serial summarization: wall-clock and accuracy comparison of
//! `sas_sampling::sharded::summarize_sharded` against the serial
//! order-structure sampler on one large 1-D stream.
//!
//! For each shard count the table reports build time, speedup over serial,
//! the average relative error over a battery of random intervals, and the
//! relative total-estimate error (which must be ~0: the threshold merge
//! conserves totals exactly).
//!
//! Environment knobs: `SAS_SHARD_N` (stream length, default 400000),
//! `SAS_SHARD_S` (budget, default 2000).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sas_bench::{fmt_err, print_table, timed};
use sas_core::{total_weight, Sample, WeightedKey};
use sas_sampling::order;
use sas_sampling::sharded::{summarize_sharded, ShardTopology, ShardedConfig};
use sas_structures::order::Interval;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = env_usize("SAS_SHARD_N", 400_000) as u64;
    let s = env_usize("SAS_SHARD_S", 2_000);
    let seed = 7u64;

    // Heavy-tailed weights, keys = positions (order structure).
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<WeightedKey> = (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.02) {
                rng.gen_range(200.0..2000.0)
            } else {
                rng.gen_range(0.1..4.0)
            };
            WeightedKey::new(k, w)
        })
        .collect();
    let total = total_weight(&data);

    let mut qrng = StdRng::seed_from_u64(seed + 1);
    let queries: Vec<Interval> = (0..150)
        .map(|_| {
            let len = 1 + (n as f64 * 10f64.powf(qrng.gen_range(-3.0..-0.5))) as u64;
            let lo = qrng.gen_range(0..n - len);
            Interval::new(lo, lo + len - 1)
        })
        .collect();
    let exact: Vec<f64> = queries
        .iter()
        .map(|iv| {
            data.iter()
                .filter(|wk| iv.contains(wk.key))
                .map(|wk| wk.weight)
                .sum()
        })
        .collect();
    let avg_rel_err = |smp: &Sample| -> f64 {
        queries
            .iter()
            .zip(&exact)
            .map(|(iv, &truth)| {
                let est = smp.subset_estimate(|k| iv.contains(k));
                if truth > 0.0 {
                    (est - truth).abs() / truth
                } else {
                    est.abs()
                }
            })
            .sum::<f64>()
            / queries.len() as f64
    };

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "sharded: n = {n}, budget s = {s}, {} queries, {cores} core(s) available",
        queries.len()
    );
    if cores == 1 {
        eprintln!("note: single core — speedups reflect subdivision only, not parallelism");
    }

    let (serial, t_serial) = timed(|| {
        let mut rng = StdRng::seed_from_u64(seed + 2);
        order::sample(&data, s, &mut rng)
    });

    let mut rows: Vec<Vec<String>> = vec![vec![
        "serial".into(),
        "-".into(),
        format!("{:.1}", t_serial * 1e3),
        "1.00×".into(),
        fmt_err(avg_rel_err(&serial)),
        format!("{:.2e}", (serial.total_estimate() - total).abs() / total),
    ]];

    for topology in [ShardTopology::KeyRange, ShardTopology::RoundRobin] {
        for shards in [2usize, 4, 8] {
            let cfg = ShardedConfig {
                shards,
                topology,
                seed: seed + 3,
            };
            let (smp, t) = timed(|| summarize_sharded(&data, s, &cfg));
            assert_eq!(smp.len(), s.min(data.len()));
            rows.push(vec![
                format!("{topology:?}"),
                shards.to_string(),
                format!("{:.1}", t * 1e3),
                format!("{:.2}×", t_serial / t),
                fmt_err(avg_rel_err(&smp)),
                format!("{:.2e}", (smp.total_estimate() - total).abs() / total),
            ]);
        }
    }

    print_table(
        "sharded vs serial (order structure, 1-D)",
        &[
            "topology",
            "shards",
            "build ms",
            "speedup",
            "avg rel err",
            "total rel err",
        ],
        &rows,
    );
}
