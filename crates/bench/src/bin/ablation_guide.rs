//! Ablation: effect of the guide-sample factor `s′/s` on two-pass accuracy.
//!
//! The paper uses `s′ = 5s` and notes that "increasing the factor did not
//! significantly improve the accuracy". This ablation regenerates that
//! observation: error vs guide factor 1, 2, 5, 10.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::*;
use sas_data::uniform_area_queries;
use sas_summaries::exact::SampleSummary;

fn main() {
    let scale = Scale::from_env();
    let w = network_workload(scale);
    let side = 1u64 << w.bits;
    let s = 1000;
    let mut qrng = StdRng::seed_from_u64(11);
    let queries = uniform_area_queries(&mut qrng, side, side, scale.query_count(), 25, 0.3);

    eprintln!("ablation_guide: network data, summary size {s}");

    let mut rows = Vec::new();
    for &factor in &[1usize, 2, 5, 10] {
        // Average over a few seeds to smooth sampling noise.
        let mut err = 0.0;
        let seeds = 5;
        let mut secs = 0.0;
        for seed in 0..seeds {
            let (summary, t) = timed(|| {
                let mut rng = StdRng::seed_from_u64(1000 * factor as u64 + seed);
                let sample = sas_sampling::two_pass::sample_product(&w.data, s, factor, &mut rng);
                SampleSummary::new("aware", &sample, &w.data)
            });
            secs += t;
            err += avg_abs_error(&summary, &w.exact, &queries, w.total);
        }
        rows.push(vec![
            factor.to_string(),
            fmt_err(err / seeds as f64),
            format!("{:.3}", secs / seeds as f64),
        ]);
    }
    print_table(
        "Ablation: two-pass accuracy and build time vs guide factor s'/s (paper uses 5)",
        &["guide_factor", "avg_abs_error", "build_seconds"],
        &rows,
    );
}
