//! Persistence-layer throughput: encode and decode bandwidth per summary
//! kind, plus the end-to-end *merge-from-disk* pipeline (read shard frames
//! → batch-decode → bottom-up budgeted merge tree), the path a distributed
//! summarization deployment pays per merge worker.
//!
//! Environment knobs: `SAS_CODEC_N` (1-D stream length, default 200000),
//! `SAS_CODEC_S` (summary budget, default 4000), `SAS_CODEC_SHARDS`
//! (shard files per merge, default 8), `SAS_CODEC_REPS` (encode/decode
//! repetitions, default 50), `SAS_CODEC_MERGE_REPS` (pipeline repetitions,
//! default 20).
//!
//! `--json PATH` writes the machine-readable result consumed by
//! `scripts/bench_core.sh`; any phase failure exits non-zero.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sas_bench::{env_usize, parse_json_flag, print_table, timed, JsonObj};
use sas_core::varopt::VarOptSampler;
use sas_core::WeightedKey;
use sas_sampling::product::SpatialData;
use sas_sampling::sharded::{per_shard_samples, ShardedConfig};
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::{
    decode_summaries, decode_summary, encode_summary, merge_tree, StoredSample, Summary,
};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("codec bench failed: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let json_path = parse_json_flag()?;
    let n = env_usize("SAS_CODEC_N", 200_000) as u64;
    let s = env_usize("SAS_CODEC_S", 4_000);
    let shards = env_usize("SAS_CODEC_SHARDS", 8);
    let reps = env_usize("SAS_CODEC_REPS", 50);
    let merge_reps = env_usize("SAS_CODEC_MERGE_REPS", 20);
    let seed = 11u64;

    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<WeightedKey> = (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.02) {
                rng.gen_range(100.0..1500.0)
            } else {
                rng.gen_range(0.1..4.0)
            };
            WeightedKey::new(k, w)
        })
        .collect();
    let spatial = {
        let rows: Vec<(u64, u64, f64)> = data
            .iter()
            .take((n as usize).min(50_000))
            .map(|wk| (wk.key % 1024, (wk.key * 7919) % 1024, wk.weight))
            .collect();
        SpatialData::from_xyw(&rows)
    };

    // One summary per kind at comparable element budgets.
    let sample = {
        let mut r = StdRng::seed_from_u64(seed);
        StoredSample::one_dim(sas_sampling::order::sample(&data, s, &mut r))
    };
    let varopt = {
        let mut r = StdRng::seed_from_u64(seed);
        let mut v = VarOptSampler::new(s);
        for wk in &data {
            v.push(wk.key, wk.weight, &mut r);
        }
        v
    };
    let summaries: Vec<(&str, Box<dyn Summary>)> = vec![
        ("sample", Box::new(sample)),
        ("varopt", Box::new(varopt)),
        ("qdigest", Box::new(QDigestSummary::build(&spatial, 10, s))),
        (
            "wavelet",
            Box::new(WaveletSummary::build(&spatial, 10, 10, s)),
        ),
        (
            "sketch",
            Box::new(SketchSummary::build(&spatial, 10, 10, s, seed)),
        ),
    ];

    // --- encode / decode bandwidth per kind -------------------------------
    let mut rows = Vec::new();
    let mut kinds_json = JsonObj::new();
    let (mut sample_encode_mb_s, mut sample_decode_mb_s) = (0.0, 0.0);
    for (name, summary) in &summaries {
        let bytes = encode_summary(summary.as_ref());
        let mb = bytes.len() as f64 / 1e6;
        let (_, enc_t) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(encode_summary(summary.as_ref()));
            }
        });
        let mut decode_err = None;
        let (_, dec_t) = timed(|| {
            for _ in 0..reps {
                match decode_summary(&bytes) {
                    Ok(s) => {
                        std::hint::black_box(s);
                    }
                    Err(e) => decode_err = Some(format!("{name}: decode failed: {e}")),
                }
            }
        });
        if let Some(e) = decode_err {
            return Err(e);
        }
        let encode_mb_s = mb * reps as f64 / enc_t;
        let decode_mb_s = mb * reps as f64 / dec_t;
        if *name == "sample" {
            sample_encode_mb_s = encode_mb_s;
            sample_decode_mb_s = decode_mb_s;
        }
        let mut kind_json = JsonObj::new();
        kind_json
            .int("bytes", bytes.len() as u64)
            .num("encode_mb_s", encode_mb_s)
            .num("decode_mb_s", decode_mb_s);
        kinds_json.obj(name, &kind_json);
        rows.push(vec![
            name.to_string(),
            summary.item_count().to_string(),
            bytes.len().to_string(),
            format!("{encode_mb_s:.1}"),
            format!("{decode_mb_s:.1}"),
        ]);
    }
    print_table(
        &format!("encode/decode throughput (items ~{s}, {reps} reps)"),
        &["kind", "items", "bytes", "encode_MB_s", "decode_MB_s"],
        &rows,
    );

    // --- merge-from-disk pipeline -----------------------------------------
    // Frames are read and decoded in one batch up front, then merged
    // bottom-up through the shared `merge_tree` (the same order the store's
    // compaction uses), instead of interleaving decode and merge.
    let dir = std::env::temp_dir().join(format!("sas-codec-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create temp dir: {e}"))?;
    let cfg = ShardedConfig::key_range(shards, seed);
    let parts = per_shard_samples(&data, s, &cfg);
    let merges_per_tree = (parts.len().max(1) - 1) as u64;
    let mut total_bytes = 0usize;
    let mut paths = Vec::new();
    for (i, p) in parts.into_iter().enumerate() {
        let path = dir.join(format!("part.{i}.sas"));
        let bytes = encode_summary(&StoredSample::one_dim(p));
        total_bytes += bytes.len();
        std::fs::write(&path, bytes).map_err(|e| format!("write shard frame: {e}"))?;
        paths.push(path);
    }

    let (result, t) = timed(|| -> Result<usize, String> {
        let mut last = 0;
        for rep in 0..merge_reps {
            let mut rng = StdRng::seed_from_u64(seed + rep as u64);
            let frames: Vec<Vec<u8>> = paths
                .iter()
                .map(|p| std::fs::read(p).map_err(|e| format!("read shard frame: {e}")))
                .collect::<Result<_, _>>()?;
            let decoded: Vec<Box<dyn Summary>> =
                decode_summaries(&frames).map_err(|e| format!("decode shard frame: {e}"))?;
            let merged =
                merge_tree(decoded, Some(s), &mut rng).map_err(|e| format!("merge: {e}"))?;
            last = merged.item_count();
        }
        Ok(last)
    });
    let _ = std::fs::remove_dir_all(&dir);
    let items = result?;

    let merge_from_disk_mb_s = total_bytes as f64 * merge_reps as f64 / 1e6 / t;
    let merge_from_disk_merges_per_s = (merges_per_tree * merge_reps as u64) as f64 / t;
    print_table(
        "merge-from-disk (read + batch decode + budgeted merge tree)",
        &[
            "shards",
            "budget",
            "merged_items",
            "disk_MB",
            "merges_per_s",
            "MB_s",
        ],
        &[vec![
            shards.to_string(),
            s.to_string(),
            items.to_string(),
            format!("{:.2}", total_bytes as f64 / 1e6),
            format!("{merge_from_disk_merges_per_s:.1}"),
            format!("{merge_from_disk_mb_s:.1}"),
        ]],
    );

    if let Some(path) = json_path {
        let mut obj = JsonObj::new();
        obj.str("bench", "core_codec")
            .int("n", n)
            .int("s", s as u64)
            .int("shards", shards as u64)
            .num("codec_encode_mb_s", sample_encode_mb_s)
            .num("codec_decode_mb_s", sample_decode_mb_s)
            .num("merge_from_disk_mb_s", merge_from_disk_mb_s)
            .num("merge_from_disk_merges_per_s", merge_from_disk_merges_per_s)
            .obj("kinds", &kinds_json);
        obj.write(&path)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
