//! Persistence-layer throughput: encode and decode bandwidth per summary
//! kind, plus the end-to-end *merge-from-disk* pipeline (read shard frames
//! → decode → budgeted threshold merge), the path a distributed
//! summarization deployment pays per merge worker.
//!
//! Environment knobs: `SAS_CODEC_N` (1-D stream length, default 200000),
//! `SAS_CODEC_S` (summary budget, default 4000), `SAS_CODEC_SHARDS`
//! (shard files per merge, default 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sas_bench::{print_table, timed};
use sas_core::varopt::VarOptSampler;
use sas_core::WeightedKey;
use sas_sampling::product::SpatialData;
use sas_sampling::sharded::{per_shard_samples, ShardedConfig};
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::{decode_summary, encode_summary, StoredSample, Summary};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = env_usize("SAS_CODEC_N", 200_000) as u64;
    let s = env_usize("SAS_CODEC_S", 4_000);
    let shards = env_usize("SAS_CODEC_SHARDS", 8);
    let seed = 11u64;

    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<WeightedKey> = (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.02) {
                rng.gen_range(100.0..1500.0)
            } else {
                rng.gen_range(0.1..4.0)
            };
            WeightedKey::new(k, w)
        })
        .collect();
    let spatial = {
        let rows: Vec<(u64, u64, f64)> = data
            .iter()
            .take((n as usize).min(50_000))
            .map(|wk| (wk.key % 1024, (wk.key * 7919) % 1024, wk.weight))
            .collect();
        SpatialData::from_xyw(&rows)
    };

    // One summary per kind at comparable element budgets.
    let sample = {
        let mut r = StdRng::seed_from_u64(seed);
        StoredSample::one_dim(sas_sampling::order::sample(&data, s, &mut r))
    };
    let varopt = {
        let mut r = StdRng::seed_from_u64(seed);
        let mut v = VarOptSampler::new(s);
        for wk in &data {
            v.push(wk.key, wk.weight, &mut r);
        }
        v
    };
    let summaries: Vec<(&str, Box<dyn Summary>)> = vec![
        ("sample", Box::new(sample)),
        ("varopt", Box::new(varopt)),
        ("qdigest", Box::new(QDigestSummary::build(&spatial, 10, s))),
        (
            "wavelet",
            Box::new(WaveletSummary::build(&spatial, 10, 10, s)),
        ),
        (
            "sketch",
            Box::new(SketchSummary::build(&spatial, 10, 10, s, seed)),
        ),
    ];

    // --- encode / decode bandwidth per kind -------------------------------
    let reps = 50;
    let mut rows = Vec::new();
    for (name, summary) in &summaries {
        let bytes = encode_summary(summary.as_ref());
        let mb = bytes.len() as f64 / 1e6;
        let (_, enc_t) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(encode_summary(summary.as_ref()));
            }
        });
        let (_, dec_t) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(decode_summary(&bytes).expect("valid frame"));
            }
        });
        rows.push(vec![
            name.to_string(),
            summary.item_count().to_string(),
            bytes.len().to_string(),
            format!("{:.1}", mb * reps as f64 / enc_t),
            format!("{:.1}", mb * reps as f64 / dec_t),
        ]);
    }
    print_table(
        &format!("encode/decode throughput (items ~{s}, {reps} reps)"),
        &["kind", "items", "bytes", "encode_MB_s", "decode_MB_s"],
        &rows,
    );

    // --- merge-from-disk pipeline -----------------------------------------
    let dir = std::env::temp_dir().join(format!("sas-codec-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cfg = ShardedConfig::key_range(shards, seed);
    let parts = per_shard_samples(&data, s, &cfg);
    let mut total_bytes = 0usize;
    let paths: Vec<_> = parts
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let path = dir.join(format!("part.{i}.sas"));
            let bytes = encode_summary(&StoredSample::one_dim(p));
            total_bytes += bytes.len();
            std::fs::write(&path, bytes).expect("write shard frame");
            path
        })
        .collect();

    let merge_reps = 20;
    let (items, t) = timed(|| {
        let mut last = 0;
        for rep in 0..merge_reps {
            let mut rng = StdRng::seed_from_u64(seed + rep);
            let mut it = paths.iter();
            let first = std::fs::read(it.next().expect("at least one shard")).unwrap();
            let mut acc = decode_summary(&first).expect("valid frame");
            for p in it {
                let next = decode_summary(&std::fs::read(p).unwrap()).expect("valid frame");
                acc.merge_in_place(next, Some(s), &mut rng)
                    .expect("same-kind merge");
            }
            last = acc.item_count();
        }
        last
    });
    print_table(
        "merge-from-disk (read + decode + budgeted threshold merge)",
        &[
            "shards",
            "budget",
            "merged_items",
            "disk_MB",
            "merges_per_s",
            "MB_s",
        ],
        &[vec![
            shards.to_string(),
            s.to_string(),
            items.to_string(),
            format!("{:.2}", total_bytes as f64 / 1e6),
            format!("{:.1}", merge_reps as f64 / t),
            format!("{:.1}", total_bytes as f64 * merge_reps as f64 / 1e6 / t),
        ]],
    );

    let _ = std::fs::remove_dir_all(&dir);
}
