//! Criterion benches: summary construction cost (Figure 3(a)/(b) timing,
//! statistically sound version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sas_bench::{network_workload, Scale};
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;

fn bench_construction(c: &mut Criterion) {
    // Bench on a reduced workload regardless of SAS_SCALE so the slow
    // baselines finish within Criterion's sampling budget.
    let w = network_workload(Scale::Small);
    let s = 1000;

    let mut group = c.benchmark_group("construction");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("aware_two_pass", s), |b| {
        b.iter(|| sas_bench::build_aware(&w.data, s, 1))
    });
    group.bench_function(BenchmarkId::new("obliv_varopt", s), |b| {
        b.iter(|| sas_bench::build_obliv(&w.data, s, 2))
    });
    group.bench_function(BenchmarkId::new("qdigest", s), |b| {
        b.iter(|| QDigestSummary::build(&w.data, w.bits, s))
    });
    group.bench_function(BenchmarkId::new("sketch", s), |b| {
        b.iter(|| SketchSummary::build(&w.data, w.bits, w.bits, s, 3))
    });
    group.bench_function(BenchmarkId::new("wavelet", s), |b| {
        b.iter(|| WaveletSummary::build(&w.data, w.bits, w.bits, s))
    });
    group.finish();
}

fn bench_sampler_cores(c: &mut Criterion) {
    // Micro-costs of the sampling primitives themselves.
    let w = network_workload(Scale::Small);
    let mut group = c.benchmark_group("sampler_core");
    group.sample_size(10);

    group.bench_function("ipps_threshold_exact", |b| {
        let weights: Vec<f64> = w.data.keys.iter().map(|wk| wk.weight).collect();
        b.iter(|| sas_core::ipps::threshold_exact(&weights, 1000.0))
    });
    group.bench_function("ipps_threshold_streaming", |b| {
        b.iter(|| {
            let mut st = sas_core::ipps::StreamingThreshold::new(1000);
            for wk in &w.data.keys {
                st.push(wk.weight);
            }
            st.finish()
        })
    });
    group.bench_function("kd_hierarchy_build", |b| {
        use sas_sampling::IppsSetup;
        use sas_structures::kdtree::{KdHierarchy, KdItem};
        let setup = IppsSetup::compute(&w.data.keys, 1000);
        let items: Vec<KdItem> = setup
            .active
            .iter()
            .map(|(wk, p)| KdItem {
                key: wk.key,
                point: w.data.points[wk.key as usize].clone(),
                prob: *p,
            })
            .collect();
        b.iter(|| KdHierarchy::build(items.clone(), 0.0))
    });
    group.finish();
}

criterion_group!(benches, bench_construction, bench_sampler_cores);
criterion_main!(benches);
