//! Criterion benches: query answering cost per summary (Figure 3(c) timing,
//! statistically sound version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::{network_workload, Scale};
use sas_data::uniform_area_queries;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::RangeSumSummary;

fn bench_query(c: &mut Criterion) {
    let w = network_workload(Scale::Small);
    let side = 1u64 << w.bits;
    let mut qrng = StdRng::seed_from_u64(1);
    let queries = uniform_area_queries(&mut qrng, side, side, 20, 25, 0.2);
    let s = 1000;

    let aware = sas_bench::build_aware(&w.data, s, 1);
    let obliv = sas_bench::build_obliv(&w.data, s, 2);
    let wavelet = WaveletSummary::build(&w.data, w.bits, w.bits, s);
    let qdigest = QDigestSummary::build(&w.data, w.bits, s);

    let mut group = c.benchmark_group("query_500_rects");
    for (name, summary) in [
        ("aware", &aware as &dyn RangeSumSummary),
        ("obliv", &obliv as &dyn RangeSumSummary),
        ("wavelet", &wavelet as &dyn RangeSumSummary),
        ("qdigest", &qdigest as &dyn RangeSumSummary),
    ] {
        group.bench_function(BenchmarkId::new(name, s), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in &queries {
                    acc += summary.estimate_multi(q);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
