//! Criterion benches for the design-choice ablations: two-pass guide factor
//! and main-memory vs two-pass construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_bench::{network_workload, Scale};

fn bench_guide_factor(c: &mut Criterion) {
    let w = network_workload(Scale::Small);
    let s = 1000;
    let mut group = c.benchmark_group("two_pass_guide_factor");
    group.sample_size(10);
    for factor in [1usize, 2, 5, 10] {
        group.bench_function(BenchmarkId::from_parameter(factor), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                sas_sampling::two_pass::sample_product(&w.data, s, factor, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_main_memory_vs_two_pass(c: &mut Criterion) {
    let w = network_workload(Scale::Small);
    let s = 1000;
    let mut group = c.benchmark_group("aware_variants");
    group.sample_size(10);
    group.bench_function("main_memory_kd", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(8);
            sas_sampling::product::sample(&w.data, s, &mut rng)
        })
    });
    group.bench_function("two_pass", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            sas_sampling::two_pass::sample_product(&w.data, s, 5, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_guide_factor, bench_main_memory_vs_two_pass);
criterion_main!(benches);
