//! Property and concurrency tests pinning the histogram's correctness
//! claims: merge is associative, bucket boundaries are exact, saturation
//! is confined to the final bucket, percentiles respect the one-bucket
//! error bound, and concurrent recording loses nothing.

use std::sync::Arc;

use proptest::prelude::*;

use sas_obs::{
    bucket_index, bucket_lower, bucket_upper, within_one_bucket, Histogram, HistogramSnapshot,
    MAX_EXP, NUM_BUCKETS,
};

/// Draws values spanning every regime of the bucket table.
fn mixed_values(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u64..64, 0u64..(1 << 30), 0u64..u64::MAX), n).prop_map(|triples| {
        triples
            .into_iter()
            .enumerate()
            .map(|(i, (small, mid, large))| match i % 3 {
                0 => small,
                1 => mid,
                _ => large,
            })
            .collect()
    })
}

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(a in mixed_values(0..40), b in mixed_values(0..40), c in mixed_values(0..40)) {
        // (a ⊕ b) ⊕ c
        let left = hist_of(&a);
        left.merge_from(&hist_of(&b));
        left.merge_from(&hist_of(&c));
        // a ⊕ (b ⊕ c)
        let bc = hist_of(&b);
        bc.merge_from(&hist_of(&c));
        let right = hist_of(&a);
        right.merge_from(&bc);
        prop_assert_eq!(left.snapshot(), right.snapshot());
        // And both equal recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(left.snapshot(), hist_of(&all).snapshot());
    }

    #[test]
    fn every_value_is_bounded_by_its_bucket(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
        // The final bucket absorbs everything past the saturation point.
        if i < NUM_BUCKETS - 1 {
            prop_assert!(v <= bucket_upper(i), "{v} > upper({i})");
        }
    }

    #[test]
    fn percentiles_stay_within_one_bucket_of_sorted_truth(
        values in mixed_values(1..200),
        p in 0.0f64..100.0,
    ) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The same nearest-rank convention the bench's sort-based path uses.
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let exact = sorted[rank.clamp(1, sorted.len()) - 1];
        let approx = h.percentile(p);
        prop_assert!(
            within_one_bucket(approx, exact),
            "p{p}: histogram {approx} vs sorted {exact}"
        );
    }

    #[test]
    fn snapshot_roundtrips_through_merge_identity(values in mixed_values(0..100)) {
        // Merging into an empty histogram is the identity.
        let empty = Histogram::new();
        empty.merge_from(&hist_of(&values));
        prop_assert_eq!(empty.snapshot(), hist_of(&values).snapshot());
    }
}

#[test]
fn bucket_boundary_values_map_exactly() {
    // The first value of every bucket maps back to that bucket, and the
    // last value of every bucket stays inside it.
    for i in 0..NUM_BUCKETS {
        assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
        if i < NUM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
            assert_eq!(
                bucket_index(bucket_upper(i) + 1),
                i + 1,
                "first value past bucket {i}"
            );
        }
    }
}

#[test]
fn saturation_confined_to_max_bucket() {
    let h = Histogram::new();
    let sat_start = 1u64 << MAX_EXP;
    for v in [sat_start, sat_start + 1, u64::MAX / 2, u64::MAX] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(
        s.buckets,
        vec![((NUM_BUCKETS - 1) as u32, 4)],
        "all saturating values collapse into the final bucket"
    );
    assert_eq!(s.max, u64::MAX);
    assert_eq!(s.min, sat_start);
    assert_eq!(s.count, 4);
}

#[test]
fn concurrent_recording_from_8_threads_totals_exactly_n() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 25_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct per-thread value streams across magnitudes.
                    h.record((t as u64 + 1) * 37 + i * 13 % (1 << 22));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread panicked");
    }
    let s = h.snapshot();
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(s.count, n, "count lost under concurrency");
    let bucket_total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, n, "bucket mass lost under concurrency");
    assert_eq!(h.percentile(100.0), s.max);
}

#[test]
fn concurrent_merge_and_snapshot_never_lose_mass() {
    // Merging shards concurrently with snapshotting must never produce a
    // snapshot whose bucket mass exceeds its count by more than in-flight
    // updates, and the final state is exact.
    const SHARDS: usize = 8;
    const PER_SHARD: u64 = 5_000;
    let total = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..SHARDS)
        .map(|t| {
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let shard = Histogram::new();
                for i in 0..PER_SHARD {
                    shard.record(t as u64 * 1_000 + i);
                }
                total.merge_from(&shard);
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("merge thread panicked");
    }
    let s = total.snapshot();
    assert_eq!(s.count, SHARDS as u64 * PER_SHARD);
    let bucket_total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, s.count);
}

#[test]
fn snapshot_merge_is_associative_on_fixtures() {
    let mk = |vals: &[u64]| -> HistogramSnapshot { hist_of(vals).snapshot() };
    let (a, b, c) = (
        mk(&[1, 2, 3, 1 << 20]),
        mk(&[64, 65, u64::MAX]),
        mk(&[0, 0, 0, 999]),
    );
    let mut left = a.clone();
    left.merge_from(&b);
    left.merge_from(&c);
    let mut bc = b.clone();
    bc.merge_from(&c);
    let mut right = a.clone();
    right.merge_from(&bc);
    assert_eq!(left, right);
}
