//! Named metrics registry and its exposition formats.
//!
//! A [`Registry`] hands out shared [`Counter`]s and
//! [`Histogram`](crate::Histogram)s keyed by name. Labels are encoded
//! Prometheus-style inside the name itself (`sas_requests_total{tag="query"}`),
//! which keeps the registry a flat sorted map and makes the Prometheus
//! exposition a plain text rendering of the snapshot. Hot paths resolve
//! their `Arc` handles once at startup and record without touching the
//! registry lock again.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{bucket_upper, Histogram, HistogramSnapshot};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the cell to `v` if it is below it (for watermark/duration
    /// cells that record a one-shot measurement like recovery time).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

/// A process-wide catalog of named counters and histograms.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "Registry({n} metrics)")
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a histogram — metric
    /// names are static, so that is a programming error, not input.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            Metric::Histogram(_) => panic!("metric {name:?} already registered as a histogram"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a counter.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            Metric::Counter(_) => panic!("metric {name:?} already registered as a counter"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsReport {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut report = MetricsReport::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => report.counters.push((name.clone(), c.get())),
                Metric::Histogram(h) => report.histograms.push((name.clone(), h.snapshot())),
            }
        }
        report
    }
}

/// A snapshot of a [`Registry`]: what `REQ_METRICS` ships over the wire.
///
/// Both lists are sorted by metric name; the wire codec round-trips the
/// struct field-for-field, so equality is byte-level fidelity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Splits `sas_foo_total{tag="query"}` into `("sas_foo_total", "tag=\"query\"")`.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(at) => (&name[..at], name[at..].trim_matches(['{', '}'])),
        None => (name, ""),
    }
}

impl MetricsReport {
    /// Prometheus text exposition format (version 0.0.4).
    ///
    /// Histogram values are raw `u64`s in whatever unit they were recorded
    /// in (the daemon records nanoseconds and names the series `*_ns`);
    /// bucket lines are cumulative and sparse — only buckets that hold
    /// observations appear, plus the mandatory `+Inf` line.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = "";
        for (name, value) in &self.counters {
            let (base, _) = split_labels(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_base = base;
            }
            let _ = writeln!(out, "{name} {value}");
        }
        let mut last_base = "";
        for (name, snap) in &self.histograms {
            let (base, labels) = split_labels(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} histogram");
                last_base = base;
            }
            let sep = if labels.is_empty() { "" } else { "," };
            let mut cumulative = 0u64;
            for &(i, n) in &snap.buckets {
                cumulative += n;
                let le = bucket_upper(i as usize);
                let _ = writeln!(
                    out,
                    "{base}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "{base}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
                snap.count
            );
            let label_block = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let _ = writeln!(out, "{base}_sum{label_block} {}", snap.sum);
            let _ = writeln!(out, "{base}_count{label_block} {}", snap.count);
        }
        out
    }

    /// Tab-separated `name\tvalue` lines; histograms expand into
    /// `count/sum/min/p50/p95/p99/max` rows.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name}\t{value}");
        }
        for (name, snap) in &self.histograms {
            let _ = writeln!(out, "{name}.count\t{}", snap.count);
            let _ = writeln!(out, "{name}.sum\t{}", snap.sum);
            let _ = writeln!(out, "{name}.min\t{}", snap.min);
            let _ = writeln!(out, "{name}.p50\t{}", snap.percentile(50.0));
            let _ = writeln!(out, "{name}.p95\t{}", snap.percentile(95.0));
            let _ = writeln!(out, "{name}.p99\t{}", snap.percentile(99.0));
            let _ = writeln!(out, "{name}.max\t{}", snap.max);
        }
        out
    }

    /// A single JSON object: counters as numbers, histograms as objects
    /// with summary percentiles (bucket detail stays on the wire format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\n    {}: {value}", json_string(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, snap)) in self.histograms.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{comma}\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                json_string(name),
                snap.count,
                snap.sum,
                snap.min,
                snap.percentile(50.0),
                snap.percentile(95.0),
                snap.percentile(99.0),
                snap.max,
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Quotes and escapes `s` as a JSON string (metric names carry `"` from
/// their label values).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_histogram_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("sas_events_total");
        let b = r.counter("sas_events_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let h1 = r.histogram("sas_lat_ns");
        let h2 = r.histogram("sas_lat_ns");
        h1.record(5);
        h2.record(7);
        assert_eq!(h1.count(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("sas_x");
        r.histogram("sas_x");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("sas_b_total");
        r.counter("sas_a_total");
        r.histogram("sas_z_ns");
        r.histogram("sas_m_ns");
        let report = r.snapshot();
        let counter_names: Vec<_> = report.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(counter_names, ["sas_a_total", "sas_b_total"]);
        let hist_names: Vec<_> = report.histograms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(hist_names, ["sas_m_ns", "sas_z_ns"]);
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let r = Registry::new();
        r.counter("sas_requests_total{tag=\"query\"}").add(3);
        r.counter("sas_requests_total{tag=\"ping\"}").inc();
        let h = r.histogram("sas_request_ns{tag=\"query\"}");
        h.record(100);
        h.record(200);
        h.record(300);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE sas_requests_total counter"));
        assert!(text.contains("sas_requests_total{tag=\"query\"} 3"));
        assert!(text.contains("# TYPE sas_request_ns histogram"));
        assert!(text.contains("sas_request_ns_bucket{tag=\"query\",le=\"+Inf\"} 3"));
        assert!(text.contains("sas_request_ns_sum{tag=\"query\"} 600"));
        assert!(text.contains("sas_request_ns_count{tag=\"query\"} 3"));
        // Cumulative bucket counts end at the total.
        let last_le = text
            .lines()
            .rfind(|l| l.starts_with("sas_request_ns_bucket"))
            .unwrap();
        assert!(last_le.ends_with(" 3"));
        // Every line is `name value` or a comment: parseable exposition.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "unparseable line: {line}"
            );
        }
    }

    #[test]
    fn tsv_and_json_render_both_metric_kinds() {
        let r = Registry::new();
        r.counter("sas_hits_total").add(41);
        r.histogram("sas_lat_ns").record(1000);
        let report = r.snapshot();
        let tsv = report.to_tsv();
        assert!(tsv.contains("sas_hits_total\t41"));
        assert!(tsv.contains("sas_lat_ns.count\t1"));
        let json = report.to_json();
        assert!(json.contains("\"sas_hits_total\": 41"));
        assert!(json.contains("\"count\": 1"));
        // Label quotes must be escaped so the JSON stays parseable.
        let r2 = Registry::new();
        r2.counter("sas_x_total{tag=\"q\"}").inc();
        let json2 = r2.snapshot().to_json();
        assert!(json2.contains("\"sas_x_total{tag=\\\"q\\\"}\": 1"));
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let report = Registry::new().snapshot();
        assert_eq!(report.to_prometheus(), "");
        assert_eq!(report.to_tsv(), "");
        assert!(report.to_json().contains("\"counters\": {"));
    }
}
