//! Leveled structured logger: single-line `key=value` records on stderr.
//!
//! The level comes from `SAS_LOG` (`warn`, `info`, or `debug`; default
//! `warn`) and is cached in an atomic after the first check, so a
//! disabled [`slog!`](crate::slog) call is one relaxed load and a branch —
//! no formatting, no allocation, no syscall. Enabled records are rendered
//! into one `String` and written with a single `write_all`, so concurrent
//! threads never interleave mid-line.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// Log severity, ordered so that a numeric comparison is a level check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

const LEVEL_UNSET: u8 = 0;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> Level {
    match std::env::var("SAS_LOG").as_deref() {
        Ok("debug") => Level::Debug,
        Ok("info") => Level::Info,
        // Unknown values degrade to the default rather than erroring:
        // logging config must never take the daemon down.
        _ => Level::Warn,
    }
}

/// The active log level (reads `SAS_LOG` once, then a relaxed load).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let l = level_from_env();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Overrides the level programmatically (tests, `--metrics-every` dumps).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when records at `l` should be emitted.
pub fn enabled(l: Level) -> bool {
    l <= level()
}

fn start_instant() -> Instant {
    static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Renders and writes one record. Called by [`slog!`](crate::slog) only
/// after the level check passed; `args` carries the already-formatted
/// `key=value` tail.
pub fn emit(l: Level, event: &str, args: std::fmt::Arguments<'_>) {
    let t = start_instant().elapsed();
    let line = format!(
        "t={:.3} level={} event={}{}\n",
        t.as_secs_f64(),
        l.as_str(),
        event,
        args
    );
    // One write_all keeps concurrent records line-atomic; a failed write
    // (closed stderr) is ignored — logging must never kill the daemon.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Emits a single-line structured log record:
///
/// ```
/// use sas_obs::{slog, Level};
/// sas_obs::set_level(Level::Info);
/// slog!(Level::Info, "compaction_done", dataset = "web", merged = 3);
/// ```
///
/// Values use their `Display` impls; quote free-form strings at the call
/// site with `{:?}`-style wrappers (e.g. `err = format_args!("{e:?}")`)
/// when they may contain spaces. When the level is disabled the argument
/// expressions are never evaluated.
#[macro_export]
macro_rules! slog {
    ($lvl:expr, $event:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled($lvl) {
            $crate::emit(
                $lvl,
                $event,
                ::core::format_args!(
                    concat!($(" ", stringify!($k), "={}"),*)
                    $(, $v)*
                ),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        set_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
    }

    #[test]
    fn disabled_records_do_not_evaluate_arguments() {
        set_level(Level::Warn);
        let mut evaluated = false;
        slog!(
            Level::Debug,
            "never",
            x = {
                evaluated = true;
                1
            }
        );
        assert!(!evaluated, "disabled slog! must not evaluate its values");
    }

    #[test]
    fn emit_formats_key_value_tails() {
        // Smoke: the macro body composes; output goes to stderr.
        set_level(Level::Warn);
        slog!(Level::Warn, "test_event", a = 1, b = "two");
    }
}
