//! Lock-free log-bucketed latency histogram.
//!
//! The bucket scheme is log-linear (the HdrHistogram layout): values below
//! [`SUB`] land in unit-width buckets, and every power-of-two octave above
//! that is split into [`SUB`] equal sub-buckets. With `SUB = 64` the
//! relative width of any bucket is at most `1/64 ≈ 1.6%` of its lower
//! bound — roughly two significant decimal digits — while the whole table
//! stays a fixed [`NUM_BUCKETS`]` × 8` bytes (~17.5 KiB) regardless of how
//! many observations are recorded.
//!
//! Everything is plain relaxed atomics: recording is a single `fetch_add`
//! on the bucket plus count/sum/min/max updates, so writers never contend
//! on a lock and readers can snapshot at any time. Bucket-wise addition
//! makes histograms mergeable, and the merge is associative and
//! commutative (it is integer vector addition), which the property tests
//! in `tests/histogram_properties.rs` pin down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 6;
/// Sub-buckets per power-of-two octave; also the width-1 range `0..SUB`.
pub const SUB: u64 = 1 << SUB_BITS;
/// Values at or above `2^MAX_EXP` saturate into the final bucket. In
/// nanoseconds this is ~18 minutes — far beyond any latency the daemon
/// can produce while its read timeout is armed. The exact `max` is still
/// tracked separately, so saturation never loses the true maximum.
pub const MAX_EXP: u32 = 40;
/// Total bucket count: `SUB` unit buckets plus `MAX_EXP - SUB_BITS`
/// octaves of `SUB` sub-buckets each.
pub const NUM_BUCKETS: usize = ((MAX_EXP - SUB_BITS + 1) as usize) << SUB_BITS;

/// Index of the bucket holding `v` (saturating at the final bucket).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    if top >= MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let sub = (v >> (top - SUB_BITS)) & (SUB - 1);
    (((top - SUB_BITS + 1) as usize) << SUB_BITS) + sub as usize
}

/// Smallest value mapped to bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUB as usize {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32 + SUB_BITS - 1; // top bit position
    let sub = (i as u64) & (SUB - 1);
    (SUB + sub) << (octave - SUB_BITS)
}

/// Width of bucket `i` (1 for the unit range, doubling per octave).
pub fn bucket_width(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < (2 * SUB) as usize {
        1
    } else {
        1 << ((i >> SUB_BITS) as u32 - 1)
    }
}

/// Largest value mapped to bucket `i` (ignoring saturation overflow).
pub fn bucket_upper(i: usize) -> u64 {
    bucket_lower(i) + (bucket_width(i) - 1)
}

/// True when `a` and `b` fall in the same or adjacent buckets — the
/// agreement bound the bench bins assert between histogram-derived and
/// sort-derived percentiles.
pub fn within_one_bucket(a: u64, b: u64) -> bool {
    bucket_index(a).abs_diff(bucket_index(b)) <= 1
}

/// A fixed-footprint concurrent histogram of `u64` observations.
///
/// `Debug` prints the count/min/max summary, not 2240 buckets.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("min", &self.min.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn new() -> Self {
        // Avoid materializing the array on the stack: allocate zeroed.
        // An AtomicU64 is layout- and validity-compatible with 0u64.
        let buckets = vec![0u64; NUM_BUCKETS]
            .into_iter()
            .map(AtomicU64::new)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            buckets.try_into().expect("bucket count is NUM_BUCKETS");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; safe from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds every observation of `other` into `self` (bucket-wise).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution (sparse: nonzero buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((i as u32, n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Convenience percentile straight off the live histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }
}

/// An immutable copy of a [`Histogram`], as shipped over the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sorted `(bucket index, count)` pairs for nonzero buckets only.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Value at percentile `p` (0..=100), exact to within one bucket width.
    ///
    /// Returns the upper bound of the bucket containing the rank-`⌈p/100·n⌉`
    /// observation, clamped into `[min, max]` so `percentile(0)` is the true
    /// minimum and `percentile(100)` the true maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(i as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot's observations into this one (bucket-wise).
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(ia, _)), Some(&&(ib, _))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => merged.push(*a.next().unwrap()),
                std::cmp::Ordering::Greater => merged.push(*b.next().unwrap()),
                std::cmp::Ordering::Equal => {
                    let (i, na) = *a.next().unwrap();
                    let (_, nb) = *b.next().unwrap();
                    merged.push((i, na + nb));
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_width(v as usize), 1);
        }
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Every bucket starts where the previous one ended.
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_lower(i),
                bucket_upper(i - 1) + 1,
                "gap or overlap between buckets {} and {}",
                i - 1,
                i
            );
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = [
            0,
            1,
            SUB - 1,
            SUB,
            SUB + 1,
            127,
            128,
            129,
            1000,
            4095,
            4096,
            (1 << 20) - 1,
            1 << 20,
            (1 << MAX_EXP) - 1,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
        }
    }

    #[test]
    fn relative_bucket_width_is_two_significant_digits() {
        for i in (SUB as usize)..NUM_BUCKETS {
            let rel = bucket_width(i) as f64 / bucket_lower(i) as f64;
            assert!(rel <= 1.0 / SUB as f64 + 1e-12, "bucket {i}: rel {rel}");
        }
    }

    #[test]
    fn saturation_goes_to_the_final_bucket() {
        assert_eq!(bucket_index(1 << MAX_EXP), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 50);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets, vec![((NUM_BUCKETS - 1) as u32, 2)]);
        assert_eq!(s.max, u64::MAX, "exact max survives saturation");
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        for (p, exact) in [(50.0, 500u64), (95.0, 950), (99.0, 990), (100.0, 1000)] {
            let got = s.percentile(p);
            assert!(
                within_one_bucket(got, exact),
                "p{p}: got {got}, exact {exact}"
            );
        }
        assert_eq!(s.percentile(100.0), 1000, "p100 is the exact max");
        assert_eq!(s.percentile(0.0), 1, "p0 is the exact min");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.percentile(50.0), 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_from_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(100_000);
        b.record(7);
        b.record(42);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10 + 100_000 + 7 + 42);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 100_000);
    }

    #[test]
    fn snapshot_merge_matches_histogram_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 64, 65, 900, 1 << 30] {
            a.record(v);
        }
        for v in [0u64, 64, 1 << 30, u64::MAX] {
            b.record(v);
        }
        let mut sa = a.snapshot();
        sa.merge_from(&b.snapshot());
        a.merge_from(&b);
        assert_eq!(sa, a.snapshot());
    }
}
