//! Observability primitives for the sas daemon (std-only, zero deps).
//!
//! Three pieces, deliberately small:
//!
//! * [`Histogram`] — a lock-free, fixed-footprint log-bucketed latency
//!   histogram (~1.6% relative bucket width, mergeable, exact
//!   p50/p95/p99/max extraction). See [`histogram`] for the bucket scheme.
//! * [`Registry`] / [`Counter`] / [`MetricsReport`] — a flat sorted
//!   catalog of named metrics with Prometheus/TSV/JSON exposition; what
//!   the daemon's `REQ_METRICS` wire tag snapshots and ships.
//! * [`slog!`] / [`Level`] — a leveled single-line `key=value` logger
//!   gated by `SAS_LOG`, free when disabled.

pub mod histogram;
pub mod log;
pub mod registry;

pub use histogram::{
    bucket_index, bucket_lower, bucket_upper, bucket_width, within_one_bucket, Histogram,
    HistogramSnapshot, MAX_EXP, NUM_BUCKETS, SUB, SUB_BITS,
};
pub use log::{emit, enabled, level, set_level, Level};
pub use registry::{Counter, MetricsReport, Registry};
