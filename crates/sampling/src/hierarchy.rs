//! Structure-aware sampling over a hierarchy (Section 3 of the paper).
//!
//! Pair selection follows the **lowest-LCA rule**: always aggregate a pair
//! of active keys whose lowest common ancestor is as deep as possible —
//! equivalently, resolve each subtree before its probability mass can move
//! across subtree boundaries. Consequently, for every internal node `v` and
//! every step at which some key under `v` is still active, the mass under
//! `v` equals its original expectation; at termination
//!
//! ```text
//!   |S ∩ v| ∈ { ⌊p(v)⌋, ⌈p(v)⌉ }
//! ```
//!
//! so the maximum range discrepancy is Δ < 1 — the minimum possible for any
//! unbiased sample-based summary.
//!
//! Implemented as an iterative post-order traversal carrying at most one
//! "leftover" active entry per subtree, which realizes the lowest-LCA rule
//! without materializing pair choices.

use std::collections::HashMap;

use rand::Rng;

use sas_core::aggregate::{AggregationState, EntryState};
use sas_core::{Sample, WeightedKey};
use sas_structures::hierarchy::{Hierarchy, NodeId};

use crate::IppsSetup;

/// Tolerance when finalizing the root leftover entry (whose probability is
/// integral up to accumulated floating-point error).
const ROOT_TOL: f64 = 1e-6;

/// Draws a structure-aware VarOpt sample of size `s` over `data` arranged in
/// the given hierarchy.
///
/// Keys present in `hierarchy` but absent from `data` are treated as weight
/// 0; keys in `data` must appear as hierarchy leaves.
///
/// # Panics
/// Panics if a data key with positive weight has no leaf in the hierarchy.
pub fn sample<R: Rng + ?Sized>(
    data: &[WeightedKey],
    hierarchy: &Hierarchy,
    s: usize,
    rng: &mut R,
) -> Sample {
    let setup = IppsSetup::compute(data, s);
    let state = aggregate_over_hierarchy(&setup, hierarchy, rng);
    let included = state.included_keys().collect::<Vec<_>>();
    let mut sample = Sample::from_inclusion(data, &[], included, setup.tau);
    let certain =
        Sample::from_inclusion(data, &[], setup.certain.iter().map(|wk| wk.key), setup.tau);
    sample.merge(certain);
    sample
}

/// Runs the lowest-LCA aggregation over the hierarchy and returns the final
/// [`AggregationState`] for the *active* keys (certain keys are handled by
/// the caller).
pub fn aggregate_over_hierarchy<R: Rng + ?Sized>(
    setup: &IppsSetup,
    hierarchy: &Hierarchy,
    rng: &mut R,
) -> AggregationState {
    // Map leaf position -> active entry index.
    let mut pos_of_key: HashMap<u64, usize> = HashMap::new();
    let key_to_pos: HashMap<_, _> = hierarchy.linearize().map(|(pos, k)| (k, pos)).collect();
    let keys: Vec<_> = setup.active.iter().map(|(wk, _)| wk.key).collect();
    let probs: Vec<f64> = setup.active.iter().map(|(_, p)| *p).collect();
    for (idx, (wk, _)) in setup.active.iter().enumerate() {
        let pos = *key_to_pos
            .get(&wk.key)
            .unwrap_or_else(|| panic!("key {} not found in hierarchy", wk.key));
        pos_of_key.insert(pos, idx);
    }
    let mut state = AggregationState::new(keys, probs);

    // Iterative post-order: children fully resolved before their parent.
    // `leftover[n]` is the at-most-one active entry surviving subtree n.
    let mut leftover: Vec<Option<usize>> = vec![None; hierarchy.node_count()];
    let mut stack: Vec<(NodeId, bool)> = vec![(hierarchy.root(), false)];
    while let Some((n, processed)) = stack.pop() {
        if !processed {
            stack.push((n, true));
            for &c in hierarchy.children(n) {
                stack.push((c, false));
            }
            continue;
        }
        if hierarchy.is_leaf(n) {
            let pos = hierarchy.leaf_position(n);
            leftover[n as usize] = pos_of_key
                .get(&pos)
                .copied()
                .filter(|&idx| state.state(idx) == EntryState::Active);
            continue;
        }
        let mut survivor: Option<usize> = None;
        for &c in hierarchy.children(n) {
            let Some(other) = leftover[c as usize] else {
                continue;
            };
            survivor = match survivor {
                None => Some(other),
                Some(cur) => {
                    state.aggregate(cur, other, rng);
                    // Whichever of the two is still active survives.
                    [cur, other]
                        .into_iter()
                        .find(|&idx| state.state(idx) == EntryState::Active)
                }
            };
        }
        leftover[n as usize] = survivor;
    }

    // Root leftover: with integral active mass its probability is 0/1 up to
    // accumulated error; otherwise randomized rounding keeps expectations.
    if let Some(idx) = leftover[hierarchy.root() as usize] {
        if !state.finalize_entry(idx, ROOT_TOL) {
            state.round_entry(idx, rng);
        }
    }
    state
}

/// Per-node discrepancies of a sample over every internal node of the
/// hierarchy — used to verify the Δ < 1 guarantee and by the experiment
/// harness.
pub fn node_discrepancies(
    sample: &Sample,
    data: &[WeightedKey],
    hierarchy: &Hierarchy,
    s: usize,
) -> Vec<f64> {
    let setup = IppsSetup::compute(data, s);
    let prob_of: HashMap<_, _> = setup
        .certain
        .iter()
        .map(|wk| (wk.key, 1.0))
        .chain(setup.active.iter().map(|(wk, p)| (wk.key, *p)))
        .collect();
    let in_sample: std::collections::HashSet<_> = sample.keys().collect();
    hierarchy
        .internal_nodes()
        .map(|n| {
            let mut expected = 0.0;
            let mut actual = 0usize;
            for k in hierarchy.keys_under(n) {
                expected += prob_of.get(&k).copied().unwrap_or(0.0);
                if in_sample.contains(&k) {
                    actual += 1;
                }
            }
            (actual as f64 - expected).abs()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sas_structures::hierarchy::{figure1_hierarchy, HierarchyBuilder};

    fn figure1_data() -> Vec<WeightedKey> {
        // Weights from the paper's Figure 1, keys 1..=10.
        let w = [3.0, 6.0, 4.0, 7.0, 1.0, 8.0, 4.0, 2.0, 3.0, 2.0];
        w.iter()
            .enumerate()
            .map(|(i, &wt)| WeightedKey::new(i as u64 + 1, wt))
            .collect()
    }

    #[test]
    fn figure1_sample_size_is_four() {
        let h = figure1_hierarchy();
        let data = figure1_data();
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sample(&data, &h, 4, &mut rng);
            assert_eq!(s.len(), 4, "seed {seed}");
        }
    }

    #[test]
    fn figure1_node_discrepancy_below_one() {
        let h = figure1_hierarchy();
        let data = figure1_data();
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let smp = sample(&data, &h, 4, &mut rng);
            for (i, d) in node_discrepancies(&smp, &data, &h, 4).iter().enumerate() {
                assert!(*d < 1.0 + 1e-6, "seed {seed} node-range {i}: Δ = {d}");
            }
        }
    }

    #[test]
    fn inclusion_probabilities_are_ipps() {
        let h = figure1_hierarchy();
        let data = figure1_data();
        let expect = [0.3, 0.6, 0.4, 0.7, 0.1, 0.8, 0.4, 0.2, 0.3, 0.2];
        let runs = 60_000;
        let mut hits = [0usize; 10];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..runs {
            let smp = sample(&data, &h, 4, &mut rng);
            for e in smp.iter() {
                hits[(e.key - 1) as usize] += 1;
            }
        }
        for i in 0..10 {
            let freq = hits[i] as f64 / runs as f64;
            assert!(
                (freq - expect[i]).abs() < 0.01,
                "key {}: freq {freq} vs {}",
                i + 1,
                expect[i]
            );
        }
    }

    #[test]
    fn heavy_keys_always_included() {
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        let l = b.add_internal(root);
        b.add_leaf(l, 1);
        b.add_leaf(l, 2);
        let r = b.add_internal(root);
        b.add_leaf(r, 3);
        b.add_leaf(r, 4);
        let h = b.build();
        let data = vec![
            WeightedKey::new(1, 1000.0),
            WeightedKey::new(2, 1.0),
            WeightedKey::new(3, 1.0),
            WeightedKey::new(4, 1.0),
        ];
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sample(&data, &h, 2, &mut rng);
            assert!(s.contains(1), "seed {seed}");
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn unbiased_subset_estimates() {
        let h = figure1_hierarchy();
        let data = figure1_data();
        // Estimate the weight under node A (keys 1..=4, true weight 20).
        let truth = 3.0 + 6.0 + 4.0 + 7.0;
        let runs = 30_000;
        let mut sum = 0.0;
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..runs {
            let smp = sample(&data, &h, 4, &mut rng);
            sum += smp.subset_estimate(|k| k <= 4);
        }
        let mean = sum / runs as f64;
        assert!((mean - truth).abs() / truth < 0.02, "{mean} vs {truth}");
    }

    #[test]
    fn random_hierarchies_keep_delta_below_one() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            // Random 3-level hierarchy with random weights.
            let mut b = HierarchyBuilder::new();
            let root = b.root();
            let mut key = 0u64;
            let groups = rng.gen_range(2..6);
            for _ in 0..groups {
                let g = b.add_internal(root);
                let subgroups = rng.gen_range(1..4);
                for _ in 0..subgroups {
                    let sg = b.add_internal(g);
                    for _ in 0..rng.gen_range(1..5) {
                        b.add_leaf(sg, key);
                        key += 1;
                    }
                }
            }
            let h = b.build();
            let data: Vec<WeightedKey> = (0..key)
                .map(|k| WeightedKey::new(k, rng.gen_range(0.5..20.0)))
                .collect();
            let s_target = rng.gen_range(1..(key as usize).max(2));
            let smp = sample(&data, &h, s_target, &mut rng);
            assert_eq!(smp.len(), s_target.min(key as usize), "trial {trial}");
            for d in node_discrepancies(&smp, &data, &h, s_target) {
                assert!(d < 1.0 + 1e-6, "trial {trial}: Δ = {d}");
            }
        }
    }

    #[test]
    fn zero_weight_keys_in_hierarchy_are_fine() {
        let h = figure1_hierarchy();
        let mut data = figure1_data();
        data[4] = WeightedKey::new(5, 0.0); // key 5 gets weight 0
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample(&data, &h, 4, &mut rng);
        assert_eq!(s.len(), 4);
        assert!(!s.contains(5));
    }
}
