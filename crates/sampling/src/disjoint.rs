//! Structure-aware sampling over disjoint ranges (Section 3).
//!
//! The range family is a partition of the key domain (a flat 2-level
//! hierarchy). Pair selection aggregates pairs **within** the same range
//! while any exist, and only then pairs spanning ranges — giving
//! Δ < 1 on every range: each range holds the floor or ceiling of its
//! expected number of samples.

use std::collections::HashMap;

use rand::Rng;

use sas_core::aggregate::{AggregationState, EntryState};
use sas_core::{KeyId, Sample, WeightedKey};

use crate::IppsSetup;

const ROOT_TOL: f64 = 1e-6;

/// Draws a structure-aware VarOpt sample of size `s` where `range_of(key)`
/// assigns each key to its partition class.
pub fn sample<R: Rng + ?Sized>(
    data: &[WeightedKey],
    s: usize,
    mut range_of: impl FnMut(KeyId) -> u64,
    rng: &mut R,
) -> Sample {
    let setup = IppsSetup::compute(data, s);
    let keys: Vec<KeyId> = setup.active.iter().map(|(wk, _)| wk.key).collect();
    let probs: Vec<f64> = setup.active.iter().map(|(_, p)| *p).collect();
    let mut state = AggregationState::new(keys.clone(), probs);

    // Group active entries by range.
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (idx, &k) in keys.iter().enumerate() {
        groups.entry(range_of(k)).or_default().push(idx);
    }

    // Phase 1: aggregate within each range, leaving ≤ 1 active per range.
    let mut leftovers: Vec<usize> = Vec::with_capacity(groups.len());
    for (_, idxs) in groups {
        let mut survivor: Option<usize> = None;
        for idx in idxs {
            if state.state(idx) != EntryState::Active {
                continue;
            }
            survivor = match survivor {
                None => Some(idx),
                Some(cur) => {
                    state.aggregate(cur, idx, rng);
                    [cur, idx]
                        .into_iter()
                        .find(|&x| state.state(x) == EntryState::Active)
                }
            };
        }
        if let Some(x) = survivor {
            leftovers.push(x);
        }
    }

    // Phase 2: aggregate leftovers across ranges (arbitrary order).
    let mut survivor: Option<usize> = None;
    for idx in leftovers {
        if state.state(idx) != EntryState::Active {
            continue;
        }
        survivor = match survivor {
            None => Some(idx),
            Some(cur) => {
                state.aggregate(cur, idx, rng);
                [cur, idx]
                    .into_iter()
                    .find(|&x| state.state(x) == EntryState::Active)
            }
        };
    }
    if let Some(idx) = survivor {
        if !state.finalize_entry(idx, ROOT_TOL) {
            state.round_entry(idx, rng);
        }
    }

    let mut sample = Sample::from_inclusion(
        data,
        &[],
        state.included_keys().collect::<Vec<_>>(),
        setup.tau,
    );
    sample.merge(Sample::from_inclusion(
        data,
        &[],
        setup.certain.iter().map(|wk| wk.key),
        setup.tau,
    ));
    sample
}

/// Per-range discrepancies of a sample under partition `range_of`.
pub fn range_discrepancies(
    sample: &Sample,
    data: &[WeightedKey],
    s: usize,
    mut range_of: impl FnMut(KeyId) -> u64,
) -> HashMap<u64, f64> {
    let setup = IppsSetup::compute(data, s);
    let mut expected: HashMap<u64, f64> = HashMap::new();
    for wk in &setup.certain {
        *expected.entry(range_of(wk.key)).or_default() += 1.0;
    }
    for (wk, p) in &setup.active {
        *expected.entry(range_of(wk.key)).or_default() += p;
    }
    let mut actual: HashMap<u64, f64> = HashMap::new();
    for k in sample.keys() {
        *actual.entry(range_of(k)).or_default() += 1.0;
    }
    expected
        .into_iter()
        .map(|(r, e)| (r, (actual.get(&r).copied().unwrap_or(0.0) - e).abs()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_data(n: u64, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..10.0)))
            .collect()
    }

    #[test]
    fn sample_size_exact() {
        let data = random_data(80, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for s in [1, 4, 10, 40] {
            let smp = sample(&data, s, |k| k % 8, &mut rng);
            assert_eq!(smp.len(), s);
        }
    }

    #[test]
    fn per_range_delta_below_one() {
        for seed in 0..30 {
            let data = random_data(100, seed);
            let mut rng = StdRng::seed_from_u64(seed + 77);
            let smp = sample(&data, 12, |k| k / 10, &mut rng);
            for (r, d) in range_discrepancies(&smp, &data, 12, |k| k / 10) {
                assert!(d < 1.0 + 1e-6, "seed {seed} range {r}: Δ = {d}");
            }
        }
    }

    #[test]
    fn single_range_degenerates_to_varopt() {
        let data = random_data(50, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let smp = sample(&data, 7, |_| 0, &mut rng);
        assert_eq!(smp.len(), 7);
    }

    #[test]
    fn many_singleton_ranges() {
        // Each key its own range: Δ<1 per range is automatic (p_i < 1).
        let data = random_data(30, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let smp = sample(&data, 6, |k| k, &mut rng);
        assert_eq!(smp.len(), 6);
        for (_, d) in range_discrepancies(&smp, &data, 6, |k| k) {
            assert!(d < 1.0 + 1e-6);
        }
    }

    #[test]
    fn unbiased_per_range_estimates() {
        let data = random_data(60, 7);
        let truth: f64 = data
            .iter()
            .filter(|wk| wk.key / 20 == 1)
            .map(|wk| wk.weight)
            .sum();
        let runs = 20_000;
        let mut sum = 0.0;
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..runs {
            let smp = sample(&data, 10, |k| k / 20, &mut rng);
            sum += smp.subset_estimate(|k| k / 20 == 1);
        }
        let mean = sum / runs as f64;
        assert!((mean - truth).abs() / truth < 0.02, "{mean} vs {truth}");
    }
}
