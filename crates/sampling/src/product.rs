//! Structure-aware sampling over d-dimensional product structures
//! (Section 4 of the paper).
//!
//! Pipeline:
//! 1. compute IPPS probabilities and set aside certain keys (`pᵢ = 1`);
//! 2. build [`KdHierarchy`] (Algorithm 2) over the active keys — a kd-tree
//!    whose splits halve the probability mass, so cells are mass-balanced;
//! 3. run the hierarchy summarization of Section 3 over the kd-tree:
//!    aggregate bottom-up, each subtree resolving to at most one active key.
//!
//! The discrepancy on a box `R` behaves like a structure-oblivious VarOpt
//! sample on a subset of mass `μ ≤ min{p(R), 2d·s^((d−1)/d)}` (boundary
//! cells only), i.e. error concentrated around
//! `√μ ≤ min{√p(R), √(2d)·s^((d−1)/(2d))}`.

use std::collections::HashMap;

use rand::Rng;

use sas_core::aggregate::{AggregationState, EntryState};
use sas_core::{KeyId, Sample, WeightedKey};
use sas_structures::kdtree::{KdHierarchy, KdItem};
use sas_structures::product::{BoxRange, Point};

use crate::IppsSetup;

const ROOT_TOL: f64 = 1e-6;

/// A d-dimensional weighted data set: every key has a location.
#[derive(Debug, Clone)]
pub struct SpatialData {
    /// The weighted keys.
    pub keys: Vec<WeightedKey>,
    /// Location of each key (same order as `keys`).
    pub points: Vec<Point>,
}

impl SpatialData {
    /// Creates a spatial data set.
    ///
    /// # Panics
    /// Panics if lengths differ or dimensions are inconsistent.
    pub fn new(keys: Vec<WeightedKey>, points: Vec<Point>) -> Self {
        assert_eq!(keys.len(), points.len(), "keys/points length mismatch");
        if let Some(first) = points.first() {
            let d = first.dim();
            assert!(points.iter().all(|p| p.dim() == d), "inconsistent dims");
        }
        Self { keys, points }
    }

    /// Builds from `(x, y, weight)` triples with keys `0..n`.
    pub fn from_xyw(rows: &[(u64, u64, f64)]) -> Self {
        let keys = rows
            .iter()
            .enumerate()
            .map(|(i, &(_, _, w))| WeightedKey::new(i as u64, w))
            .collect();
        let points = rows.iter().map(|&(x, y, _)| Point::xy(x, y)).collect();
        Self::new(keys, points)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the data set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Location of `key` (linear scan; build an index for bulk lookups).
    pub fn point_of(&self, key: KeyId) -> Option<&Point> {
        self.keys
            .iter()
            .position(|wk| wk.key == key)
            .map(|i| &self.points[i])
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.keys.iter().map(|wk| wk.weight).sum()
    }

    /// Exact weight inside a box.
    pub fn box_weight(&self, b: &BoxRange) -> f64 {
        self.keys
            .iter()
            .zip(&self.points)
            .filter(|(_, p)| b.contains(p))
            .map(|(wk, _)| wk.weight)
            .sum()
    }
}

/// Draws a structure-aware VarOpt sample of size `s` over spatial data.
///
/// Builds the kd-hierarchy over active keys and aggregates bottom-up.
pub fn sample<R: Rng + ?Sized>(data: &SpatialData, s: usize, rng: &mut R) -> Sample {
    let setup = IppsSetup::compute(&data.keys, s);
    if setup.active.is_empty() {
        return Sample::from_inclusion(
            &data.keys,
            &[],
            setup.certain.iter().map(|wk| wk.key),
            setup.tau,
        );
    }
    // Locations of active keys.
    let point_by_key: HashMap<KeyId, &Point> = data
        .keys
        .iter()
        .zip(&data.points)
        .map(|(wk, p)| (wk.key, p))
        .collect();
    let items: Vec<KdItem> = setup
        .active
        .iter()
        .map(|(wk, p)| KdItem {
            key: wk.key,
            point: (*point_by_key
                .get(&wk.key)
                .unwrap_or_else(|| panic!("key {} has no location", wk.key)))
            .clone(),
            prob: *p,
        })
        .collect();
    let tree = KdHierarchy::build(items, 0.0);
    let state = aggregate_over_kd(&setup, &tree, rng);

    let mut sample = Sample::from_inclusion(
        &data.keys,
        &[],
        state.included_keys().collect::<Vec<_>>(),
        setup.tau,
    );
    sample.merge(Sample::from_inclusion(
        &data.keys,
        &[],
        setup.certain.iter().map(|wk| wk.key),
        setup.tau,
    ));
    sample
}

/// Bottom-up aggregation over a kd-hierarchy: post-order traversal keeping
/// at most one active entry per subtree (the kd analogue of the lowest-LCA
/// rule).
pub fn aggregate_over_kd<R: Rng + ?Sized>(
    _setup: &IppsSetup,
    tree: &KdHierarchy,
    rng: &mut R,
) -> AggregationState {
    // Entry order matches tree.items() order, which matches setup.active
    // order by construction in `sample`; rebuild defensively from the tree.
    let keys: Vec<KeyId> = tree.items().iter().map(|it| it.key).collect();
    let probs: Vec<f64> = tree.items().iter().map(|it| it.prob).collect();
    let mut state = AggregationState::new(keys, probs);

    let mut leftover: Vec<Option<usize>> = vec![None; tree.node_count()];
    let mut stack = vec![(tree.root(), false)];
    while let Some((n, processed)) = stack.pop() {
        if !processed {
            stack.push((n, true));
            if let Some((l, r)) = tree.children(n) {
                stack.push((l, false));
                stack.push((r, false));
            }
            continue;
        }
        if tree.is_leaf(n) {
            // Leaves may hold several co-located items: aggregate them.
            let mut survivor: Option<usize> = None;
            for &it in tree.leaf_items(n) {
                let idx = it as usize;
                if state.state(idx) != EntryState::Active {
                    continue;
                }
                survivor = match survivor {
                    None => Some(idx),
                    Some(cur) => {
                        state.aggregate(cur, idx, rng);
                        [cur, idx]
                            .into_iter()
                            .find(|&x| state.state(x) == EntryState::Active)
                    }
                };
            }
            leftover[n as usize] = survivor;
            continue;
        }
        let (l, r) = tree.children(n).expect("internal node");
        leftover[n as usize] = match (leftover[l as usize], leftover[r as usize]) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => {
                state.aggregate(a, b, rng);
                [a, b]
                    .into_iter()
                    .find(|&x| state.state(x) == EntryState::Active)
            }
        };
    }
    if let Some(idx) = leftover[tree.root() as usize] {
        if !state.finalize_entry(idx, ROOT_TOL) {
            state.round_entry(idx, rng);
        }
    }
    state
}

/// Estimates the weight inside `query` from a sample of spatial data.
pub fn estimate_box(sample: &Sample, data: &SpatialData, query: &BoxRange) -> f64 {
    let point_by_key: HashMap<KeyId, &Point> = data
        .keys
        .iter()
        .zip(&data.points)
        .map(|(wk, p)| (wk.key, p))
        .collect();
    sample.subset_estimate(|k| point_by_key.get(&k).is_some_and(|p| query.contains(p)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_spatial(n: usize, side: u64, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.1..5.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    #[test]
    fn sample_size_exact() {
        let data = random_spatial(300, 100, 1);
        for s in [2, 10, 50] {
            let mut rng = StdRng::seed_from_u64(s as u64);
            let smp = sample(&data, s, &mut rng);
            assert_eq!(smp.len(), s, "s={s}");
        }
    }

    #[test]
    fn unbiased_box_estimates() {
        let data = random_spatial(200, 50, 2);
        let query = BoxRange::xy(10, 35, 5, 40);
        let truth = data.box_weight(&query);
        let runs = 8_000;
        let mut sum = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..runs {
            let smp = sample(&data, 25, &mut rng);
            sum += estimate_box(&smp, &data, &query);
        }
        let mean = sum / runs as f64;
        assert!((mean - truth).abs() / truth < 0.03, "{mean} vs {truth}");
    }

    #[test]
    fn aware_beats_oblivious_on_boxes() {
        // The headline claim, in miniature: mean |error| of the structure-
        // aware sampler is lower than oblivious VarOpt for box queries.
        use sas_core::varopt::VarOptSampler;
        let data = random_spatial(1500, 64, 4);
        let queries: Vec<BoxRange> = {
            let mut qrng = StdRng::seed_from_u64(5);
            (0..30)
                .map(|_| {
                    let x0 = qrng.gen_range(0..48);
                    let y0 = qrng.gen_range(0..48);
                    BoxRange::xy(x0, x0 + 15, y0, y0 + 15)
                })
                .collect()
        };
        let s = 100;
        let runs = 60;
        let mut err_aware = 0.0;
        let mut err_obliv = 0.0;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let aware = sample(&data, s, &mut rng);
            let obliv = VarOptSampler::sample_slice(s, &data.keys, &mut rng);
            for q in &queries {
                let truth = data.box_weight(q);
                err_aware += (estimate_box(&aware, &data, q) - truth).abs();
                err_obliv += (estimate_box(&obliv, &data, q) - truth).abs();
            }
        }
        assert!(
            err_aware < err_obliv,
            "aware error {err_aware} not below oblivious {err_obliv}"
        );
    }

    #[test]
    fn all_keys_heavy_returns_certain_only() {
        let data = SpatialData::from_xyw(&[(1, 1, 5.0), (2, 2, 5.0)]);
        let mut rng = StdRng::seed_from_u64(6);
        let smp = sample(&data, 2, &mut rng);
        assert_eq!(smp.len(), 2);
    }

    #[test]
    fn colocated_points_are_handled() {
        let rows: Vec<(u64, u64, f64)> = (0..20).map(|_| (5, 5, 1.0)).collect();
        let data = SpatialData::from_xyw(&rows);
        let mut rng = StdRng::seed_from_u64(7);
        let smp = sample(&data, 4, &mut rng);
        assert_eq!(smp.len(), 4);
    }

    #[test]
    fn spatial_data_accessors() {
        let data = SpatialData::from_xyw(&[(1, 2, 3.0), (4, 5, 6.0)]);
        assert_eq!(data.len(), 2);
        assert!(!data.is_empty());
        assert_eq!(data.total_weight(), 9.0);
        assert_eq!(data.point_of(0), Some(&Point::xy(1, 2)));
        assert_eq!(data.point_of(99), None);
        assert_eq!(data.box_weight(&BoxRange::xy(0, 2, 0, 3)), 3.0);
    }
}
