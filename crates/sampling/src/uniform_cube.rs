//! The uniform-case product sampler of Section 4: sampling a uniform
//! distribution over a d-dimensional hypercube.
//!
//! For measure `s = h^d`, partition the cube into `s` unit cells and pick
//! one point uniformly from each cell. The result is a VarOpt sample of
//! size exactly `s`, and any axis-parallel box query touches at most
//! `2d·s^((d−1)/d)` boundary cells — only those contribute discrepancy, as
//! interior cells are counted exactly.
//!
//! This is the cleanest demonstration of the paper's d-dimensional bound
//! and is used by tests to validate the general kd-based sampler against
//! the analytically tractable case.

use rand::Rng;

use sas_core::estimate::{Sample, SampleEntry};
use sas_structures::product::{BoxRange, Point};

/// A sample point drawn from the uniform hypercube: its cell index and
/// continuous-ish location (integer grid of `cell_side` positions per cell).
#[derive(Debug, Clone)]
pub struct CubeSample {
    /// One sampled point per cell.
    pub points: Vec<Point>,
    /// Side length of each cell (in domain units).
    pub cell_side: u64,
    /// Cells per axis (`h`, where the sample size is `h^d`).
    pub cells_per_axis: u64,
    /// Dimensionality.
    pub dim: usize,
}

/// Draws a VarOpt sample of the uniform distribution over the hypercube
/// `[0, cells_per_axis·cell_side)^dim`: one uniform point per unit cell.
///
/// Sample size is `cells_per_axis^dim`.
///
/// # Panics
/// Panics if `dim == 0`, `cells_per_axis == 0`, or `cell_side == 0`.
pub fn sample_uniform_cube<R: Rng + ?Sized>(
    dim: usize,
    cells_per_axis: u64,
    cell_side: u64,
    rng: &mut R,
) -> CubeSample {
    assert!(dim >= 1 && cells_per_axis >= 1 && cell_side >= 1);
    let total_cells = cells_per_axis.pow(dim as u32);
    let mut points = Vec::with_capacity(total_cells as usize);
    // Iterate cells in row-major order.
    let mut idx = vec![0u64; dim];
    loop {
        let coords: Vec<u64> = idx
            .iter()
            .map(|&c| c * cell_side + rng.gen_range(0..cell_side))
            .collect();
        points.push(Point::new(coords));
        // Increment mixed-radix counter.
        let mut axis = 0;
        loop {
            idx[axis] += 1;
            if idx[axis] < cells_per_axis {
                break;
            }
            idx[axis] = 0;
            axis += 1;
            if axis == dim {
                return CubeSample {
                    points,
                    cell_side,
                    cells_per_axis,
                    dim,
                };
            }
        }
    }
}

impl CubeSample {
    /// Sample size (`cells_per_axis^dim`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sample is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of sampled points inside a box.
    pub fn count_in(&self, query: &BoxRange) -> usize {
        self.points.iter().filter(|p| query.contains(p)).count()
    }

    /// Expected number of sampled points in a box under the uniform
    /// measure: the box volume divided by the cell volume.
    pub fn expected_in(&self, query: &BoxRange) -> f64 {
        let cell_volume = (self.cell_side as f64).powi(self.dim as i32);
        let mut vol = 1.0;
        let side = self.cells_per_axis * self.cell_side;
        for iv in &query.sides {
            let lo = iv.lo.min(side);
            let hi = (iv.hi.saturating_add(1)).min(side);
            vol *= (hi.saturating_sub(lo)) as f64;
        }
        vol / cell_volume
    }

    /// Discrepancy of the sample on a box.
    pub fn discrepancy(&self, query: &BoxRange) -> f64 {
        (self.count_in(query) as f64 - self.expected_in(query)).abs()
    }

    /// The boundary-cell bound `2d·s^((d−1)/d)` of Section 4.
    pub fn boundary_bound(&self) -> f64 {
        let s = self.len() as f64;
        let d = self.dim as f64;
        2.0 * d * s.powf((d - 1.0) / d)
    }

    /// Converts to a weighted [`Sample`] (each point represents one cell
    /// volume of measure).
    pub fn to_sample(&self) -> Sample {
        let cell_volume = (self.cell_side as f64).powi(self.dim as i32);
        Sample::from_entries(
            self.points
                .iter()
                .enumerate()
                .map(|(i, _)| SampleEntry {
                    key: i as u64,
                    weight: cell_volume,
                    adjusted_weight: cell_volume,
                })
                .collect(),
            cell_volume,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sas_structures::order::Interval;

    #[test]
    fn one_point_per_cell() {
        let mut rng = StdRng::seed_from_u64(1);
        let cs = sample_uniform_cube(2, 8, 16, &mut rng);
        assert_eq!(cs.len(), 64);
        // Each point lies inside its cell.
        for (i, p) in cs.points.iter().enumerate() {
            let cx = (i as u64) % 8;
            let cy = (i as u64) / 8;
            assert!(p.coord(0) >= cx * 16 && p.coord(0) < (cx + 1) * 16);
            assert!(p.coord(1) >= cy * 16 && p.coord(1) < (cy + 1) * 16);
        }
    }

    #[test]
    fn box_discrepancy_within_boundary_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let cs = sample_uniform_cube(2, 16, 8, &mut rng);
        // s = 256, bound = 2·2·256^(1/2) = 64; observed discrepancy on any
        // box must be far below the cell-count bound and concentrated near
        // sqrt(boundary cells) ≈ 8.
        let bound = cs.boundary_bound();
        assert_eq!(bound, 64.0);
        for trial in 0..100u64 {
            let x0 = (trial * 7) % 100;
            let q = BoxRange::xy(x0, x0 + 37, 5, 99);
            let d = cs.discrepancy(&q);
            assert!(d <= bound, "trial {trial}: discrepancy {d}");
            assert!(
                d <= 20.0,
                "trial {trial}: discrepancy {d} implausibly large"
            );
        }
    }

    #[test]
    fn aligned_boxes_have_zero_discrepancy() {
        // A box that is a union of whole cells is counted exactly.
        let mut rng = StdRng::seed_from_u64(3);
        let cs = sample_uniform_cube(2, 8, 10, &mut rng);
        let q = BoxRange::xy(10, 49, 20, 79); // cells [1,4] x [2,7] exactly
        assert_eq!(cs.discrepancy(&q), 0.0);
        assert_eq!(cs.count_in(&q), 4 * 6);
    }

    #[test]
    fn three_dimensional_cube() {
        let mut rng = StdRng::seed_from_u64(4);
        let cs = sample_uniform_cube(3, 4, 4, &mut rng);
        assert_eq!(cs.len(), 64);
        let q = BoxRange::new(vec![
            Interval::new(0, 7),
            Interval::new(0, 15),
            Interval::new(3, 12),
        ]);
        let d = cs.discrepancy(&q);
        // bound = 2·3·64^(2/3) = 96 cells; actual must be modest.
        assert!(d < 16.0, "3-D discrepancy {d}");
    }

    #[test]
    fn full_cube_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        let cs = sample_uniform_cube(2, 8, 8, &mut rng);
        let q = BoxRange::xy(0, 63, 0, 63);
        assert_eq!(cs.count_in(&q), 64);
        assert_eq!(cs.discrepancy(&q), 0.0);
    }

    #[test]
    fn to_sample_total() {
        let mut rng = StdRng::seed_from_u64(6);
        let cs = sample_uniform_cube(2, 4, 4, &mut rng);
        let s = cs.to_sample();
        assert_eq!(s.len(), 16);
        // Total measure = 16 cells · 16 volume = 256 = (4·4)².
        assert!((s.total_estimate() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_marginals() {
        // Each point is uniform within its cell.
        let mut counts = [0usize; 4];
        for seed in 0..4000 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cs = sample_uniform_cube(1, 1, 4, &mut rng);
            counts[cs.points[0].coord(0) as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 4000.0;
            assert!((f - 0.25).abs() < 0.05, "marginal {f}");
        }
    }
}
