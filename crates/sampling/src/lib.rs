//! # sas-sampling — structure-aware VarOpt samplers
//!
//! The paper's contribution: VarOpt samples whose pair-aggregation order is
//! chosen to respect the structure of the key domain, driving per-range
//! discrepancy from the structure-oblivious `O(√p(R))` down to:
//!
//! | structure | ranges | max discrepancy | module |
//! |---|---|---|---|
//! | disjoint ranges | the partition classes | Δ < 1 | [`disjoint`] |
//! | hierarchy | leaf sets under nodes | Δ < 1 | [`hierarchy`] |
//! | order | all intervals | Δ < 2 (optimal) | [`order`] |
//! | d-dim product | axis-parallel boxes | O(d·s^((d−1)/(2d))) | [`product`] |
//!
//! The [`sharded`] module scales these samplers across threads: the input is
//! split by key range or round-robin, each shard is summarized
//! independently, and the per-shard samples are merged bottom-up with a
//! structure-aware threshold merge (see `sas_core::Mergeable`).
//!
//! Each main-memory sampler has a two-pass I/O-efficient counterpart in
//! [`two_pass`] (the paper's Section 5) that uses `O(s′)` memory independent
//! of the data size: pass 1 computes the IPPS threshold (Algorithm 4) and a
//! structure-oblivious guide sample `S′`; pass 2 aggregates keys within the
//! cells of a partition derived from `S′` (`IO-AGGREGATE`, Algorithm 3).
//!
//! All samplers return a [`sas_core::Sample`] carrying Horvitz–Thompson
//! adjusted weights, so every estimator and tail bound from `sas-core`
//! applies unchanged.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod disjoint;
pub mod hierarchy;
pub mod multirange;
pub mod order;
pub mod product;
pub mod sharded;
pub mod streaming;
pub mod two_pass;
pub mod uniform_cube;

use sas_core::{ipps, KeyId, WeightedKey};

/// The IPPS decomposition of a data set for target sample size `s`:
/// keys certain to be included (`p = 1`), and "active" keys with
/// `p ∈ (0, 1)` that the aggregation process will resolve.
#[derive(Debug, Clone)]
pub struct IppsSetup {
    /// The threshold τ_s.
    pub tau: f64,
    /// Keys with `wᵢ ≥ τ_s` — always in the sample, estimated exactly.
    pub certain: Vec<WeightedKey>,
    /// Keys with `0 < pᵢ < 1`, paired with their probability.
    pub active: Vec<(WeightedKey, f64)>,
}

impl IppsSetup {
    /// Computes the decomposition with the exact threshold for size `s`.
    ///
    /// If `s ≥ #positive-weight keys`, every key is certain and τ = 0.
    pub fn compute(data: &[WeightedKey], s: usize) -> Self {
        let tau = ipps::threshold_for_keys(data, s as f64);
        let mut certain = Vec::new();
        let mut active = Vec::new();
        for &wk in data {
            if wk.weight <= 0.0 {
                continue;
            }
            if tau <= 0.0 || wk.weight >= tau {
                certain.push(wk);
            } else {
                active.push((wk, wk.weight / tau));
            }
        }
        Self {
            tau,
            certain,
            active,
        }
    }

    /// Total probability mass of the active keys (≈ `s − certain.len()`,
    /// integral for integer `s`).
    pub fn active_mass(&self) -> f64 {
        self.active.iter().map(|(_, p)| p).sum()
    }

    /// Inclusion probability of `key` under this setup (0 when absent).
    pub fn probability_of(&self, key: KeyId) -> f64 {
        if self.certain.iter().any(|wk| wk.key == key) {
            return 1.0;
        }
        self.active
            .iter()
            .find(|(wk, _)| wk.key == key)
            .map_or(0.0, |(_, p)| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_splits_certain_and_active() {
        let data = vec![
            WeightedKey::new(1, 100.0),
            WeightedKey::new(2, 1.0),
            WeightedKey::new(3, 1.0),
            WeightedKey::new(4, 0.0),
        ];
        let setup = IppsSetup::compute(&data, 2);
        assert_eq!(setup.certain.len(), 1);
        assert_eq!(setup.certain[0].key, 1);
        assert_eq!(setup.active.len(), 2);
        assert!((setup.active_mass() - 1.0).abs() < 1e-9);
        assert_eq!(setup.probability_of(1), 1.0);
        assert!((setup.probability_of(2) - 0.5).abs() < 1e-9);
        assert_eq!(setup.probability_of(4), 0.0);
    }

    #[test]
    fn setup_all_certain_when_s_large() {
        let data = vec![WeightedKey::new(1, 1.0), WeightedKey::new(2, 2.0)];
        let setup = IppsSetup::compute(&data, 5);
        assert_eq!(setup.certain.len(), 2);
        assert!(setup.active.is_empty());
        assert_eq!(setup.tau, 0.0);
    }

    #[test]
    fn active_mass_is_integral_for_integer_s() {
        let data: Vec<WeightedKey> = (0..50)
            .map(|k| WeightedKey::new(k, 1.0 + (k % 9) as f64))
            .collect();
        for s in [3, 7, 20] {
            let setup = IppsSetup::compute(&data, s);
            let mass = setup.active_mass() + setup.certain.len() as f64;
            assert!((mass - s as f64).abs() < 1e-6, "s={s}: total mass {mass}");
        }
    }
}
