//! Single-pass structure-aware sampling (the direction of the paper's
//! concluding remarks).
//!
//! Over a stream, the VarOpt_s distribution is *unique* — hence structure
//! oblivious — so single-pass structure awareness requires relaxing strict
//! VarOpt (the paper's follow-up [Cohen–Cormode–Duffield, SIGMETRICS 2011]
//! develops this fully). This module provides an honest, simple member of
//! that relaxed family:
//!
//! **Cell-stratified streaming VarOpt**: fix a partition of the key domain
//! into `C` cells (e.g. dyadic cells of an order, or subtrees of a
//! hierarchy) and run an independent streaming VarOpt reservoir per cell
//! with budget `s/C`.
//!
//! Properties:
//! * one pass, `O(s)` memory, fixed total size ≈ `s`;
//! * every estimate is **unbiased** (each cell is a valid VarOpt sample of
//!   its substream with its own threshold, and HT estimates add);
//! * cell-aligned ranges are estimated from dedicated fixed-size
//!   per-cell samples, so their error does not suffer from cross-cell
//!   placement noise — the structure-aware effect;
//! * it is *not* globally variance-optimal: cells with heavy mass get the
//!   same budget as light ones unless budgets are tuned, which is exactly
//!   the flexibility strict VarOpt forbids in one pass.

use rand::Rng;

use sas_core::estimate::Sample;
use sas_core::varopt::VarOptSampler;
use sas_core::KeyId;

/// Single-pass cell-stratified sampler.
///
/// `C` is the cell identifier type (anything hashable).
#[derive(Debug)]
pub struct CellStratifiedSampler<C: std::hash::Hash + Eq + Clone> {
    per_cell_budget: usize,
    cells: std::collections::HashMap<C, VarOptSampler>,
    count: usize,
}

impl<C: std::hash::Hash + Eq + Clone> CellStratifiedSampler<C> {
    /// Creates a sampler with the given per-cell reservoir budget.
    ///
    /// Total sample size is `per_cell_budget × #nonempty-cells` (choose the
    /// budget as `s / expected_cells`).
    ///
    /// # Panics
    /// Panics if `per_cell_budget == 0`.
    pub fn new(per_cell_budget: usize) -> Self {
        assert!(per_cell_budget > 0, "budget must be positive");
        Self {
            per_cell_budget,
            cells: std::collections::HashMap::new(),
            count: 0,
        }
    }

    /// Creates a sampler by dividing a *total* budget `s` over an expected
    /// number of cells, clamping the per-cell budget to at least 1.
    ///
    /// This is the safe way to derive the per-cell budget: with more cells
    /// than budget (`C > s`) the naive `s / C` is 0, which [`Self::new`]
    /// rejects. The clamp keeps every non-empty cell represented (each cell
    /// is still a valid VarOpt sample of its substream, so estimates stay
    /// unbiased); the realized total size is then `#cells`, above `s` — the
    /// price of stratifying finer than the budget.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn with_total_budget(s: usize, expected_cells: usize) -> Self {
        assert!(s > 0, "total budget must be positive");
        Self::new((s / expected_cells.max(1)).max(1))
    }

    /// The per-cell reservoir budget.
    pub fn per_cell_budget(&self) -> usize {
        self.per_cell_budget
    }

    /// Processes one item assigned to `cell`.
    pub fn push<R: Rng + ?Sized>(&mut self, cell: C, key: KeyId, weight: f64, rng: &mut R) {
        self.count += 1;
        let budget = self.per_cell_budget;
        self.cells
            .entry(cell)
            .or_insert_with(|| VarOptSampler::new(budget))
            .push(key, weight, rng);
    }

    /// Items processed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Finalizes into one merged [`Sample`]. Each entry's adjusted weight
    /// comes from its own cell's threshold, so estimates remain unbiased
    /// for any subset.
    pub fn finish(self) -> Sample {
        let mut merged = Sample::default();
        for (_, sampler) in self.cells {
            merged.merge(sampler.finish());
        }
        merged
    }

    /// Finalizes into per-cell samples (for per-cell diagnostics).
    pub fn finish_per_cell(self) -> Vec<(C, Sample)> {
        self.cells
            .into_iter()
            .map(|(c, s)| (c, s.finish()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sas_core::WeightedKey;

    fn stream(n: u64, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..5.0)))
            .collect()
    }

    #[test]
    fn single_pass_fixed_size() {
        let data = stream(5000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = CellStratifiedSampler::new(25);
        for wk in &data {
            s.push(wk.key / 625, wk.key, wk.weight, &mut rng); // 8 cells
        }
        assert_eq!(s.cell_count(), 8);
        let sample = s.finish();
        assert_eq!(sample.len(), 8 * 25);
    }

    #[test]
    fn estimates_unbiased() {
        let data = stream(2000, 3);
        let truth: f64 = data
            .iter()
            .filter(|wk| wk.key < 700)
            .map(|wk| wk.weight)
            .sum();
        let runs = 1500;
        let mut acc = 0.0;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..runs {
            let mut s = CellStratifiedSampler::new(20);
            for wk in &data {
                s.push(wk.key / 250, wk.key, wk.weight, &mut rng);
            }
            acc += s.finish().subset_estimate(|k| k < 700);
        }
        let mean = acc / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.03,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn cell_aligned_ranges_beat_global_varopt() {
        // Queries aligned with cells: stratification gives each cell a
        // fixed-size sample, eliminating cross-cell variance.
        let data = stream(4000, 5);
        let cells = 16u64;
        let cell_width = 250u64;
        let runs = 300;
        let mut err_strat = 0.0;
        let mut err_global = 0.0;
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..runs {
            let mut strat = CellStratifiedSampler::new(10); // total 160
            for wk in &data {
                strat.push(wk.key / cell_width, wk.key, wk.weight, &mut rng);
            }
            let strat = strat.finish();
            let global = VarOptSampler::sample_slice(160, &data, &mut rng);
            for c in 0..cells {
                let (lo, hi) = (c * cell_width, (c + 1) * cell_width - 1);
                let truth: f64 = data
                    .iter()
                    .filter(|wk| wk.key >= lo && wk.key <= hi)
                    .map(|wk| wk.weight)
                    .sum();
                err_strat += (strat.subset_estimate(|k| k >= lo && k <= hi) - truth).abs();
                err_global += (global.subset_estimate(|k| k >= lo && k <= hi) - truth).abs();
            }
        }
        assert!(
            err_strat < err_global,
            "stratified {err_strat} not below global {err_global}"
        );
    }

    #[test]
    fn heavy_keys_kept_within_their_cell() {
        let mut data = stream(1000, 7);
        data[137] = WeightedKey::new(137, 1e6);
        let mut rng = StdRng::seed_from_u64(8);
        let mut s = CellStratifiedSampler::new(10);
        for wk in &data {
            s.push(wk.key / 100, wk.key, wk.weight, &mut rng);
        }
        let sample = s.finish();
        assert!(sample.contains(137));
        let e = sample.iter().find(|e| e.key == 137).unwrap();
        assert_eq!(e.adjusted_weight, 1e6);
    }

    #[test]
    fn total_budget_clamps_to_one_when_cells_exceed_budget() {
        // C > s: naive per-cell budget s/C = 0 must clamp to 1, not panic.
        let s = CellStratifiedSampler::<u64>::with_total_budget(8, 32);
        assert_eq!(s.per_cell_budget(), 1);
        // And the sampler works: every non-empty cell keeps one key.
        let data = stream(640, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let mut s = CellStratifiedSampler::with_total_budget(8, 32);
        for wk in &data {
            s.push(wk.key / 20, wk.key, wk.weight, &mut rng); // 32 cells
        }
        assert_eq!(s.cell_count(), 32);
        let sample = s.finish();
        assert_eq!(sample.len(), 32);
    }

    #[test]
    fn clamped_budget_estimates_stay_unbiased() {
        // The C > s regime must not bias estimates: each cell remains a
        // valid VarOpt sample with its own threshold.
        let data = stream(300, 23);
        let truth: f64 = data.iter().map(|wk| wk.weight).sum();
        let runs = 1200;
        let mut acc = 0.0;
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..runs {
            let mut s = CellStratifiedSampler::with_total_budget(5, 30);
            for wk in &data {
                s.push(wk.key / 10, wk.key, wk.weight, &mut rng); // 30 cells
            }
            acc += s.finish().total_estimate();
        }
        let mean = acc / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let s = CellStratifiedSampler::<u64>::new(4);
        assert_eq!(s.count(), 0);
        assert_eq!(s.cell_count(), 0);
        let sample = s.finish();
        assert!(sample.is_empty());
        assert_eq!(sample.total_estimate(), 0.0);
        let s2 = CellStratifiedSampler::<u64>::with_total_budget(10, 4);
        assert!(s2.finish_per_cell().is_empty());
    }

    #[test]
    fn budget_at_least_stream_keeps_everything_exactly() {
        // s ≥ n: no cell overflows, all weights exact, zero-variance total.
        let data = stream(40, 25);
        let truth: f64 = data.iter().map(|wk| wk.weight).sum();
        let mut rng = StdRng::seed_from_u64(26);
        let mut s = CellStratifiedSampler::new(20);
        for wk in &data {
            s.push(wk.key / 10, wk.key, wk.weight, &mut rng); // 4 cells of 10
        }
        let sample = s.finish();
        assert_eq!(sample.len(), 40);
        assert!((sample.total_estimate() - truth).abs() < 1e-9);
        for e in sample.iter() {
            assert_eq!(e.weight, e.adjusted_weight, "key {} inflated", e.key);
        }
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_per_cell_budget_still_panics() {
        let _ = CellStratifiedSampler::<u64>::new(0);
    }

    #[test]
    #[should_panic(expected = "total budget must be positive")]
    fn zero_total_budget_panics() {
        let _ = CellStratifiedSampler::<u64>::with_total_budget(0, 4);
    }

    #[test]
    fn per_cell_samples_expose_thresholds() {
        let data = stream(800, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut s = CellStratifiedSampler::new(15);
        for wk in &data {
            s.push(wk.key / 200, wk.key, wk.weight, &mut rng);
        }
        let per_cell = s.finish_per_cell();
        assert_eq!(per_cell.len(), 4);
        for (c, smp) in per_cell {
            assert_eq!(smp.len(), 15, "cell {c}");
            assert!(smp.tau() > 0.0);
        }
    }
}
