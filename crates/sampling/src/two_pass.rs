//! I/O-efficient two-pass structure-aware sampling (Section 5 of the paper,
//! with `IO-AGGREGATE` as **Algorithm 3**).
//!
//! Both passes are read-only sequential scans; memory is `O(s′)` where
//! `s′ = guide_factor · s` (the paper's experiments use a factor of 5),
//! independent of the data size:
//!
//! * **Pass 1** — compute the IPPS threshold `τ_s` with Algorithm 4
//!   ([`sas_core::ipps::StreamingThreshold`]) and a structure-oblivious
//!   VarOpt guide sample `S′` of size `s′`.
//! * **Partition** — build a partition `L` of the key domain from `S′`:
//!   kd-tree leaf cells for product structures, sorted-gap cells for orders.
//!   With `s′ = Ω(s log s)`, every cell has probability mass ≤ 1 w.h.p.
//! * **Pass 2** — `IO-AGGREGATE`: keep at most one *active* key per cell;
//!   each arriving light key is pair-aggregated with its cell's active key.
//!   Keys reaching `p = 1` enter the sample immediately.
//! * **Finish** — aggregate the ≤ |L| remaining active keys following the
//!   partition's structure (kd-hierarchy bottom-up, or left-to-right for
//!   orders).
//!
//! The resulting sample is VarOpt with range discrepancy within an additive
//! constant of the main-memory algorithms, w.h.p.

use std::collections::HashMap;

use rand::Rng;

use sas_core::aggregate::pair_aggregate;
use sas_core::estimate::{Sample, SampleEntry};
use sas_core::ipps::StreamingThreshold;
use sas_core::varopt::VarOptSampler;
use sas_core::{KeyId, WeightedKey};
use sas_structures::kdtree::{KdHierarchy, KdItem, KdNodeId};

use crate::product::SpatialData;

const ROOT_TOL: f64 = 1e-6;

/// An active (partially aggregated) key in pass 2: its identity, current
/// probability, and original weight.
#[derive(Debug, Clone, Copy)]
struct Active {
    key: KeyId,
    p: f64,
    weight: f64,
}

/// Per-cell actives left when the stream ends, tagged by their cell.
type CellActives<C> = Vec<(C, Active)>;

/// Keys whose inclusion resolved to certainty, with exact weights.
type IncludedKeys = Vec<(KeyId, f64)>;

/// Shared pass-2 machinery (`IO-AGGREGATE`): one active slot per cell.
#[derive(Debug)]
struct IoAggregator<C: std::hash::Hash + Eq + Copy> {
    tau: f64,
    active: HashMap<C, Active>,
    included: Vec<(KeyId, f64)>,
}

impl<C: std::hash::Hash + Eq + Copy> IoAggregator<C> {
    fn new(tau: f64) -> Self {
        Self {
            tau,
            active: HashMap::new(),
            included: Vec::new(),
        }
    }

    /// Processes one key assigned to `cell` (the paper's Algorithm 3).
    fn push<R: Rng + ?Sized>(&mut self, cell: C, key: KeyId, weight: f64, rng: &mut R) {
        if weight <= 0.0 {
            return;
        }
        let p = if self.tau <= 0.0 {
            1.0
        } else {
            (weight / self.tau).min(1.0)
        };
        if p >= 1.0 {
            self.included.push((key, weight));
            return;
        }
        let incoming = Active { key, p, weight };
        match self.active.remove(&cell) {
            None => {
                self.active.insert(cell, incoming);
            }
            Some(a) => {
                let (pa, pi, _) = pair_aggregate(a.p, incoming.p, rng);
                for (cand, np) in [(a, pa), (incoming, pi)] {
                    if np >= 1.0 - ROOT_TOL {
                        self.included.push((cand.key, cand.weight));
                    } else if np > ROOT_TOL {
                        self.active.insert(
                            cell,
                            Active {
                                key: cand.key,
                                p: np,
                                weight: cand.weight,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Drains the per-cell actives for the final structure-following
    /// aggregation.
    fn into_parts(self) -> (CellActives<C>, IncludedKeys) {
        (self.active.into_iter().collect(), self.included)
    }
}

/// Aggregates a list of actives in the given order (left-to-right with one
/// leftover), finalizing the last survivor. Appends included keys.
fn finish_ordered<R: Rng + ?Sized>(
    mut actives: Vec<Active>,
    included: &mut Vec<(KeyId, f64)>,
    rng: &mut R,
) {
    let mut leftover: Option<Active> = None;
    for a in actives.drain(..) {
        leftover = match leftover {
            None => Some(a),
            Some(cur) => {
                let (pc, pa, _) = pair_aggregate(cur.p, a.p, rng);
                let mut surv = None;
                for (cand, np) in [(cur, pc), (a, pa)] {
                    if np >= 1.0 - ROOT_TOL {
                        included.push((cand.key, cand.weight));
                    } else if np > ROOT_TOL {
                        surv = Some(Active {
                            key: cand.key,
                            p: np,
                            weight: cand.weight,
                        });
                    }
                }
                surv
            }
        };
    }
    if let Some(last) = leftover {
        let keep = if last.p >= 1.0 - ROOT_TOL {
            true
        } else if last.p <= ROOT_TOL {
            false
        } else {
            // Non-integral total mass: randomized rounding.
            rng.gen::<f64>() < last.p
        };
        if keep {
            included.push((last.key, last.weight));
        }
    }
}

fn build_sample(included: Vec<(KeyId, f64)>, tau: f64) -> Sample {
    let entries = included
        .into_iter()
        .map(|(key, weight)| SampleEntry {
            key,
            weight,
            adjusted_weight: if tau > 0.0 { weight.max(tau) } else { weight },
        })
        .collect();
    Sample::from_entries(entries, tau)
}

/// Two-pass structure-aware sampling for **product structures**: the
/// partition is the set of kd-tree leaf cells built over the guide sample.
///
/// `guide_factor` is `s′/s` (the paper's experiments use 5).
pub fn sample_product<R: Rng + ?Sized>(
    data: &SpatialData,
    s: usize,
    guide_factor: usize,
    rng: &mut R,
) -> Sample {
    assert!(
        s > 0 && guide_factor > 0,
        "s and guide_factor must be positive"
    );
    // ---- Pass 1: threshold + guide sample --------------------------------
    let mut st = StreamingThreshold::new(s);
    let mut guide = VarOptSampler::new(s * guide_factor);
    for (i, wk) in data.keys.iter().enumerate() {
        st.push(wk.weight);
        // Use the row index as the guide key so the location is recoverable.
        guide.push(i as u64, wk.weight, rng);
    }
    let tau = st.finish();
    let guide = guide.finish();

    if tau <= 0.0 {
        // Everything fits: include all positive-weight keys exactly.
        let included = data
            .keys
            .iter()
            .filter(|wk| wk.weight > 0.0)
            .map(|wk| (wk.key, wk.weight))
            .collect();
        return build_sample(included, 0.0);
    }

    // ---- Partition: kd-tree over light guide keys ------------------------
    let light_items: Vec<KdItem> = guide
        .iter()
        .filter(|e| e.weight < tau)
        .map(|e| KdItem {
            key: e.key,
            point: data.points[e.key as usize].clone(),
            prob: (e.weight / tau).clamp(1e-12, 1.0),
        })
        .collect();

    if light_items.is_empty() {
        // No light structure to exploit; degenerate to a single cell.
        let mut agg: IoAggregator<u32> = IoAggregator::new(tau);
        for (wk, p) in data.keys.iter().zip(&data.points) {
            let _ = p;
            agg.push(0, wk.key, wk.weight, rng);
        }
        let (actives, mut included) = agg.into_parts();
        finish_ordered(
            actives.into_iter().map(|(_, a)| a).collect(),
            &mut included,
            rng,
        );
        return build_sample(included, tau);
    }

    let tree = KdHierarchy::build(light_items, 0.0);

    // ---- Pass 2: IO-AGGREGATE keyed by kd leaf cell -----------------------
    let mut agg: IoAggregator<KdNodeId> = IoAggregator::new(tau);
    for (wk, point) in data.keys.iter().zip(&data.points) {
        if wk.weight <= 0.0 {
            continue;
        }
        if wk.weight >= tau {
            agg.included.push((wk.key, wk.weight));
            continue;
        }
        let cell = tree.locate(point);
        agg.push(cell, wk.key, wk.weight, rng);
    }
    let (cell_actives, mut included) = agg.into_parts();

    // ---- Finish: aggregate actives bottom-up along the kd hierarchy ------
    let mut up: HashMap<KdNodeId, Active> = HashMap::new();
    for (cell, a) in cell_actives {
        // Leaves hold at most one active each by construction.
        debug_assert!(!up.contains_key(&cell));
        up.insert(cell, a);
    }
    // Children always have larger arena ids than their parent, so a single
    // descending-id sweep is a post-order traversal.
    for n in (0..tree.node_count() as KdNodeId).rev() {
        let Some((l, r)) = tree.children(n) else {
            continue;
        };
        let merged = match (up.remove(&l), up.remove(&r)) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => {
                let (pa, pb, _) = pair_aggregate(a.p, b.p, rng);
                let mut surv = None;
                for (cand, np) in [(a, pa), (b, pb)] {
                    if np >= 1.0 - ROOT_TOL {
                        included.push((cand.key, cand.weight));
                    } else if np > ROOT_TOL {
                        surv = Some(Active {
                            key: cand.key,
                            p: np,
                            weight: cand.weight,
                        });
                    }
                }
                surv
            }
        };
        if let Some(m) = merged {
            up.insert(n, m);
        }
    }
    // Root leftover (plus any actives stranded in single-leaf corner cases).
    finish_ordered(up.into_values().collect(), &mut included, rng);
    build_sample(included, tau)
}

/// Two-pass structure-aware sampling for **order structures**: the partition
/// cells are the gaps between consecutive guide keys in sorted order.
pub fn sample_order<R: Rng + ?Sized>(
    data: &[WeightedKey],
    s: usize,
    guide_factor: usize,
    mut position: impl FnMut(KeyId) -> u64,
    rng: &mut R,
) -> Sample {
    assert!(
        s > 0 && guide_factor > 0,
        "s and guide_factor must be positive"
    );
    // ---- Pass 1 ------------------------------------------------------------
    let mut st = StreamingThreshold::new(s);
    let mut guide = VarOptSampler::new(s * guide_factor);
    for wk in data {
        st.push(wk.weight);
        guide.push(wk.key, wk.weight, rng);
    }
    let tau = st.finish();
    let guide = guide.finish();
    if tau <= 0.0 {
        let included = data
            .iter()
            .filter(|wk| wk.weight > 0.0)
            .map(|wk| (wk.key, wk.weight))
            .collect();
        return build_sample(included, 0.0);
    }

    // ---- Partition: sorted light guide positions ---------------------------
    let mut boundaries: Vec<u64> = guide
        .iter()
        .filter(|e| e.weight < tau)
        .map(|e| position(e.key))
        .collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    // Cell of x = number of boundaries strictly below x (so each boundary
    // key starts a new cell to its right, matching the (i_j, i_{j+1}] cells).
    let cell_of = |x: u64, bs: &[u64]| -> u64 { bs.partition_point(|&b| b < x) as u64 };

    // ---- Pass 2 ------------------------------------------------------------
    let mut agg: IoAggregator<u64> = IoAggregator::new(tau);
    for wk in data {
        if wk.weight <= 0.0 {
            continue;
        }
        if wk.weight >= tau {
            agg.included.push((wk.key, wk.weight));
            continue;
        }
        let cell = cell_of(position(wk.key), &boundaries);
        agg.push(cell, wk.key, wk.weight, rng);
    }
    let (cell_actives, mut included) = agg.into_parts();

    // ---- Finish: aggregate actives left-to-right along the order ----------
    let mut actives: Vec<(u64, Active)> = cell_actives;
    actives.sort_by_key(|(cell, _)| *cell);
    finish_ordered(
        actives.into_iter().map(|(_, a)| a).collect(),
        &mut included,
        rng,
    );
    build_sample(included, tau)
}

/// Two-pass structure-aware sampling for a **hierarchy**, via its
/// linearization (every hierarchy node is a contiguous interval of leaf
/// positions, so order cells respect hierarchy ranges). Achieves Δ < 2
/// w.h.p.; the paper's lowest-selected-ancestor variant can achieve Δ < 1
/// for shallow hierarchies.
pub fn sample_hierarchy<R: Rng + ?Sized>(
    data: &[WeightedKey],
    hierarchy: &sas_structures::hierarchy::Hierarchy,
    s: usize,
    guide_factor: usize,
    rng: &mut R,
) -> Sample {
    let pos: HashMap<KeyId, u64> = hierarchy.linearize().map(|(p, k)| (k, p)).collect();
    sample_order(data, s, guide_factor, |k| pos[&k], rng)
}

/// Two-pass hierarchy sampling with the **lowest-selected-ancestor**
/// partition (the paper's Section 5 alternative): select every ancestor of
/// every guide key; each key's cell is its lowest selected ancestor. This
/// achieves Δ < 1 w.h.p. (vs Δ < 2 for the linearization variant) at the
/// cost of memory proportional to the number of selected ancestors — best
/// for shallow hierarchies, exactly as the paper notes.
pub fn sample_hierarchy_ancestors<R: Rng + ?Sized>(
    data: &[WeightedKey],
    hierarchy: &sas_structures::hierarchy::Hierarchy,
    s: usize,
    guide_factor: usize,
    rng: &mut R,
) -> Sample {
    use sas_structures::hierarchy::NodeId;
    assert!(
        s > 0 && guide_factor > 0,
        "s and guide_factor must be positive"
    );
    // Leaf lookup by key.
    let leaf_of: HashMap<KeyId, NodeId> = (0..hierarchy.node_count() as NodeId)
        .filter_map(|n| hierarchy.key(n).map(|k| (k, n)))
        .collect();

    // ---- Pass 1 ------------------------------------------------------------
    let mut st = StreamingThreshold::new(s);
    let mut guide = VarOptSampler::new(s * guide_factor);
    for wk in data {
        st.push(wk.weight);
        guide.push(wk.key, wk.weight, rng);
    }
    let tau = st.finish();
    let guide = guide.finish();
    if tau <= 0.0 {
        let included = data
            .iter()
            .filter(|wk| wk.weight > 0.0)
            .map(|wk| (wk.key, wk.weight))
            .collect();
        return build_sample(included, 0.0);
    }

    // ---- Partition: all ancestors of light guide keys are "selected" ------
    let mut selected = vec![false; hierarchy.node_count()];
    selected[hierarchy.root() as usize] = true;
    for e in guide.iter().filter(|e| e.weight < tau) {
        if let Some(&leaf) = leaf_of.get(&e.key) {
            selected[leaf as usize] = true;
            for anc in hierarchy.ancestors(leaf) {
                selected[anc as usize] = true;
            }
        }
    }
    // Cell of a key = its lowest selected (self or proper) ancestor.
    let cell_of = |leaf: NodeId| -> NodeId {
        if selected[leaf as usize] {
            return leaf;
        }
        hierarchy
            .ancestors(leaf)
            .find(|&a| selected[a as usize])
            .unwrap_or_else(|| hierarchy.root())
    };

    // ---- Pass 2 ------------------------------------------------------------
    let mut agg: IoAggregator<NodeId> = IoAggregator::new(tau);
    for wk in data {
        if wk.weight <= 0.0 {
            continue;
        }
        if wk.weight >= tau {
            agg.included.push((wk.key, wk.weight));
            continue;
        }
        let leaf = *leaf_of
            .get(&wk.key)
            .unwrap_or_else(|| panic!("key {} not in hierarchy", wk.key));
        agg.push(cell_of(leaf), wk.key, wk.weight, rng);
    }
    let (cell_actives, mut included) = agg.into_parts();

    // ---- Finish: merge actives up the hierarchy (deepest first) ------------
    fn merge_into<R2: Rng + ?Sized>(
        slot: &mut HashMap<sas_structures::hierarchy::NodeId, Active>,
        node: sas_structures::hierarchy::NodeId,
        a: Active,
        included: &mut Vec<(KeyId, f64)>,
        rng: &mut R2,
    ) {
        match slot.remove(&node) {
            None => {
                slot.insert(node, a);
            }
            Some(b) => {
                let (pa, pb, _) = pair_aggregate(a.p, b.p, rng);
                for (cand, np) in [(a, pa), (b, pb)] {
                    if np >= 1.0 - ROOT_TOL {
                        included.push((cand.key, cand.weight));
                    } else if np > ROOT_TOL {
                        slot.insert(
                            node,
                            Active {
                                key: cand.key,
                                p: np,
                                weight: cand.weight,
                            },
                        );
                    }
                }
            }
        }
    }
    let mut up: HashMap<NodeId, Active> = HashMap::new();
    for (node, a) in cell_actives {
        merge_into(&mut up, node, a, &mut included, rng);
    }
    // Nodes sorted by depth descending: children resolve before parents.
    let mut order: Vec<NodeId> = (0..hierarchy.node_count() as NodeId).collect();
    order.sort_by_key(|&n| std::cmp::Reverse(hierarchy.depth(n)));
    for n in order {
        if n == hierarchy.root() {
            continue;
        }
        if let Some(a) = up.remove(&n) {
            let parent = hierarchy.parent(n).expect("non-root has parent");
            merge_into(&mut up, parent, a, &mut included, rng);
        }
    }
    finish_ordered(up.into_values().collect(), &mut included, rng);
    build_sample(included, tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sas_structures::product::BoxRange;

    fn random_spatial(n: usize, side: u64, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.1..5.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    #[test]
    fn product_two_pass_size_near_s() {
        let data = random_spatial(2000, 128, 1);
        for s in [10, 50, 200] {
            let mut rng = StdRng::seed_from_u64(s as u64);
            let smp = sample_product(&data, s, 5, &mut rng);
            // Exact τ_s makes total mass integral: size is exactly s.
            assert_eq!(smp.len(), s, "s={s}");
        }
    }

    #[test]
    fn product_two_pass_unbiased() {
        let data = random_spatial(800, 64, 2);
        let query = BoxRange::xy(10, 40, 10, 40);
        let truth = data.box_weight(&query);
        let runs = 3000;
        let mut sum = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..runs {
            let smp = sample_product(&data, 40, 5, &mut rng);
            sum += crate::product::estimate_box(&smp, &data, &query);
        }
        let mean = sum / runs as f64;
        assert!((mean - truth).abs() / truth < 0.05, "{mean} vs {truth}");
    }

    #[test]
    fn product_small_s_bigger_than_data() {
        let data = random_spatial(5, 16, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let smp = sample_product(&data, 50, 5, &mut rng);
        assert_eq!(smp.len(), 5);
        let truth = data.total_weight();
        assert!((smp.total_estimate() - truth).abs() < 1e-9);
    }

    #[test]
    fn order_two_pass_size_and_prefix_discrepancy() {
        let mut rng = StdRng::seed_from_u64(6);
        let data: Vec<WeightedKey> = (0..3000)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..3.0)))
            .collect();
        let s = 60;
        let smp = sample_order(&data, s, 5, |k| k, &mut rng);
        assert_eq!(smp.len(), s);
        // Prefix discrepancy should be small (≈ Δ < 2 w.h.p.).
        let d = crate::order::interval_discrepancy(
            &smp,
            &data,
            s,
            sas_structures::order::Interval::prefix(1500),
            |k| k,
        );
        assert!(d < 3.0, "prefix discrepancy {d}");
    }

    #[test]
    fn order_two_pass_interval_discrepancy_battery() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<WeightedKey> = (0..2000)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..3.0)))
            .collect();
        let s = 50;
        let smp = sample_order(&data, s, 8, |k| k, &mut rng);
        let mut worst: f64 = 0.0;
        for lo in (0..2000).step_by(97) {
            for hi in ((lo + 50)..2000).step_by(131) {
                let d = crate::order::interval_discrepancy(
                    &smp,
                    &data,
                    s,
                    sas_structures::order::Interval::new(lo, hi),
                    |k| k,
                );
                worst = worst.max(d);
            }
        }
        // w.h.p. Δ < 2; allow modest slack for the probabilistic guarantee.
        assert!(worst < 4.0, "worst interval discrepancy {worst}");
    }

    #[test]
    fn hierarchy_two_pass_runs() {
        use sas_structures::hierarchy::figure1_hierarchy;
        let h = figure1_hierarchy();
        let w = [3.0, 6.0, 4.0, 7.0, 1.0, 8.0, 4.0, 2.0, 3.0, 2.0];
        let data: Vec<WeightedKey> = w
            .iter()
            .enumerate()
            .map(|(i, &wt)| WeightedKey::new(i as u64 + 1, wt))
            .collect();
        let mut rng = StdRng::seed_from_u64(8);
        let smp = sample_hierarchy(&data, &h, 4, 2, &mut rng);
        assert_eq!(smp.len(), 4);
    }

    #[test]
    fn hierarchy_ancestors_variant_size_and_discrepancy() {
        use rand::Rng as _;
        use sas_structures::hierarchy::HierarchyBuilder;
        // Shallow random hierarchy with many leaves (the regime the paper
        // recommends this variant for).
        let mut rng = StdRng::seed_from_u64(20);
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        let mut key = 0u64;
        for _ in 0..12 {
            let g = b.add_internal(root);
            for _ in 0..rng.gen_range(5..30) {
                b.add_leaf(g, key);
                key += 1;
            }
        }
        let h = b.build();
        let data: Vec<WeightedKey> = (0..key)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..5.0)))
            .collect();
        let s = 30;
        let smp = sample_hierarchy_ancestors(&data, &h, s, 5, &mut rng);
        assert_eq!(smp.len(), s);
        // Per-node discrepancy small (Δ < 1 w.h.p.; allow slack of 2).
        let in_sample: std::collections::HashSet<u64> = smp.keys().collect();
        let setup = crate::IppsSetup::compute(&data, s);
        for n in h.internal_nodes() {
            let mut expected = 0.0;
            let mut actual = 0usize;
            for k in h.keys_under(n) {
                expected += setup.probability_of(k);
                if in_sample.contains(&k) {
                    actual += 1;
                }
            }
            let d = (actual as f64 - expected).abs();
            assert!(d < 2.0, "node {n}: discrepancy {d}");
        }
    }

    #[test]
    fn hierarchy_ancestors_unbiased() {
        use sas_structures::hierarchy::figure1_hierarchy;
        let h = figure1_hierarchy();
        let w = [3.0, 6.0, 4.0, 7.0, 1.0, 8.0, 4.0, 2.0, 3.0, 2.0];
        let data: Vec<WeightedKey> = w
            .iter()
            .enumerate()
            .map(|(i, &wt)| WeightedKey::new(i as u64 + 1, wt))
            .collect();
        let truth = 20.0; // keys 1..=4
        let runs = 8000;
        let mut sum = 0.0;
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..runs {
            let smp = sample_hierarchy_ancestors(&data, &h, 4, 3, &mut rng);
            sum += smp.subset_estimate(|k| k <= 4);
        }
        let mean = sum / runs as f64;
        assert!((mean - truth).abs() / truth < 0.05, "{mean} vs {truth}");
    }

    #[test]
    fn heavy_keys_included_exactly_once() {
        let mut data = random_spatial(500, 64, 9);
        data.keys[100] = WeightedKey::new(100, 1e5);
        let mut rng = StdRng::seed_from_u64(10);
        let smp = sample_product(&data, 20, 5, &mut rng);
        let count = smp.iter().filter(|e| e.key == 100).count();
        assert_eq!(count, 1);
        let e = smp.iter().find(|e| e.key == 100).unwrap();
        assert_eq!(e.adjusted_weight, 1e5); // heavy keys estimated exactly
    }

    #[test]
    fn two_pass_matches_main_memory_accuracy_roughly() {
        // Two-pass error should be in the same ballpark as main-memory
        // structure-aware error on box queries (within 2x over a battery).
        let data = random_spatial(1500, 64, 11);
        let queries: Vec<BoxRange> = {
            let mut qrng = StdRng::seed_from_u64(12);
            (0..20)
                .map(|_| {
                    let x0 = qrng.gen_range(0..44);
                    let y0 = qrng.gen_range(0..44);
                    BoxRange::xy(x0, x0 + 19, y0, y0 + 19)
                })
                .collect()
        };
        let s = 80;
        let runs = 40;
        let mut err_two = 0.0;
        let mut err_main = 0.0;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let two = sample_product(&data, s, 5, &mut rng);
            let main = crate::product::sample(&data, s, &mut rng);
            for q in &queries {
                let truth = data.box_weight(q);
                err_two += (crate::product::estimate_box(&two, &data, q) - truth).abs();
                err_main += (crate::product::estimate_box(&main, &data, q) - truth).abs();
            }
        }
        assert!(
            err_two < 2.0 * err_main,
            "two-pass error {err_two} vs main-memory {err_main}"
        );
    }
}
