//! Structure-aware sampling over an order (the paper's **Algorithm 5**,
//! `OSSUMMARIZE`) with interval discrepancy Δ < 2 — optimal for VarOpt by
//! Theorem 1(ii).
//!
//! Keys are processed in sorted order, maintaining a single "leftover"
//! active key from the processed prefix; each new active key is pair
//! aggregated with the leftover. Every prefix therefore holds the floor or
//! ceiling of its expected count, and any interval — a difference of two
//! prefixes — deviates by less than 2.

use rand::Rng;

use sas_core::aggregate::{AggregationState, EntryState};
use sas_core::{KeyId, Sample, WeightedKey};
use sas_structures::order::Interval;

use crate::IppsSetup;

const ROOT_TOL: f64 = 1e-6;

/// Draws a structure-aware VarOpt sample of size `s` over keys ordered by
/// `position`: `position(key)` gives the key's coordinate in the linear
/// order (e.g. its value, timestamp, or position index).
pub fn sample_by<R: Rng + ?Sized>(
    data: &[WeightedKey],
    s: usize,
    mut position: impl FnMut(KeyId) -> u64,
    rng: &mut R,
) -> Sample {
    let setup = IppsSetup::compute(data, s);
    let mut order: Vec<usize> = (0..setup.active.len()).collect();
    order.sort_by_key(|&i| position(setup.active[i].0.key));

    let keys: Vec<KeyId> = setup.active.iter().map(|(wk, _)| wk.key).collect();
    let probs: Vec<f64> = setup.active.iter().map(|(_, p)| *p).collect();
    let mut state = AggregationState::new(keys, probs);
    os_summarize(&mut state, &order, rng);

    let mut sample = Sample::from_inclusion(
        data,
        &[],
        state.included_keys().collect::<Vec<_>>(),
        setup.tau,
    );
    sample.merge(Sample::from_inclusion(
        data,
        &[],
        setup.certain.iter().map(|wk| wk.key),
        setup.tau,
    ));
    sample
}

/// Draws a structure-aware sample where keys *are* their order coordinate.
pub fn sample<R: Rng + ?Sized>(data: &[WeightedKey], s: usize, rng: &mut R) -> Sample {
    sample_by(data, s, |k| k, rng)
}

/// The core left-to-right scan (`OSSUMMARIZE`): aggregates active entries of
/// `state` in the order given by `order` (indices into the state), keeping
/// one leftover at a time.
pub fn os_summarize<R: Rng + ?Sized>(state: &mut AggregationState, order: &[usize], rng: &mut R) {
    let mut leftover: Option<usize> = None;
    for &i in order {
        if state.state(i) != EntryState::Active {
            continue;
        }
        match leftover {
            None => leftover = Some(i),
            Some(a) => {
                state.aggregate(a, i, rng);
                leftover = [a, i]
                    .into_iter()
                    .find(|&x| state.state(x) == EntryState::Active);
            }
        }
    }
    if let Some(idx) = leftover {
        if !state.finalize_entry(idx, ROOT_TOL) {
            state.round_entry(idx, rng);
        }
    }
}

/// Discrepancy of `sample` over the interval `iv` of key *coordinates*,
/// under the IPPS probabilities for size `s`.
pub fn interval_discrepancy(
    sample: &Sample,
    data: &[WeightedKey],
    s: usize,
    iv: Interval,
    mut position: impl FnMut(KeyId) -> u64,
) -> f64 {
    let setup = IppsSetup::compute(data, s);
    let mut expected = 0.0;
    for wk in &setup.certain {
        if iv.contains(position(wk.key)) {
            expected += 1.0;
        }
    }
    for (wk, p) in &setup.active {
        if iv.contains(position(wk.key)) {
            expected += p;
        }
    }
    let actual = sample.subset_count(|k| iv.contains(position(k))) as f64;
    (actual - expected).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sas_structures::order::all_intervals;

    fn random_data(n: u64, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..10.0)))
            .collect()
    }

    #[test]
    fn sample_size_exact() {
        let data = random_data(100, 1);
        for s in [1, 5, 20, 99] {
            let mut rng = StdRng::seed_from_u64(s as u64);
            let smp = sample(&data, s, &mut rng);
            assert_eq!(smp.len(), s, "s={s}");
        }
    }

    #[test]
    fn all_intervals_delta_below_two() {
        // Theorem 1(i): Δ ≤ 2 over every interval.
        for seed in 0..20 {
            let data = random_data(40, seed);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let smp = sample(&data, 8, &mut rng);
            for iv in all_intervals(40) {
                let d = interval_discrepancy(&smp, &data, 8, iv, |k| k);
                assert!(d < 2.0 + 1e-6, "seed {seed} interval {iv:?}: Δ = {d}");
            }
        }
    }

    #[test]
    fn prefix_delta_below_one() {
        // Prefixes are estimated optimally (floor/ceil of expectation).
        for seed in 0..20 {
            let data = random_data(60, seed);
            let mut rng = StdRng::seed_from_u64(seed + 500);
            let smp = sample(&data, 10, &mut rng);
            for hi in 0..60 {
                let d = interval_discrepancy(&smp, &data, 10, Interval::prefix(hi), |k| k);
                assert!(d < 1.0 + 1e-6, "seed {seed} prefix {hi}: Δ = {d}");
            }
        }
    }

    #[test]
    fn inclusion_probabilities_are_ipps() {
        let data: Vec<WeightedKey> = (0..20)
            .map(|k| WeightedKey::new(k, 1.0 + (k % 4) as f64))
            .collect();
        let setup = IppsSetup::compute(&data, 5);
        let runs = 40_000;
        let mut hits = [0usize; 20];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..runs {
            let smp = sample(&data, 5, &mut rng);
            for e in smp.iter() {
                hits[e.key as usize] += 1;
            }
        }
        for k in 0..20u64 {
            let p = setup.probability_of(k);
            let freq = hits[k as usize] as f64 / runs as f64;
            assert!((freq - p).abs() < 0.015, "key {k}: freq {freq} vs p {p}");
        }
    }

    #[test]
    fn custom_position_function() {
        // Order keys by reversed coordinate: prefix guarantees then apply to
        // suffixes of the key space.
        let data = random_data(30, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let smp = sample_by(&data, 6, |k| 29 - k, &mut rng);
        assert_eq!(smp.len(), 6);
        for hi in 0..30 {
            let d = interval_discrepancy(&smp, &data, 6, Interval::prefix(hi), |k| 29 - k);
            assert!(d < 1.0 + 1e-6, "reversed prefix {hi}: Δ = {d}");
        }
    }

    #[test]
    fn heavy_keys_always_included() {
        let mut data = random_data(50, 5);
        data[25] = WeightedKey::new(25, 1e6);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let smp = sample(&data, 5, &mut rng);
            assert!(smp.contains(25));
        }
    }

    #[test]
    fn single_key_data() {
        let data = vec![WeightedKey::new(7, 3.0)];
        let mut rng = StdRng::seed_from_u64(6);
        let smp = sample(&data, 1, &mut rng);
        assert_eq!(smp.len(), 1);
        assert!(smp.contains(7));
    }

    #[test]
    fn oblivious_violates_delta_two_sometimes() {
        // Sanity that the guarantee is non-trivial: a structure-oblivious
        // VarOpt sample exceeds Δ = 2 on some interval for some seed.
        use sas_core::varopt::VarOptSampler;
        let data = random_data(200, 8);
        let mut violated = false;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let smp = VarOptSampler::sample_slice(30, &data, &mut rng);
            for iv in all_intervals(200).step_by(37) {
                let d = interval_discrepancy(&smp, &data, 30, iv, |k| k);
                if d >= 2.0 {
                    violated = true;
                    break;
                }
            }
            if violated {
                break;
            }
        }
        assert!(
            violated,
            "oblivious sampling never exceeded Δ=2 (suspicious)"
        );
    }
}
