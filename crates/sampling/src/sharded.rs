//! Sharded parallel summarization: split a stream across worker threads,
//! run a structure-aware sampler per shard, and merge the per-shard samples
//! bottom-up into one budget-`s` summary.
//!
//! This is the "mergeable summaries" regime the VarOpt foundation supports:
//! each shard's sample carries Horvitz–Thompson adjusted weights that are
//! unbiased for the shard's subset sums, so a *threshold merge* — union the
//! entries under their adjusted weights, recompute the IPPS threshold `τ'`
//! for budget `s`, and re-subsample — keeps every estimate unbiased (tower
//! property) while restoring the fixed sample size.
//!
//! Structure awareness survives the merge because the re-subsampling is
//! itself structure-aware: the active entries are pair-aggregated in key
//! order (`OSSUMMARIZE`), so each merge level adds less than 2 to any
//! interval's discrepancy. With `N` shards merged in a binary tree the
//! interval discrepancy of the final sample is `O(log N)` — against `O(√s)`
//! for an oblivious merge — matching the `O(log n)`-flavored error regime
//! the tier-1 suites certify.
//!
//! Two shard topologies are provided:
//!
//! * [`ShardTopology::KeyRange`] — contiguous key ranges (sorted by key,
//!   chunked evenly). Merging adjacent shards keeps actives that compete
//!   with each other close in the order; best interval accuracy.
//! * [`ShardTopology::RoundRobin`] — item `i` goes to shard `i mod N`, the
//!   natural topology when the input arrives as an arbitrary stream and
//!   shard assignment must be oblivious to key values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sas_core::aggregate::{AggregationState, EntryState};
use sas_core::estimate::SampleEntry;
use sas_core::{ipps, KeyId, Sample, WeightedKey};

use crate::order;

/// How input items are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardTopology {
    /// Sort by key and split into contiguous, equal-count key ranges.
    KeyRange,
    /// Item `i` goes to shard `i mod N` (stream-order oblivious split).
    RoundRobin,
}

/// Configuration of a sharded summarization run.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of worker threads / shards (≥ 1).
    pub shards: usize,
    /// Shard assignment policy.
    pub topology: ShardTopology,
    /// Base RNG seed; shard `i` derives an independent stream from it.
    pub seed: u64,
}

impl ShardedConfig {
    /// Key-range topology with the given shard count and seed.
    pub fn key_range(shards: usize, seed: u64) -> Self {
        Self {
            shards,
            topology: ShardTopology::KeyRange,
            seed,
        }
    }

    /// Round-robin topology with the given shard count and seed.
    pub fn round_robin(shards: usize, seed: u64) -> Self {
        Self {
            shards,
            topology: ShardTopology::RoundRobin,
            seed,
        }
    }
}

/// Salt mixed into per-shard and merge RNG seeds so they are unrelated to
/// each other and to any direct use of `cfg.seed` by the caller.
const SHARD_SEED_SALT: u64 = 0x5a5d_1e0f_9bd3_1c71;

fn shard_seed(base: u64, shard: u64) -> u64 {
    base ^ SHARD_SEED_SALT.wrapping_mul(shard.wrapping_add(1))
}

/// Seed for the bottom-up merge phase's RNG stream. A fixed rotation of the
/// salt (not `shard_seed` with a sentinel index: `shard_seed(base, u64::MAX)`
/// would collapse to the raw `base`, aliasing any caller-side use of it).
fn merge_seed(base: u64) -> u64 {
    base ^ SHARD_SEED_SALT.rotate_left(31)
}

/// Per-shard input slices, plus the storage that backs them when the
/// partition had to rearrange the data. Key-range sharding of already
/// key-sorted input (the common case for order-structured streams) is
/// zero-copy: the shards are subslices of the caller's data.
struct Partition<'a> {
    storage: Vec<Vec<WeightedKey>>,
    borrowed: Vec<&'a [WeightedKey]>,
}

impl Partition<'_> {
    fn shard_slices(&self) -> Vec<&[WeightedKey]> {
        if self.borrowed.is_empty() {
            self.storage.iter().map(Vec::as_slice).collect()
        } else {
            self.borrowed.clone()
        }
    }
}

/// Splits `data` into per-shard inputs according to the topology.
fn partition<'a>(data: &'a [WeightedKey], cfg: &ShardedConfig) -> Partition<'a> {
    let n = cfg.shards.max(1);
    match cfg.topology {
        ShardTopology::RoundRobin => {
            let mut shards: Vec<Vec<WeightedKey>> = (0..n)
                .map(|_| Vec::with_capacity(data.len() / n + 1))
                .collect();
            for (i, &wk) in data.iter().enumerate() {
                shards[i % n].push(wk);
            }
            Partition {
                storage: shards,
                borrowed: Vec::new(),
            }
        }
        ShardTopology::KeyRange => {
            let per = data.len().div_ceil(n).max(1);
            if data.windows(2).all(|w| w[0].key <= w[1].key) {
                Partition {
                    storage: Vec::new(),
                    borrowed: data.chunks(per).collect(),
                }
            } else {
                let mut sorted: Vec<WeightedKey> = data.to_vec();
                sorted.sort_unstable_by_key(|wk| wk.key);
                Partition {
                    storage: sorted.chunks(per).map(<[WeightedKey]>::to_vec).collect(),
                    borrowed: Vec::new(),
                }
            }
        }
    }
}

/// Reusable scratch buffers for [`merge_samples_with`].
///
/// A threshold merge needs half a dozen temporary vectors (effective
/// weights, the active partition, the aggregation state's key/probability
/// columns, the pair order). Allocating them per merge dominates the cost
/// of small merges; an arena threaded through a merge tree reuses them
/// across every level instead. The arena never influences the merge
/// result: `merge_samples(a, b, s, rng)` and `merge_samples_with(a, b, s,
/// rng, &mut arena)` are bit-identical for any arena state, because the
/// buffers are cleared before use and the RNG draw sequence is unchanged.
#[derive(Debug, Default)]
pub struct MergeArena {
    eff: Vec<f64>,
    active: Vec<SampleEntry>,
    keys: Vec<KeyId>,
    probs: Vec<f64>,
    order_idx: Vec<usize>,
    /// Retired entry vectors, recycled as the union/kept buffers of later
    /// merges (a tree merge frees one input per merge — steady state needs
    /// no fresh allocations at all).
    entry_pool: Vec<Vec<SampleEntry>>,
    /// 2-D location scratch for callers that carry per-key coordinates
    /// through a merge (see `StoredSample::merge` in `sas-summaries`).
    coord_scratch: std::collections::HashMap<KeyId, (u64, u64)>,
}

impl MergeArena {
    /// A fresh arena (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared entry buffer from the pool (or a new one).
    pub fn take_entries(&mut self) -> Vec<SampleEntry> {
        let mut v = self.entry_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns an entry buffer to the pool for reuse.
    pub fn recycle_entries(&mut self, v: Vec<SampleEntry>) {
        self.entry_pool.push(v);
    }

    /// Takes the cleared per-key coordinate scratch map (for 2-D merges);
    /// return it with [`MergeArena::put_coords`] when done.
    pub fn take_coords(&mut self) -> std::collections::HashMap<KeyId, (u64, u64)> {
        let mut m = std::mem::take(&mut self.coord_scratch);
        m.clear();
        m
    }

    /// Returns the coordinate scratch map for reuse.
    pub fn put_coords(&mut self, m: std::collections::HashMap<KeyId, (u64, u64)>) {
        self.coord_scratch = m;
    }
}

/// Merges two finished samples over disjoint key sets down to budget `s`,
/// preserving structure awareness over the key order.
///
/// Entries enter with their adjusted weights as effective weights; a new
/// threshold `τ'` solving `Σ min(1, w̃ᵢ/τ') = s` is computed over the union.
/// Keys at or above `τ'` are kept exactly; the rest are pair-aggregated *in
/// key order* (`OSSUMMARIZE`) with probability `w̃ᵢ/τ'` each, so intervals
/// of the key domain keep low discrepancy through the merge. If the union
/// already fits in `s`, it is returned unchanged (concatenation).
pub fn merge_samples<R: Rng + ?Sized>(a: Sample, b: Sample, s: usize, rng: &mut R) -> Sample {
    merge_samples_with(a, b, s, rng, &mut MergeArena::default())
}

/// [`merge_samples`] with caller-provided scratch buffers, bit-identical to
/// it for any arena state. Thread one [`MergeArena`] through a sequence of
/// merges (a merge tree, a compaction pass) to amortize the per-merge
/// allocations away.
pub fn merge_samples_with<R: Rng + ?Sized>(
    a: Sample,
    b: Sample,
    s: usize,
    rng: &mut R,
    arena: &mut MergeArena,
) -> Sample {
    assert!(s > 0, "merge budget must be positive");
    let tau_reported = a.tau().max(b.tau());
    let mut entries = a.into_entries();
    let mut b_entries = b.into_entries();
    entries.append(&mut b_entries);
    arena.recycle_entries(b_entries);

    arena.eff.clear();
    arena.eff.extend(entries.iter().map(|e| e.adjusted_weight));
    let tau_new = ipps::threshold_exact(&arena.eff, s as f64);
    if tau_new <= 0.0 {
        // Union fits in the budget: concatenation is the exact merge.
        return Sample::from_entries(entries, tau_reported);
    }

    let mut kept: Vec<SampleEntry> = arena.take_entries();
    kept.reserve(s);
    arena.active.clear();
    for e in entries.drain(..) {
        if e.adjusted_weight >= tau_new {
            kept.push(e);
        } else {
            arena.active.push(e);
        }
    }
    arena.recycle_entries(entries);
    // Structure-aware re-subsampling: aggregate actives in key order.
    arena.active.sort_by_key(|e| e.key);
    let mut keys = std::mem::take(&mut arena.keys);
    keys.clear();
    keys.extend(arena.active.iter().map(|e| e.key));
    let mut probs = std::mem::take(&mut arena.probs);
    probs.clear();
    probs.extend(arena.active.iter().map(|e| e.adjusted_weight / tau_new));
    arena.order_idx.clear();
    arena.order_idx.extend(0..arena.active.len());
    let mut state = AggregationState::new(keys, probs);
    order::os_summarize(&mut state, &arena.order_idx, rng);
    // Inclusion is read per *index*, not per key: duplicate keys (legal in
    // the input format, and splittable across shards) must be resolved
    // entry-by-entry or the merged size drifts from s.
    kept.extend(arena.active.drain(..).enumerate().filter_map(|(i, e)| {
        (state.state(i) == EntryState::Included).then_some(SampleEntry {
            key: e.key,
            weight: e.weight,
            adjusted_weight: tau_new,
        })
    }));
    let (keys, probs) = state.into_parts();
    arena.keys = keys;
    arena.probs = probs;
    Sample::from_entries(kept, tau_new)
}

/// Summarizes `data` with `cfg.shards` parallel workers, each running the
/// order-structure sampler ([`order::sample`]) with full budget `s` on its
/// shard, then merging the per-shard samples bottom-up (adjacent pairs, one
/// `std::thread` per shard for the sampling phase).
///
/// The result has exactly `min(s, #positive-weight keys)` entries and the
/// same unbiasedness guarantees as the serial sampler; interval discrepancy
/// grows only with `log₂(shards)` (see the module docs). With `shards == 1`
/// this is exactly the serial `order::sample`.
pub fn summarize_sharded(data: &[WeightedKey], s: usize, cfg: &ShardedConfig) -> Sample {
    let per_shard = per_shard_samples(data, s, cfg);
    let mut rng = StdRng::seed_from_u64(merge_seed(cfg.seed));
    merge_sample_tree(per_shard, s, &mut rng)
}

/// Runs only the parallel sampling phase of [`summarize_sharded`]: one
/// finished budget-`s` sample per shard, in shard order, without the final
/// merge.
///
/// This is the distributed entry point: each worker's sample can be
/// serialized to its own file (`sas summarize --per-shard`) and the merge
/// performed later — in another process, or on another machine — with
/// [`merge_sample_tree`] or the erased merge of `sas-summaries`. With one
/// shard (or fewer items than shards) the result is a single serial sample.
pub fn per_shard_samples(data: &[WeightedKey], s: usize, cfg: &ShardedConfig) -> Vec<Sample> {
    assert!(s > 0, "summary size must be positive");
    assert!(cfg.shards > 0, "shard count must be positive");
    if cfg.shards == 1 || data.len() <= cfg.shards {
        let mut rng = StdRng::seed_from_u64(shard_seed(cfg.seed, 0));
        return vec![order::sample(data, s, &mut rng)];
    }

    let parts = partition(data, cfg);
    let shards = parts.shard_slices();
    let mut per_shard: Vec<Sample> = Vec::with_capacity(shards.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, &shard)| {
                let base = cfg.seed;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(shard_seed(base, i as u64 + 1));
                    order::sample(shard, s, &mut rng)
                })
            })
            .collect();
        per_shard.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked")),
        );
    });
    per_shard
}

/// Merges per-shard samples bottom-up in a binary tree (adjacent pairs —
/// preserves key locality for the key-range topology), landing at budget
/// `s`. With `L` merge levels the interval discrepancy bound is
/// `2·(L + 1)`; a left-to-right fold would pay one level per shard instead
/// of `log₂(shards)`.
pub fn merge_sample_tree<R: Rng + ?Sized>(samples: Vec<Sample>, s: usize, rng: &mut R) -> Sample {
    assert!(s > 0, "merge budget must be positive");
    // One arena for the whole tree: every merge after the first reuses the
    // previous merges' scratch (and retired entry buffers) instead of
    // allocating afresh.
    let mut arena = MergeArena::default();
    let mut level = samples;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_samples_with(a, b, s, rng, &mut arena)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let w = if rng.gen_bool(0.05) {
                    rng.gen_range(40.0..200.0)
                } else {
                    rng.gen_range(0.1..4.0)
                };
                WeightedKey::new(k, w)
            })
            .collect()
    }

    #[test]
    fn sharded_sample_has_exact_budget() {
        let data = stream(3000, 1);
        for shards in [1, 2, 3, 4, 8] {
            for topology in [ShardTopology::KeyRange, ShardTopology::RoundRobin] {
                let cfg = ShardedConfig {
                    shards,
                    topology,
                    seed: 7,
                };
                let smp = summarize_sharded(&data, 100, &cfg);
                assert_eq!(smp.len(), 100, "shards={shards} topology={topology:?}");
            }
        }
    }

    #[test]
    fn sharded_is_deterministic_for_fixed_seed() {
        let data = stream(2000, 2);
        let cfg = ShardedConfig::key_range(4, 99);
        let a = summarize_sharded(&data, 64, &cfg);
        let b = summarize_sharded(&data, 64, &cfg);
        let ka: Vec<_> = a.keys().collect();
        let kb: Vec<_> = b.keys().collect();
        assert_eq!(ka, kb);
        assert_eq!(a.tau(), b.tau());
    }

    #[test]
    fn sharded_total_estimate_matches_truth_exactly() {
        // VarOpt preserves totals with zero variance; the threshold merge
        // keeps that property (certain + re-subsampled mass is conserved).
        let data = stream(2500, 3);
        let truth = sas_core::total_weight(&data);
        for topology in [ShardTopology::KeyRange, ShardTopology::RoundRobin] {
            let cfg = ShardedConfig {
                shards: 4,
                topology,
                seed: 5,
            };
            let est = summarize_sharded(&data, 80, &cfg).total_estimate();
            assert!(
                (est - truth).abs() / truth < 1e-9,
                "{topology:?}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn sharded_estimates_unbiased() {
        let data = stream(1200, 4);
        let truth: f64 = data
            .iter()
            .filter(|wk| wk.key < 500)
            .map(|wk| wk.weight)
            .sum();
        let runs = 400;
        let mut acc = 0.0;
        for seed in 0..runs {
            let cfg = ShardedConfig::key_range(4, seed);
            acc += summarize_sharded(&data, 60, &cfg).subset_estimate(|k| k < 500);
        }
        let mean = acc / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.03,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn merge_samples_respects_budget_and_total() {
        let data = stream(800, 6);
        let mut rng = StdRng::seed_from_u64(8);
        let a = order::sample(&data[..400], 50, &mut rng);
        let b = order::sample(&data[400..], 50, &mut rng);
        let truth = a.total_estimate() + b.total_estimate();
        let merged = merge_samples(a, b, 50, &mut rng);
        assert_eq!(merged.len(), 50);
        assert!((merged.total_estimate() - truth).abs() / truth < 1e-9);
    }

    #[test]
    fn merge_samples_union_fits_concatenates() {
        let data = stream(30, 7);
        let mut rng = StdRng::seed_from_u64(9);
        let a = order::sample(&data[..15], 20, &mut rng);
        let b = order::sample(&data[15..], 20, &mut rng);
        let merged = merge_samples(a, b, 60, &mut rng);
        assert_eq!(merged.len(), 30);
        let truth = sas_core::total_weight(&data);
        assert!((merged.total_estimate() - truth).abs() < 1e-9);
    }

    #[test]
    fn merge_handles_duplicate_keys_across_inputs() {
        // The input format permits repeated keys, and a repeated key can
        // straddle a shard boundary. Inclusion must be resolved per entry:
        // the merged sample keeps exactly s entries and conserves the total.
        use sas_core::estimate::SampleEntry;
        let dup = |tau: f64| {
            Sample::from_entries(
                (0..20u64)
                    .map(|k| SampleEntry {
                        key: k,
                        weight: 1.0,
                        adjusted_weight: 1.0,
                    })
                    .collect(),
                tau,
            )
        };
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let merged = merge_samples(dup(0.5), dup(0.5), 20, &mut rng);
            assert_eq!(merged.len(), 20, "seed {seed}");
            assert!(
                (merged.total_estimate() - 40.0).abs() < 1e-9,
                "seed {seed}: total {}",
                merged.total_estimate()
            );
        }
    }

    #[test]
    fn sharded_keeps_heavy_keys() {
        let mut data = stream(1000, 10);
        data[123] = WeightedKey::new(123, 5e5);
        data[877] = WeightedKey::new(877, 7e5);
        for seed in 0..10 {
            let cfg = ShardedConfig::round_robin(4, seed);
            let smp = summarize_sharded(&data, 30, &cfg);
            assert!(smp.contains(123) && smp.contains(877), "seed {seed}");
        }
    }

    #[test]
    fn per_shard_samples_recombine_to_the_sharded_summary() {
        // Persisting per-shard samples and merging later must equal the
        // single-process sharded run exactly (same seeds, same tree).
        let data = stream(2400, 21);
        let s = 90;
        let cfg = ShardedConfig::key_range(4, 17);
        let direct = summarize_sharded(&data, s, &cfg);
        let shards = per_shard_samples(&data, s, &cfg);
        assert_eq!(shards.len(), 4);
        let mut rng = StdRng::seed_from_u64(merge_seed(cfg.seed));
        let recombined = merge_sample_tree(shards, s, &mut rng);
        let ka: Vec<_> = direct.keys().collect();
        let kb: Vec<_> = recombined.keys().collect();
        assert_eq!(ka, kb);
        assert_eq!(direct.tau().to_bits(), recombined.tau().to_bits());
    }

    #[test]
    fn arena_merge_is_bit_identical_to_fresh_allocation() {
        // A dirty, reused arena must never change a merge result: same
        // entries (key, weight, adjusted weight bits) and same threshold
        // as the allocate-per-merge path, across many seeds.
        let data = stream(1500, 33);
        let mut arena = MergeArena::new();
        for seed in 0..60u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let a1 = order::sample(&data[..700], 60, &mut r1);
            let b1 = order::sample(&data[700..], 60, &mut r1);
            let a2 = order::sample(&data[..700], 60, &mut r2);
            let b2 = order::sample(&data[700..], 60, &mut r2);
            let fresh = merge_samples(a1, b1, 50, &mut r1);
            let reused = merge_samples_with(a2, b2, 50, &mut r2, &mut arena);
            assert_eq!(fresh.tau().to_bits(), reused.tau().to_bits(), "seed {seed}");
            assert_eq!(fresh.len(), reused.len(), "seed {seed}");
            for (x, y) in fresh.iter().zip(reused.iter()) {
                assert_eq!(x.key, y.key, "seed {seed}");
                assert_eq!(x.weight.to_bits(), y.weight.to_bits(), "seed {seed}");
                assert_eq!(
                    x.adjusted_weight.to_bits(),
                    y.adjusted_weight.to_bits(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cfg = ShardedConfig::key_range(4, 1);
        assert!(summarize_sharded(&[], 10, &cfg).is_empty());
        let tiny = stream(3, 11);
        let smp = summarize_sharded(&tiny, 10, &cfg);
        assert_eq!(smp.len(), 3);
    }
}
