//! Multi-range queries over a hierarchy (Appendix C, Lemma 4).
//!
//! A query spanning `ℓ` disjoint hierarchy ranges has discrepancy
//! distributed like a VarOpt sample over a subset of mass
//! `μ = Σ (p(R_h) − ⌊p(R_h)⌋) ≤ ℓ`: each range contributes only its
//! fractional "leftover". By Chernoff bounds the error is `O(√ℓ)` with high
//! probability — the paper's key advantage over deterministic summaries,
//! whose multi-range error grows *linearly* in `ℓ`.

use std::collections::HashMap;

use sas_core::{bounds, KeyId, Sample, WeightedKey};
use sas_structures::hierarchy::{Hierarchy, NodeId};

use crate::IppsSetup;

/// A multi-range query over a hierarchy: a set of internal nodes whose leaf
/// sets are disjoint (no node is an ancestor of another).
#[derive(Debug, Clone)]
pub struct HierarchyQuery {
    /// The queried nodes.
    pub nodes: Vec<NodeId>,
}

impl HierarchyQuery {
    /// Creates a query; verifies the nodes are pairwise non-nested.
    ///
    /// # Panics
    /// Panics if one node's leaf span contains another's.
    pub fn new(hierarchy: &Hierarchy, nodes: Vec<NodeId>) -> Self {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let (sa, sb) = (hierarchy.leaf_span(a), hierarchy.leaf_span(b));
                assert!(
                    !sa.covers(&sb) && !sb.covers(&sa),
                    "query nodes {a} and {b} are nested"
                );
            }
        }
        Self { nodes }
    }

    /// Number of ranges ℓ.
    pub fn range_count(&self) -> usize {
        self.nodes.len()
    }

    /// The set of keys covered by the query.
    pub fn keys<'a>(&'a self, hierarchy: &'a Hierarchy) -> impl Iterator<Item = KeyId> + 'a {
        self.nodes.iter().flat_map(|&n| hierarchy.keys_under(n))
    }
}

/// Result of analyzing a multi-range query against a sample.
#[derive(Debug, Clone, Copy)]
pub struct MultiRangeAnalysis {
    /// Exact weight of the query.
    pub truth: f64,
    /// HT estimate from the sample.
    pub estimate: f64,
    /// Total sample-count discrepancy over the query.
    pub discrepancy: f64,
    /// Lemma 4's leftover mass μ = Σ frac(p(R_h)) ≤ ℓ.
    pub mu: f64,
    /// Chernoff bound on Pr[discrepancy ≥ observed] given μ.
    pub tail_probability: f64,
}

/// Analyzes a multi-range hierarchy query: estimate, discrepancy, the
/// Lemma 4 leftover mass μ, and the implied tail probability.
pub fn analyze(
    sample: &Sample,
    data: &[WeightedKey],
    hierarchy: &Hierarchy,
    s: usize,
    query: &HierarchyQuery,
) -> MultiRangeAnalysis {
    let setup = IppsSetup::compute(data, s);
    let prob_of: HashMap<KeyId, f64> = setup
        .certain
        .iter()
        .map(|wk| (wk.key, 1.0))
        .chain(setup.active.iter().map(|(wk, p)| (wk.key, *p)))
        .collect();
    let weight_of: HashMap<KeyId, f64> = data.iter().map(|wk| (wk.key, wk.weight)).collect();
    let in_sample: std::collections::HashSet<KeyId> = sample.keys().collect();

    let mut truth = 0.0;
    let mut expected = 0.0;
    let mut actual = 0usize;
    let mut mu = 0.0;
    for &node in &query.nodes {
        let mut p_r = 0.0;
        for k in hierarchy.keys_under(node) {
            truth += weight_of.get(&k).copied().unwrap_or(0.0);
            let p = prob_of.get(&k).copied().unwrap_or(0.0);
            p_r += p;
            if in_sample.contains(&k) {
                actual += 1;
            }
        }
        expected += p_r;
        mu += p_r - p_r.floor();
    }
    let discrepancy = (actual as f64 - expected).abs();
    let estimate = {
        let keys: std::collections::HashSet<KeyId> = query.keys(hierarchy).collect();
        sample.subset_estimate(|k| keys.contains(&k))
    };
    let tail_probability = bounds::chernoff_two_sided(mu, discrepancy.max(0.0));
    MultiRangeAnalysis {
        truth,
        estimate,
        discrepancy,
        mu,
        tail_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sas_structures::hierarchy::HierarchyBuilder;

    /// A 3-level hierarchy with `groups` × `subgroups` × `leaves_per` keys.
    fn grid_hierarchy(groups: u32, subgroups: u32, leaves_per: u32) -> (Hierarchy, u64) {
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        let mut key = 0u64;
        for _ in 0..groups {
            let g = b.add_internal(root);
            for _ in 0..subgroups {
                let sg = b.add_internal(g);
                for _ in 0..leaves_per {
                    b.add_leaf(sg, key);
                    key += 1;
                }
            }
        }
        (b.build(), key)
    }

    #[test]
    fn query_validation_rejects_nested() {
        let (h, _) = grid_hierarchy(2, 2, 3);
        let root_child = h.children(h.root())[0];
        let grandchild = h.children(root_child)[0];
        let result =
            std::panic::catch_unwind(|| HierarchyQuery::new(&h, vec![root_child, grandchild]));
        assert!(result.is_err());
    }

    #[test]
    fn discrepancy_bounded_by_range_count() {
        // Lemma 4: the multi-range discrepancy is at most ℓ.
        let (h, n) = grid_hierarchy(8, 4, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<WeightedKey> = (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.2..10.0)))
            .collect();
        // Query: one subgroup node from each group (ℓ = 8, disjoint).
        let nodes: Vec<NodeId> = h
            .children(h.root())
            .iter()
            .map(|&g| h.children(g)[0])
            .collect();
        let q = HierarchyQuery::new(&h, nodes);
        assert_eq!(q.range_count(), 8);
        for seed in 0..50 {
            let mut srng = StdRng::seed_from_u64(seed);
            let smp = crate::hierarchy::sample(&data, &h, 20, &mut srng);
            let a = analyze(&smp, &data, &h, 20, &q);
            assert!(
                a.discrepancy <= q.range_count() as f64 + 1e-6,
                "seed {seed}: discrepancy {} > ℓ",
                a.discrepancy
            );
            assert!(a.mu <= q.range_count() as f64 + 1e-6);
        }
    }

    #[test]
    fn sqrt_ell_scaling_vs_linear() {
        // The error grows like √ℓ, not ℓ: RMS discrepancy at ℓ = 16 should
        // be well below half the RMS discrepancy a linear-in-ℓ summary
        // would suffer (ℓ/2 per the q-digest-style worst case).
        let (h, n) = grid_hierarchy(16, 4, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<WeightedKey> = (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.2..5.0)))
            .collect();
        let nodes: Vec<NodeId> = h
            .children(h.root())
            .iter()
            .map(|&g| h.children(g)[1])
            .collect();
        let q = HierarchyQuery::new(&h, nodes);
        let runs = 200;
        let mut sumsq = 0.0;
        for seed in 0..runs {
            let mut srng = StdRng::seed_from_u64(100 + seed);
            let smp = crate::hierarchy::sample(&data, &h, 30, &mut srng);
            let a = analyze(&smp, &data, &h, 30, &q);
            sumsq += a.discrepancy * a.discrepancy;
        }
        let rms = (sumsq / runs as f64).sqrt();
        let ell = q.range_count() as f64;
        assert!(
            rms < ell.sqrt() * 1.5,
            "RMS discrepancy {rms} not O(√ℓ) for ℓ={ell}"
        );
    }

    #[test]
    fn estimate_matches_truth_tau_identity() {
        let (h, n) = grid_hierarchy(4, 3, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<WeightedKey> = (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.5..4.0)))
            .collect();
        let nodes = vec![h.children(h.root())[0], h.children(h.root())[2]];
        let q = HierarchyQuery::new(&h, nodes);
        let smp = crate::hierarchy::sample(&data, &h, 12, &mut rng);
        let a = analyze(&smp, &data, &h, 12, &q);
        // With no certain keys, |estimate − truth| = τ · discrepancy.
        let setup = IppsSetup::compute(&data, 12);
        if setup.certain.is_empty() {
            assert!(
                ((a.estimate - a.truth).abs() - setup.tau * a.discrepancy).abs() < 1e-6,
                "identity violated: err {} vs τΔ {}",
                (a.estimate - a.truth).abs(),
                setup.tau * a.discrepancy
            );
        }
    }

    #[test]
    fn tail_probability_reported() {
        let (h, n) = grid_hierarchy(4, 2, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<WeightedKey> = (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.5..4.0)))
            .collect();
        let nodes = vec![h.children(h.root())[1]];
        let q = HierarchyQuery::new(&h, nodes);
        let smp = crate::hierarchy::sample(&data, &h, 10, &mut rng);
        let a = analyze(&smp, &data, &h, 10, &q);
        assert!((0.0..=1.0).contains(&a.tail_probability));
    }
}
