//! v2 **segment** format — a flat, seekable layout whose bytes *are* the
//! query representation.
//!
//! A v1 frame (see the crate root) is a *logical* format: decoding walks
//! length-prefixed sections and materializes owned structures. A segment is
//! a *physical* format: a fixed-width header is followed by a section table
//! of absolute offsets, and each section is a run of 8-byte little-endian
//! elements (a column). A reader seeks straight to a column and reads
//! elements in place — no allocation, no decode pass — which is what lets
//! the store serve range queries from an `mmap`ed file off the page cache.
//!
//! ## Layout (version 2)
//!
//! ```text
//! offset      size  field
//! ----------  ----  ---------------------------------------------------
//!          0     4  magic  "SASG"
//!          4     2  format version (little-endian u16, currently 2)
//!          6     2  summary kind tag (registry lives in sas-summaries)
//!          8     8  total file length in bytes (including the trailer)
//!         16     4  section count k (little-endian u32)
//!         20     4  reserved, must be zero
//!         24  32*k  section table, one fixed-width entry per section:
//!                     id: u32, elem_size: u32, count: u64,
//!                     offset: u64, len: u64
//! 24 + 32*k  ....  section payloads, each starting at its table offset
//! end - 4       4  CRC-32 (IEEE) of bytes [0, end - 4)
//! ```
//!
//! Table invariants, all enforced by [`SegmentView::parse`]: entry ids
//! strictly increase; `elem_size` is 8 (the only element width version 2
//! defines); `len == count * elem_size`; offsets are 8-byte aligned, start
//! at or after the table, strictly increase, never overlap, and end before
//! the trailer. All integers are little-endian; `f64` travels as its
//! IEEE-754 bit pattern, read via checked `from_le_bytes` on sub-slices —
//! never a pointer transmute, so alignment of the backing buffer is
//! irrelevant to safety.
//!
//! ## Robustness contract
//!
//! [`SegmentView::parse`] is the only entry point and it validates the
//! whole file: CRC-32 first (one sequential pass — which doubles as page-
//! cache warming for a freshly mapped file), then every header field and
//! table invariant. After a successful parse, every [`Column`] access is
//! bounds-checked against ranges proven in-bounds at parse time; corrupted
//! or forged input surfaces as a [`CodecError`], never a panic or an
//! out-of-bounds read.

use crate::{crc32, CodecError, TRAILER_LEN};

/// File magic: identifies a `sas` v2 segment ("SAS seGment").
pub const SEGMENT_MAGIC: [u8; 4] = *b"SASG";

/// Current segment-format version.
pub const SEGMENT_VERSION: u16 = 2;

/// Size of the fixed segment header (magic + version + kind + file length
/// + section count + reserved).
pub const SEGMENT_HEADER_LEN: usize = 24;

/// Size of one section-table entry.
pub const SEGMENT_ENTRY_LEN: usize = 32;

/// Hard cap on the section count — far above any real summary layout, low
/// enough that a forged count cannot force a large table allocation.
pub const MAX_SEGMENT_SECTIONS: usize = 64;

/// The only element width version 2 defines: every column is a run of
/// 8-byte little-endian words (`u64` or `f64` bit patterns).
pub const SEGMENT_ELEM_SIZE: usize = 8;

/// Whether `bytes` look like a v2 segment (magic sniff — used by loaders
/// that also accept v1 frames and the legacy TSV format).
pub fn is_segment(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == SEGMENT_MAGIC
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section id (unique, ascending within a segment).
    pub id: u32,
    /// Element width in bytes (always [`SEGMENT_ELEM_SIZE`] in version 2).
    pub elem_size: u32,
    /// Number of elements.
    pub count: u64,
    /// Absolute byte offset of the column run.
    pub offset: u64,
    /// Byte length of the column run (`count * elem_size`).
    pub len: u64,
}

/// A typed, bounds-checked view over one column run.
///
/// The slice was proven in-bounds by [`SegmentView::parse`]; accessors read
/// little-endian words via `from_le_bytes` on 8-byte sub-slices.
#[derive(Debug, Clone, Copy)]
pub struct Column<'a> {
    bytes: &'a [u8],
    count: usize,
}

impl<'a> Column<'a> {
    /// Number of elements.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the column has no elements.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw column bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Iterates the column as little-endian `u64`s.
    pub fn u64s(&self) -> impl ExactSizeIterator<Item = u64> + 'a {
        self.bytes
            .chunks_exact(SEGMENT_ELEM_SIZE)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
    }

    /// Iterates the column as `f64` bit patterns.
    pub fn f64s(&self) -> impl ExactSizeIterator<Item = f64> + 'a {
        self.u64s().map(f64::from_bits)
    }

    /// Reads element `i` as a `u64`, if in range.
    pub fn u64_at(&self, i: usize) -> Option<u64> {
        let at = i.checked_mul(SEGMENT_ELEM_SIZE)?;
        let chunk = self.bytes.get(at..at + SEGMENT_ELEM_SIZE)?;
        Some(u64::from_le_bytes(chunk.try_into().expect("chunk of 8")))
    }

    /// Reads element `i` as an `f64`, if in range.
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        self.u64_at(i).map(f64::from_bits)
    }
}

/// A validated, zero-copy view over a segment's bytes.
#[derive(Debug, Clone)]
pub struct SegmentView<'a> {
    bytes: &'a [u8],
    kind: u16,
    table: Vec<SectionEntry>,
}

impl<'a> SegmentView<'a> {
    /// Validates a whole segment (checksum, header, section table) and
    /// returns a view. Never panics and never reads out of bounds on
    /// corrupted, truncated, or forged input.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let min = SEGMENT_HEADER_LEN + TRAILER_LEN;
        if bytes.len() < min {
            return Err(CodecError::Truncated {
                needed: min,
                remaining: bytes.len(),
            });
        }
        // Checksum first: any single-bit corruption anywhere in the file
        // surfaces before a field is interpreted.
        let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
        let stored = u32::from_le_bytes(trailer.try_into().expect("len 4"));
        if crc32(payload) != stored {
            return Err(CodecError::ChecksumMismatch);
        }
        if bytes[..4] != SEGMENT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let word16 = |at: usize| u16::from_le_bytes(bytes[at..at + 2].try_into().expect("len 2"));
        let word32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("len 4"));
        let word64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("len 8"));
        let version = word16(4);
        if version != SEGMENT_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let kind = word16(6);
        let declared = word64(8);
        if declared != bytes.len() as u64 {
            return Err(CodecError::LengthMismatch {
                declared,
                actual: bytes.len() as u64,
            });
        }
        let count = word32(16) as usize;
        if count > MAX_SEGMENT_SECTIONS {
            return Err(CodecError::Invalid(format!(
                "{count} sections exceed the cap of {MAX_SEGMENT_SECTIONS}"
            )));
        }
        if word32(20) != 0 {
            return Err(CodecError::Invalid("reserved header bytes not zero".into()));
        }
        let table_end = SEGMENT_HEADER_LEN + count * SEGMENT_ENTRY_LEN;
        let data_end = bytes.len() - TRAILER_LEN;
        if table_end > data_end {
            return Err(CodecError::Truncated {
                needed: table_end + TRAILER_LEN,
                remaining: bytes.len(),
            });
        }
        let mut table = Vec::with_capacity(count);
        let mut prev_id: Option<u32> = None;
        let mut cursor = table_end as u64;
        for i in 0..count {
            let at = SEGMENT_HEADER_LEN + i * SEGMENT_ENTRY_LEN;
            let entry = SectionEntry {
                id: word32(at),
                elem_size: word32(at + 4),
                count: word64(at + 8),
                offset: word64(at + 16),
                len: word64(at + 24),
            };
            if prev_id.is_some_and(|p| entry.id <= p) {
                return Err(CodecError::Invalid(format!(
                    "section ids not strictly ascending at id {}",
                    entry.id
                )));
            }
            prev_id = Some(entry.id);
            if entry.elem_size as usize != SEGMENT_ELEM_SIZE {
                return Err(CodecError::Invalid(format!(
                    "section {}: element size {} (only {SEGMENT_ELEM_SIZE} is defined)",
                    entry.id, entry.elem_size
                )));
            }
            let expected_len =
                entry
                    .count
                    .checked_mul(entry.elem_size as u64)
                    .ok_or_else(|| {
                        CodecError::Invalid(format!("section {}: count overflows", entry.id))
                    })?;
            if entry.len != expected_len {
                return Err(CodecError::Invalid(format!(
                    "section {}: length {} does not match {} elements of {}",
                    entry.id, entry.len, entry.count, entry.elem_size
                )));
            }
            if !entry.offset.is_multiple_of(8) {
                return Err(CodecError::Invalid(format!(
                    "section {}: offset {} is not 8-byte aligned",
                    entry.id, entry.offset
                )));
            }
            if entry.offset < cursor {
                return Err(CodecError::Invalid(format!(
                    "section {}: offset {} overlaps the preceding bytes ending at {cursor}",
                    entry.id, entry.offset
                )));
            }
            let end = entry.offset.checked_add(entry.len).ok_or_else(|| {
                CodecError::Invalid(format!("section {}: extent overflows", entry.id))
            })?;
            if end > data_end as u64 {
                return Err(CodecError::Invalid(format!(
                    "section {}: extent [{}, {end}) runs past the data end {data_end}",
                    entry.id, entry.offset
                )));
            }
            cursor = end;
            table.push(entry);
        }
        Ok(Self { bytes, kind, table })
    }

    /// The summary kind tag from the header.
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// The validated section table, in id order.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.table
    }

    /// Total segment size in bytes.
    pub fn file_len(&self) -> usize {
        self.bytes.len()
    }

    /// Looks a column up by section id.
    pub fn column(&self, id: u32) -> Option<Column<'a>> {
        let entry = self.table.iter().find(|e| e.id == id)?;
        // The extent was proven in-bounds by `parse`.
        let start = entry.offset as usize;
        let end = start + entry.len as usize;
        Some(Column {
            bytes: &self.bytes[start..end],
            count: entry.count as usize,
        })
    }
}

/// Builds a segment from columns of 8-byte words.
///
/// Columns must be added in strictly ascending id order (the table is part
/// of the format, and ascending ids make duplicate detection free);
/// [`SegmentBuilder::finish`] panics otherwise — that is a programmer
/// error, not a data error.
#[derive(Debug)]
pub struct SegmentBuilder {
    kind: u16,
    cols: Vec<(u32, u64, Vec<u8>)>,
}

impl SegmentBuilder {
    /// Starts a segment for the given summary kind tag.
    pub fn new(kind: u16) -> Self {
        Self {
            kind,
            cols: Vec::new(),
        }
    }

    /// Appends a column of `u64`s.
    pub fn column_u64(&mut self, id: u32, vals: impl IntoIterator<Item = u64>) -> &mut Self {
        let mut bytes = Vec::new();
        let mut count = 0u64;
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
            count += 1;
        }
        self.cols.push((id, count, bytes));
        self
    }

    /// Appends a column of `f64` bit patterns.
    pub fn column_f64(&mut self, id: u32, vals: impl IntoIterator<Item = f64>) -> &mut Self {
        self.column_u64(id, vals.into_iter().map(f64::to_bits))
    }

    /// Assembles the segment: header, section table, 8-aligned column runs,
    /// trailing CRC-32.
    pub fn finish(self) -> Vec<u8> {
        assert!(
            self.cols.len() <= MAX_SEGMENT_SECTIONS,
            "{} sections exceed the cap",
            self.cols.len()
        );
        for pair in self.cols.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "section ids must be strictly ascending"
            );
        }
        let table_end = SEGMENT_HEADER_LEN + self.cols.len() * SEGMENT_ENTRY_LEN;
        // Header and table entries are each a multiple of 8 bytes, and so is
        // every column run, so offsets stay 8-aligned without padding.
        let data_len: usize = self.cols.iter().map(|(_, _, b)| b.len()).sum();
        let total = table_end + data_len + TRAILER_LEN;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&(total as u64).to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let mut offset = table_end as u64;
        for (id, count, bytes) in &self.cols {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(SEGMENT_ELEM_SIZE as u32).to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            offset += bytes.len() as u64;
        }
        for (_, _, bytes) in &self.cols {
            out.extend_from_slice(bytes);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment() -> Vec<u8> {
        let mut b = SegmentBuilder::new(1);
        b.column_u64(1, [2u64, 0x4045_0000_0000_0000]);
        b.column_u64(2, [10, 20, 30]);
        b.column_f64(3, [1.5, 2.5, 3.5]);
        b.column_u64(5, []);
        b.finish()
    }

    /// Patches `bytes` and recomputes the trailing CRC so structural checks
    /// (not the checksum) are what reject the forgery.
    fn reseal(bytes: &mut [u8]) {
        let at = bytes.len() - TRAILER_LEN;
        let crc = crc32(&bytes[..at]);
        bytes[at..].copy_from_slice(&crc.to_le_bytes());
    }

    /// Byte offset of field `field_at` inside table entry `i`.
    fn entry_at(i: usize, field_at: usize) -> usize {
        SEGMENT_HEADER_LEN + i * SEGMENT_ENTRY_LEN + field_at
    }

    #[test]
    fn roundtrip_columns() {
        let bytes = sample_segment();
        let view = SegmentView::parse(&bytes).unwrap();
        assert_eq!(view.kind(), 1);
        assert_eq!(view.sections().len(), 4);
        assert_eq!(view.file_len(), bytes.len());
        let c1 = view.column(1).unwrap();
        assert_eq!(
            c1.u64s().collect::<Vec<_>>(),
            vec![2, 0x4045_0000_0000_0000]
        );
        assert_eq!(c1.f64_at(1), Some(42.0));
        let c2 = view.column(2).unwrap();
        assert_eq!(c2.count(), 3);
        assert_eq!(c2.u64s().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(c2.u64_at(2), Some(30));
        assert_eq!(c2.u64_at(3), None);
        let c3 = view.column(3).unwrap();
        assert_eq!(c3.f64s().collect::<Vec<_>>(), vec![1.5, 2.5, 3.5]);
        let c5 = view.column(5).unwrap();
        assert!(c5.is_empty());
        assert_eq!(c5.u64_at(0), None);
        assert!(view.column(4).is_none());
    }

    #[test]
    fn empty_segment_roundtrips() {
        let bytes = SegmentBuilder::new(9).finish();
        assert_eq!(bytes.len(), SEGMENT_HEADER_LEN + TRAILER_LEN);
        let view = SegmentView::parse(&bytes).unwrap();
        assert_eq!(view.kind(), 9);
        assert!(view.sections().is_empty());
    }

    #[test]
    fn columns_are_eight_aligned() {
        let bytes = sample_segment();
        let view = SegmentView::parse(&bytes).unwrap();
        for e in view.sections() {
            assert_eq!(e.offset % 8, 0, "section {}", e.id);
            assert_eq!(e.elem_size as usize, SEGMENT_ELEM_SIZE);
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample_segment();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                SegmentView::parse(&corrupt).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_segment();
        for len in 0..bytes.len() {
            assert!(
                SegmentView::parse(&bytes[..len]).is_err(),
                "prefix of {len} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = sample_segment();
        bytes.push(0);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    fn wrong_version_with_valid_checksum_is_rejected() {
        let mut bytes = sample_segment();
        bytes[4] = 99;
        reseal(&mut bytes);
        assert_eq!(
            SegmentView::parse(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn v1_frame_magic_is_rejected() {
        let mut bytes = sample_segment();
        bytes[..4].copy_from_slice(&crate::MAGIC);
        reseal(&mut bytes);
        assert_eq!(
            SegmentView::parse(&bytes).unwrap_err(),
            CodecError::BadMagic
        );
        // And the sniffers tell the two formats apart.
        assert!(is_segment(&sample_segment()));
        assert!(!is_segment(&bytes[..3]));
        assert!(!crate::is_frame(&sample_segment()));
    }

    #[test]
    fn forged_offset_out_of_range_is_rejected() {
        let mut bytes = sample_segment();
        let at = entry_at(1, 16);
        let past_end = bytes.len() as u64;
        bytes[at..at + 8].copy_from_slice(&past_end.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            SegmentView::parse(&bytes).unwrap_err(),
            CodecError::Invalid(_)
        ));
    }

    #[test]
    fn forged_offset_overflow_is_rejected() {
        let mut bytes = sample_segment();
        let at = entry_at(1, 16);
        bytes[at..at + 8].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    fn forged_misaligned_offset_is_rejected() {
        let mut bytes = sample_segment();
        let at = entry_at(1, 16);
        let offset = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&(offset + 4).to_le_bytes());
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    fn forged_overlapping_sections_are_rejected() {
        let mut bytes = sample_segment();
        // Point section 2 back at section 1's run.
        let src = entry_at(0, 16);
        let offset = u64::from_le_bytes(bytes[src..src + 8].try_into().unwrap());
        let at = entry_at(1, 16);
        bytes[at..at + 8].copy_from_slice(&offset.to_le_bytes());
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    fn forged_count_mismatch_is_rejected() {
        let mut bytes = sample_segment();
        let at = entry_at(1, 8);
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    fn forged_elem_size_is_rejected() {
        let mut bytes = sample_segment();
        let at = entry_at(0, 4);
        bytes[at..at + 4].copy_from_slice(&4u32.to_le_bytes());
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    fn forged_duplicate_or_descending_ids_are_rejected() {
        for forged_id in [1u32, 0] {
            let mut bytes = sample_segment();
            let at = entry_at(1, 0);
            bytes[at..at + 4].copy_from_slice(&forged_id.to_le_bytes());
            reseal(&mut bytes);
            assert!(SegmentView::parse(&bytes).is_err(), "id {forged_id}");
        }
    }

    #[test]
    fn forged_section_count_is_rejected() {
        let mut bytes = sample_segment();
        bytes[16..20].copy_from_slice(&(MAX_SEGMENT_SECTIONS as u32 + 1).to_le_bytes());
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
        // A count whose table would run past the data end is truncation.
        let mut bytes = sample_segment();
        bytes[16..20].copy_from_slice(&(MAX_SEGMENT_SECTIONS as u32).to_le_bytes());
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    fn forged_file_length_is_rejected() {
        let mut bytes = sample_segment();
        bytes[8..16].copy_from_slice(&(u64::MAX).to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            SegmentView::parse(&bytes).unwrap_err(),
            CodecError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn forged_reserved_bytes_are_rejected() {
        let mut bytes = sample_segment();
        bytes[20] = 1;
        reseal(&mut bytes);
        assert!(SegmentView::parse(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn builder_rejects_unordered_ids() {
        let mut b = SegmentBuilder::new(1);
        b.column_u64(2, [1]);
        b.column_u64(1, [2]);
        b.finish();
    }
}
