//! # sas-codec — versioned binary wire format for persistent summaries
//!
//! The paper's premise is that a small summary stands in for the full data
//! set and is queried later, repeatedly, and flexibly. That requires the
//! summary to outlive the process that built it: this crate is the hand-
//! rolled (no serde; the build environment is offline) framing layer that
//! `sas-summaries` encodes every summary kind on top of.
//!
//! ## Frame layout (version 1)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic  "SASF"
//!      4     2  format version (little-endian u16, currently 1)
//!      6     2  summary kind tag (registry lives in sas-summaries)
//!      8     8  body length in bytes (little-endian u64)
//!     16     N  body: a sequence of length-prefixed sections
//! 16 + N     4  CRC-32 (IEEE) of bytes [0, 16 + N)
//! ```
//!
//! Each body **section** is `id: u16, len: u64, payload: [u8; len]` —
//! decoders address sections by id, and a version bump may append new
//! sections without disturbing existing ones. All integers are
//! little-endian; `f64` travels as its IEEE-754 bit pattern.
//!
//! ## Robustness contract
//!
//! Decoding untrusted bytes must **never panic** and never allocate
//! unboundedly: every read is bounds-checked ([`Reader`]), every collection
//! length is validated against the bytes actually remaining
//! ([`Reader::get_len`]), and the trailing CRC-32 (which detects all
//! single-bit errors) is verified before any field is interpreted. Any
//! corruption, truncation, version or kind mismatch surfaces as a
//! [`CodecError`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod segment;

use std::fmt;

/// File magic: identifies a `sas` binary summary frame.
pub const MAGIC: [u8; 4] = *b"SASF";

/// Current wire-format version.
pub const VERSION: u16 = 1;

/// Size of the fixed frame header (magic + version + kind + body length).
pub const HEADER_LEN: usize = 16;

/// Size of the trailing checksum.
pub const TRAILER_LEN: usize = 4;

/// Everything that can go wrong while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remain than a read requires.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's version is not one this build can decode.
    UnsupportedVersion(u16),
    /// The kind tag is not present in the decoder registry.
    UnknownKind(u16),
    /// The trailing CRC-32 does not match the frame contents.
    ChecksumMismatch,
    /// The declared body length disagrees with the frame size.
    LengthMismatch {
        /// Body length declared in the header.
        declared: u64,
        /// Body bytes actually present.
        actual: u64,
    },
    /// Bytes remain after the last expected field.
    TrailingBytes(usize),
    /// A field decoded to a value that violates the kind's invariants.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadMagic => write!(f, "not a sas summary file (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::UnknownKind(k) => write!(f, "unknown summary kind tag {k}"),
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch (corrupted file)"),
            CodecError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "body length mismatch: header says {declared}, found {actual}"
                )
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} unexpected trailing bytes"),
            CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

// --- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) -----------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `bytes` — detects all single-bit errors, which is what
/// makes the bit-flip robustness sweep airtight.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- Writer ----------------------------------------------------------------

/// Append-only byte writer for frame bodies.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (`len: u64, bytes`).
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.put_bytes(s.as_bytes());
    }

    /// Writes a length-prefixed section: `id, len, payload` where the
    /// payload is whatever `f` writes.
    pub fn section(&mut self, id: u16, f: impl FnOnce(&mut Writer)) {
        self.put_u16(id);
        let len_at = self.buf.len();
        self.put_u64(0); // patched below
        let start = self.buf.len();
        f(self);
        let len = (self.buf.len() - start) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

// --- Reader ----------------------------------------------------------------

/// Bounds-checked cursor over a byte slice. Every method returns `Err`
/// instead of panicking when the input is short.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor reached the end.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an `f64` that must be finite (rejects NaN/∞ smuggled in by
    /// corruption — the samplers' invariants assume finite weights).
    pub fn get_finite_f64(&mut self) -> Result<f64, CodecError> {
        let v = self.get_f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(CodecError::Invalid(format!("non-finite f64 {v}")))
        }
    }

    /// Reads a length-prefixed UTF-8 string written by [`Writer::put_str`].
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid("string is not UTF-8".into()))
    }

    /// Reads a collection length and validates it against the bytes left:
    /// a corrupted length cannot trigger a huge allocation because at least
    /// `elem_size` bytes must remain per element.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let n = self.get_u64()?;
        let n: usize = n
            .try_into()
            .map_err(|_| CodecError::Invalid(format!("length {n} overflows usize")))?;
        let needed = n
            .checked_mul(elem_size.max(1))
            .ok_or_else(|| CodecError::Invalid(format!("length {n} × {elem_size} overflows")))?;
        if needed > self.remaining() {
            return Err(CodecError::Truncated {
                needed,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Reads the next section header, requiring id `id`, and returns a
    /// sub-reader scoped to exactly that section's payload.
    pub fn expect_section(&mut self, id: u16) -> Result<Reader<'a>, CodecError> {
        let found = self.get_u16()?;
        if found != id {
            return Err(CodecError::Invalid(format!(
                "expected section {id}, found {found}"
            )));
        }
        let len = self.get_u64()?;
        let len: usize = len
            .try_into()
            .map_err(|_| CodecError::Invalid(format!("section length {len} overflows usize")))?;
        let payload = self.take(len)?;
        Ok(Reader::new(payload))
    }
}

// --- Frame -----------------------------------------------------------------

/// A parsed frame: the kind tag plus a reader over the body.
#[derive(Debug)]
pub struct Frame<'a> {
    /// The summary kind tag from the header.
    pub kind: u16,
    /// Reader positioned at the start of the body.
    pub body: Reader<'a>,
}

/// Encodes a complete frame: header, body written by `f`, trailing CRC-32.
pub fn encode_frame(kind: u16, f: impl FnOnce(&mut Writer)) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bytes(&MAGIC);
    w.put_u16(VERSION);
    w.put_u16(kind);
    w.put_u64(0); // body length, patched below
    f(&mut w);
    let mut bytes = w.into_bytes();
    let body_len = (bytes.len() - HEADER_LEN) as u64;
    bytes[8..16].copy_from_slice(&body_len.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Validates a frame's envelope (length, checksum, magic, version, body
/// length) and returns its kind tag and body reader.
pub fn open_frame(bytes: &[u8]) -> Result<Frame<'_>, CodecError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN + TRAILER_LEN,
            remaining: bytes.len(),
        });
    }
    // Checksum first: CRC-32 detects every single-bit error anywhere in the
    // frame (header, body, or the checksum itself), so corruption surfaces
    // before any field is interpreted.
    let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
    let stored = u32::from_le_bytes(trailer.try_into().expect("len 4"));
    if crc32(payload) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    let mut r = Reader::new(payload);
    if r.get_bytes(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.get_u16()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind = r.get_u16()?;
    let declared = r.get_u64()?;
    let actual = r.remaining() as u64;
    if declared != actual {
        return Err(CodecError::LengthMismatch { declared, actual });
    }
    Ok(Frame { kind, body: r })
}

/// Whether `bytes` look like a binary summary frame (magic sniff — used by
/// loaders that also accept the legacy TSV format).
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

/// Frame kinds and stream framing for the `sas serve` wire protocol and the
/// store manifest.
///
/// The daemon speaks the same self-describing frame format as persisted
/// summaries: every request, response, and manifest is an
/// [`encode_frame`]-built frame whose kind tag lives in the ranges reserved
/// here. Summary kinds occupy low tags (1..=31, registry in
/// `sas-summaries`); the store manifest and protocol messages start at 48
/// and 64 so the two spaces can never collide.
///
/// On a byte stream the frames are length-prefixed: `len: u32 LE` followed
/// by exactly `len` frame bytes ([`write_message`] / [`read_message`]). The
/// length prefix bounds the read before any allocation; the frame's own
/// CRC-32 then vouches for the payload.
pub mod proto {
    use std::io::{self, Read, Write};

    /// Store manifest frame (body layout owned by `sas-store`).
    pub const TAG_MANIFEST: u16 = 48;

    /// A standalone query AST frame (body layout owned by
    /// `sas-summaries::query`).
    pub const TAG_QUERY: u16 = 49;

    /// A standalone estimate frame — a value with error bounds (body layout
    /// owned by `sas-summaries::query`).
    pub const TAG_ESTIMATE: u16 = 50;

    /// Request: range query against a dataset series.
    pub const REQ_QUERY: u16 = 64;
    /// Request: ingest a batch summary frame into a time window.
    pub const REQ_INGEST: u16 = 65;
    /// Request: list the catalog's windows.
    pub const REQ_LIST: u16 = 66;
    /// Request: store statistics.
    pub const REQ_STATS: u16 = 67;
    /// Request: clean daemon shutdown.
    pub const REQ_SHUTDOWN: u16 = 68;
    /// Request: estimate a [`TAG_QUERY`] query against a dataset series,
    /// answered with a [`TAG_ESTIMATE`]-shaped body (value + error bounds).
    /// The older [`REQ_QUERY`] tag remains answered for compatibility.
    pub const REQ_ESTIMATE: u16 = 69;
    /// Request: liveness probe. The daemon answers from its event loop
    /// without touching the store, so a ping measures loop responsiveness
    /// even while workers are saturated.
    pub const REQ_PING: u16 = 70;
    /// Request: snapshot the daemon's metrics registry (counters plus
    /// latency histograms). Answered with a [`RESP_OK`] body holding the
    /// full registry; see `sas-store`'s wire module for the layout.
    pub const REQ_METRICS: u16 = 71;
    /// Request: like [`REQ_ESTIMATE`] but the answer also carries a
    /// coverage report — which parts of the requested time span were
    /// missing or expired. The older tags stay answered bit-identically.
    pub const REQ_ESTIMATE_COV: u16 = 72;
    /// Request: register a live subscription for a canonical query on this
    /// connection. Acknowledged with a watch id; incremental updates then
    /// arrive as unsolicited [`RESP_PUSH`] frames.
    pub const REQ_WATCH: u16 = 73;
    /// Request: install (or clear) the lifecycle policy of a dataset.
    pub const REQ_POLICY_SET: u16 = 74;
    /// Request: read back the installed lifecycle policies.
    pub const REQ_POLICY_SHOW: u16 = 75;

    /// Response: success; body layout depends on the request kind.
    pub const RESP_OK: u16 = 80;
    /// Response: failure; body is one section holding a message string.
    pub const RESP_ERR: u16 = 81;
    /// Response: load shed — the daemon refused the request (connection
    /// limit or per-dataset admission control); body is one section holding
    /// a reason string. An overloaded daemon answers BUSY explicitly rather
    /// than silently dropping the connection.
    pub const RESP_BUSY: u16 = 82;
    /// Unsolicited push: an incremental estimate for a registered watch.
    /// Never sent in reply to a request — it carries the watch id it
    /// belongs to instead of a request sequence number.
    pub const RESP_PUSH: u16 = 83;

    /// Hard cap on a single protocol message (frame bytes). A batch of a
    /// few million sample entries fits; a corrupted length prefix cannot
    /// force an unbounded allocation.
    pub const MAX_MESSAGE_LEN: u32 = 256 * 1024 * 1024;

    /// Writes one length-prefixed frame to a stream.
    pub fn write_message(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
        let len: u32 = frame
            .len()
            .try_into()
            .ok()
            .filter(|&n| n <= MAX_MESSAGE_LEN)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("message of {} bytes exceeds the protocol cap", frame.len()),
                )
            })?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(frame)?;
        w.flush()
    }

    /// Reads one length-prefixed frame from a stream. Returns `Ok(None)` on
    /// a clean EOF at a message boundary (peer closed the connection).
    pub fn read_message(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        let mut len_bytes = [0u8; 4];
        match r.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_MESSAGE_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("message length {len} exceeds the protocol cap"),
            ));
        }
        let mut frame = vec![0u8; len as usize];
        r.read_exact(&mut frame)?;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        encode_frame(7, |w| {
            w.section(1, |w| {
                w.put_u64(3);
                w.put_f64(2.5);
            });
            w.section(2, |w| {
                w.put_bytes(b"abc");
            });
        })
    }

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0xCDEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-1234.5678);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xCDEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), -1234.5678);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn frame_roundtrip() {
        let bytes = sample_frame();
        let mut frame = open_frame(&bytes).unwrap();
        assert_eq!(frame.kind, 7);
        let mut s1 = frame.body.expect_section(1).unwrap();
        assert_eq!(s1.get_u64().unwrap(), 3);
        assert_eq!(s1.get_f64().unwrap(), 2.5);
        assert!(s1.finish().is_ok());
        let mut s2 = frame.body.expect_section(2).unwrap();
        assert_eq!(s2.get_bytes(3).unwrap(), b"abc");
        assert!(frame.body.finish().is_ok());
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample_frame();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                open_frame(&corrupt).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_frame();
        for len in 0..bytes.len() {
            assert!(
                open_frame(&bytes[..len]).is_err(),
                "prefix of {len} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = sample_frame();
        bytes.push(0);
        assert!(open_frame(&bytes).is_err());
    }

    #[test]
    fn wrong_version_with_valid_checksum_is_rejected() {
        let mut bytes = sample_frame();
        bytes[4] = 99; // version low byte
        let crc = crc32(&bytes[..bytes.len() - TRAILER_LEN]);
        let at = bytes.len() - TRAILER_LEN;
        bytes[at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            open_frame(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn wrong_magic_with_valid_checksum_is_rejected() {
        let mut bytes = sample_frame();
        bytes[0] = b'X';
        let crc = crc32(&bytes[..bytes.len() - TRAILER_LEN]);
        let at = bytes.len() - TRAILER_LEN;
        bytes[at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(open_frame(&bytes).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn corrupted_length_cannot_force_huge_allocation() {
        // get_len validates against remaining bytes: u64::MAX never reaches
        // Vec::with_capacity.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_len(8).is_err());
    }

    #[test]
    fn non_finite_f64_rejected() {
        let mut w = Writer::new();
        w.put_f64(f64::NAN);
        w.put_f64(f64::INFINITY);
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_finite_f64().is_err());
        assert!(r.get_finite_f64().is_err());
        assert_eq!(r.get_finite_f64().unwrap(), 1.0);
    }

    #[test]
    fn wrong_section_id_rejected() {
        let bytes = sample_frame();
        let mut frame = open_frame(&bytes).unwrap();
        assert!(frame.body.expect_section(9).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn string_roundtrip_and_rejection() {
        let mut w = Writer::new();
        w.put_str("déjà vu");
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "déjà vu");
        assert_eq!(r.get_str().unwrap(), "");
        assert!(r.finish().is_ok());
        // Truncated length and invalid UTF-8 both fail cleanly.
        let mut short = Reader::new(&bytes[..4]);
        assert!(short.get_str().is_err());
        let mut w = Writer::new();
        w.put_u64(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bad = w.into_bytes();
        assert!(Reader::new(&bad).get_str().is_err());
    }

    #[test]
    fn stream_messages_roundtrip() {
        let frames = [sample_frame(), encode_frame(proto::REQ_LIST, |_| {})];
        let mut wire = Vec::new();
        for f in &frames {
            proto::write_message(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for f in &frames {
            let got = proto::read_message(&mut cursor).unwrap().expect("a frame");
            assert_eq!(&got, f);
        }
        // Clean EOF at a boundary is None, not an error.
        assert!(proto::read_message(&mut cursor).unwrap().is_none());
        // EOF mid-message is an error.
        let mut torn = &wire[..wire.len() - 1];
        proto::read_message(&mut torn).unwrap();
        assert!(proto::read_message(&mut torn).is_err());
        // A hostile length prefix is rejected before allocation.
        let huge = u32::MAX.to_le_bytes();
        assert!(proto::read_message(&mut &huge[..]).is_err());
    }

    #[test]
    fn proto_tags_avoid_summary_tag_space() {
        // Summary kinds use low tags; manifest and protocol tags must never
        // collide with them (or each other).
        let tags = [
            proto::TAG_MANIFEST,
            proto::REQ_QUERY,
            proto::REQ_INGEST,
            proto::REQ_LIST,
            proto::REQ_STATS,
            proto::REQ_SHUTDOWN,
            proto::REQ_ESTIMATE,
            proto::REQ_PING,
            proto::REQ_METRICS,
            proto::RESP_OK,
            proto::RESP_ERR,
            proto::RESP_BUSY,
        ];
        let unique: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(unique.len(), tags.len());
        assert!(tags.iter().all(|&t| t >= 32));
    }

    #[test]
    fn is_frame_sniffs_magic() {
        assert!(is_frame(&sample_frame()));
        assert!(!is_frame(b"#sas-summary tau=1 dims=1"));
        assert!(!is_frame(b"SA"));
    }
}
