//! # sas-core — VarOpt sampling primitives
//!
//! This crate implements the sampling substrate of *Cohen, Cormode, Duffield,
//! "Structure-Aware Sampling: Flexible and Accurate Summarization"* (VLDB
//! 2011): everything the structure-aware schemes in `sas-sampling` are built
//! on, plus the structure-oblivious baselines the paper compares against.
//!
//! ## Contents
//!
//! * [`ipps`] — Inclusion Probability Proportional to Size: the threshold
//!   τ_s solving Σᵢ min(1, wᵢ/τ_s) = s, computed exactly (sort-based) or in
//!   one streaming pass with an s-sized heap (the paper's Algorithm 4).
//! * [`aggregate`] — `PAIR-AGGREGATE` (the paper's Algorithm 1) and the
//!   probabilistic-aggregation state machine. This is the freedom-exposing
//!   primitive: *any* sequence of pair aggregations yields a VarOpt sample,
//!   and choosing which pairs to aggregate is what makes a sample
//!   structure-aware.
//! * [`varopt`] — streaming VarOpt_s reservoir (Cohen et al., SODA 2009),
//!   the structure-oblivious baseline ("obliv" in the paper's plots) and the
//!   first-pass guide sample of the two-pass algorithms.
//! * [`poisson`] — Poisson IPPS sampling (independent inclusions).
//! * [`reservoir`] — classic uniform reservoir sampling, the special case of
//!   VarOpt on uniform weights.
//! * [`systematic`] — systematic sampling over an order (Appendix D): a
//!   deterministic-offset scheme with Δ < 1 that satisfies VarOpt conditions
//!   (i) and (ii) but not (iii).
//! * [`estimate`] — [`estimate::Sample`]: the summary object holding
//!   sampled keys with Horvitz–Thompson adjusted weights, subset-sum and
//!   range-sum estimation.
//! * [`merge`] — the [`Mergeable`] trait: summaries over disjoint data that
//!   combine into a summary of the union, the substrate of sharded and
//!   distributed summarization ([`VarOptSampler::merge`] is the VarOpt
//!   threshold merge).
//! * [`bounds`] — Chernoff tail bounds for Poisson/VarOpt samples (the
//!   paper's Eqns. 2–4) and the ε-approximation size bound (Theorem 2).
//! * [`discrepancy`] — sample-vs-expectation discrepancy Δ(S, R), the
//!   central quality measure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use rand::SeedableRng;
//! use sas_core::varopt::VarOptSampler;
//!
//! let weights: Vec<f64> = (1..=100).map(|i| i as f64).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut sampler = VarOptSampler::new(10);
//! for (i, &w) in weights.iter().enumerate() {
//!     sampler.push(i as u64, w, &mut rng);
//! }
//! let sample = sampler.finish();
//! assert_eq!(sample.len(), 10);
//! // The sample estimates the total weight without bias:
//! let est: f64 = sample.iter().map(|e| e.adjusted_weight).sum();
//! assert!((est - 5050.0).abs() / 5050.0 < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod bounds;
pub mod discrepancy;
pub mod estimate;
pub mod ipps;
pub mod merge;
pub mod poisson;
pub mod reservoir;
pub mod systematic;
pub mod varopt;

pub use aggregate::{pair_aggregate, AggregationState};
pub use estimate::{Sample, SampleEntry};
pub use ipps::{inclusion_probabilities, threshold_exact, StreamingThreshold};
pub use merge::Mergeable;
pub use varopt::VarOptSampler;

/// Identifier of a key in a data set.
///
/// Keys are opaque 64-bit identifiers; structure (order, position in a
/// hierarchy, multi-dimensional coordinates) is attached by `sas-structures`
/// rather than being baked into the key type.
pub type KeyId = u64;

/// A `(key, weight)` pair, the unit of input data throughout the library.
///
/// Weights must be non-negative and finite; zero-weight keys are legal and
/// are never sampled (their IPPS probability is 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedKey {
    /// The key identifier.
    pub key: KeyId,
    /// The key's non-negative weight.
    pub weight: f64,
}

impl WeightedKey {
    /// Creates a new weighted key.
    ///
    /// # Panics
    /// Panics if `weight` is negative, NaN, or infinite.
    pub fn new(key: KeyId, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative, got {weight}"
        );
        Self { key, weight }
    }
}

/// Sums the weights of a slice of weighted keys.
pub fn total_weight(data: &[WeightedKey]) -> f64 {
    data.iter().map(|wk| wk.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_key_construction() {
        let wk = WeightedKey::new(42, 3.5);
        assert_eq!(wk.key, 42);
        assert_eq!(wk.weight, 3.5);
    }

    #[test]
    fn zero_weight_is_legal() {
        let wk = WeightedKey::new(0, 0.0);
        assert_eq!(wk.weight, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        WeightedKey::new(1, -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_panics() {
        WeightedKey::new(1, f64::NAN);
    }

    #[test]
    fn total_weight_sums() {
        let data = vec![
            WeightedKey::new(1, 1.0),
            WeightedKey::new(2, 2.0),
            WeightedKey::new(3, 3.0),
        ];
        assert_eq!(total_weight(&data), 6.0);
        assert_eq!(total_weight(&[]), 0.0);
    }
}
