//! Inclusion Probability Proportional to Size (IPPS) thresholds.
//!
//! IPPS sampling includes key `i` with probability `pᵢ = min(1, wᵢ/τ)`. For
//! a target (expected) sample size `s`, the threshold `τ_s` is the unique
//! solution of
//!
//! ```text
//!   Σᵢ min(1, wᵢ/τ_s) = s            (when s < n; otherwise τ_s = 0)
//! ```
//!
//! This module provides two solvers:
//!
//! * [`threshold_exact`] — sort-based exact solution, O(n log n).
//! * [`StreamingThreshold`] — the paper's Algorithm 4: one pass with a heap
//!   of at most `s` heavy keys, O(log s) amortized per item.
//!
//! Using IPPS probabilities with Horvitz–Thompson estimates minimizes the sum
//! of per-key variances over all schemes with the same expected size
//! (Appendix A of the paper).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::WeightedKey;

/// Floating-point tolerance used when validating threshold equations.
pub const EPS: f64 = 1e-9;

/// Computes the exact IPPS threshold `τ_s` for the given weights and target
/// expected sample size `s` (which may be fractional).
///
/// Returns `0.0` when `s` is at least the number of positive-weight keys:
/// every such key is then included with probability 1. (With `τ = 0` we adopt
/// the convention `min(1, w/0) = 1` for `w > 0` and `0` for `w = 0`.)
///
/// # Panics
/// Panics if `s <= 0` or any weight is negative/non-finite.
///
/// # Algorithm
/// Sort weights in decreasing order. If the `k` largest keys are exactly the
/// ones with `pᵢ = 1`, the remaining mass must satisfy
/// `τ = (Σ_{i>k} wᵢ) / (s − k)`, valid iff `w_(k) ≥ τ > w_(k+1)`. Scan `k`
/// upward until the validity window is hit.
pub fn threshold_exact(weights: &[f64], s: f64) -> f64 {
    assert!(s > 0.0, "target sample size must be positive, got {s}");
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
    }
    let mut sorted: Vec<f64> = weights.iter().copied().filter(|&w| w > 0.0).collect();
    let n = sorted.len();
    if s >= n as f64 {
        return 0.0;
    }
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());

    // suffix[k] = sum of sorted[k..]
    // Accumulate from the tail for numerical stability with heavy-tailed data.
    let mut suffix = vec![0.0; n + 1];
    for k in (0..n).rev() {
        suffix[k] = suffix[k + 1] + sorted[k];
    }

    for k in 0..n {
        if (k as f64) >= s {
            break;
        }
        let tau = suffix[k] / (s - k as f64);
        let upper_ok = k == 0 || sorted[k - 1] >= tau - EPS;
        let lower_ok = sorted[k] < tau + EPS;
        if upper_ok && lower_ok {
            return tau;
        }
    }
    // Fallback: numerically the equation is monotone in τ; bisect.
    bisect_threshold(&sorted, s)
}

/// Bisection fallback for [`threshold_exact`] used only if the scan fails due
/// to floating-point degeneracies (e.g. many exactly-equal weights at the
/// boundary).
fn bisect_threshold(sorted_desc: &[f64], s: f64) -> f64 {
    let expected = |tau: f64| -> f64 {
        sorted_desc
            .iter()
            .map(|&w| if tau <= 0.0 { 1.0 } else { (w / tau).min(1.0) })
            .sum()
    };
    let (mut lo, mut hi) = (0.0, sorted_desc.first().copied().unwrap_or(0.0).max(1.0));
    // Ensure expected(hi) <= s.
    while expected(hi) > s {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) > s {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Computes IPPS inclusion probabilities `pᵢ = min(1, wᵢ/τ)` for a threshold.
///
/// With `τ = 0`, positive-weight keys get probability 1 and zero-weight keys
/// probability 0 (the `s ≥ n` regime).
pub fn inclusion_probabilities(weights: &[f64], tau: f64) -> Vec<f64> {
    weights
        .iter()
        .map(|&w| {
            if tau <= 0.0 {
                if w > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                (w / tau).min(1.0)
            }
        })
        .collect()
}

/// Expected sample size Σᵢ min(1, wᵢ/τ) under threshold `τ`.
pub fn expected_size(weights: &[f64], tau: f64) -> f64 {
    inclusion_probabilities(weights, tau).iter().sum()
}

/// A weight ordered for use in a min-heap of heavy keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapWeight(f64);

impl Eq for HeapWeight {}

impl PartialOrd for HeapWeight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapWeight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Streaming IPPS threshold computation — the paper's **Algorithm 4**.
///
/// Maintains a min-heap `H` of at most `s` weights that currently exceed the
/// threshold, and the scalar `L`, the total weight of all other processed
/// keys. The running threshold is `τ = L / (s − |H|)`.
///
/// One pass over the data with `O(s)` memory yields exactly `τ_s`.
///
/// ```
/// use sas_core::ipps::{StreamingThreshold, threshold_exact};
/// let weights = [5.0, 1.0, 3.0, 1.0, 8.0, 2.0];
/// let mut st = StreamingThreshold::new(3);
/// for &w in &weights { st.push(w); }
/// let exact = threshold_exact(&weights, 3.0);
/// assert!((st.tau() - exact).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingThreshold {
    s: usize,
    /// Min-heap of weights currently above the threshold.
    heap: BinaryHeap<Reverse<HeapWeight>>,
    /// Total weight of keys not in the heap.
    light_sum: f64,
    /// Number of items processed.
    count: usize,
}

impl StreamingThreshold {
    /// Creates a threshold tracker for target sample size `s`.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: usize) -> Self {
        assert!(s > 0, "sample size must be positive");
        Self {
            s,
            heap: BinaryHeap::with_capacity(s + 1),
            light_sum: 0.0,
            count: 0,
        }
    }

    /// Current threshold estimate `τ` for the items seen so far.
    ///
    /// While fewer than `s` positive-weight items have been seen this is `0`
    /// (everything fits in the sample with probability 1).
    pub fn tau(&self) -> f64 {
        if self.heap.len() >= self.s {
            // Cannot happen: the heap is always reduced below s before
            // returning from push. Defensive.
            return f64::INFINITY;
        }
        self.light_sum / (self.s - self.heap.len()) as f64
    }

    /// Number of items processed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Processes one item weight (the paper's `STREAM-τ(i)`).
    pub fn push(&mut self, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "invalid weight {weight}"
        );
        self.count += 1;
        if weight == 0.0 {
            return;
        }
        let tau = self.tau();
        if weight < tau {
            self.light_sum += weight;
        } else {
            self.heap.push(Reverse(HeapWeight(weight)));
        }
        // Adjust: evict the smallest heavy weight while the heap is full or
        // its minimum has fallen below the updated threshold.
        loop {
            let evict = match self.heap.peek() {
                Some(&Reverse(HeapWeight(m))) => self.heap.len() == self.s || m < self.tau(),
                None => false,
            };
            if !evict {
                break;
            }
            let Reverse(HeapWeight(m)) = self.heap.pop().expect("non-empty");
            self.light_sum += m;
        }
    }

    /// Consumes the tracker and returns the final threshold `τ_s`.
    pub fn finish(self) -> f64 {
        self.tau()
    }
}

/// Convenience: exact IPPS threshold for weighted keys.
pub fn threshold_for_keys(data: &[WeightedKey], s: f64) -> f64 {
    let weights: Vec<f64> = data.iter().map(|wk| wk.weight).collect();
    threshold_exact(&weights, s)
}

/// Chooses a (possibly fractional-input) threshold that makes the *number of
/// non-certain inclusions* sum to an integer, so pair aggregation terminates
/// with exactly `s` sampled keys (footnote 1 of the paper).
///
/// For integer `s` this is just [`threshold_exact`]: keys with `pᵢ = 1`
/// contribute integrally and the rest sum to `s − #{pᵢ = 1}`.
pub fn integral_threshold(data: &[WeightedKey], s: usize) -> f64 {
    threshold_for_keys(data, s as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_solution(weights: &[f64], s: f64) {
        let tau = threshold_exact(weights, s);
        let n_pos = weights.iter().filter(|&&w| w > 0.0).count();
        if s >= n_pos as f64 {
            assert_eq!(tau, 0.0);
            return;
        }
        let e = expected_size(weights, tau);
        assert!(
            (e - s).abs() < 1e-6,
            "expected size {e} != {s} at tau={tau} for {weights:?}"
        );
    }

    #[test]
    fn exact_small_cases() {
        check_solution(&[1.0, 1.0, 1.0, 1.0], 2.0);
        check_solution(&[10.0, 1.0, 1.0, 1.0], 2.0);
        check_solution(&[10.0, 9.0, 1.0, 1.0], 2.0);
        check_solution(&[5.0, 4.0, 3.0, 2.0, 1.0], 3.0);
        check_solution(&[100.0, 1.0], 1.0);
    }

    #[test]
    fn exact_uniform_weights() {
        let w = vec![2.0; 100];
        let tau = threshold_exact(&w, 10.0);
        // Σ 2/τ = 10 → τ = 20.
        assert!((tau - 20.0).abs() < 1e-9);
    }

    #[test]
    fn exact_with_heavy_keys() {
        // One huge key: must get p = 1; remaining 9 uniform keys share s-1.
        let mut w = vec![1.0; 9];
        w.push(1000.0);
        let tau = threshold_exact(&w, 4.0);
        let p = inclusion_probabilities(&w, tau);
        assert_eq!(p[9], 1.0);
        assert!((p.iter().sum::<f64>() - 4.0).abs() < 1e-9);
        // τ = 9/3 = 3.
        assert!((tau - 3.0).abs() < 1e-9);
    }

    #[test]
    fn s_at_least_n_gives_zero_tau() {
        let w = [1.0, 2.0, 3.0];
        assert_eq!(threshold_exact(&w, 3.0), 0.0);
        assert_eq!(threshold_exact(&w, 5.0), 0.0);
        let p = inclusion_probabilities(&w, 0.0);
        assert_eq!(p, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_weights_ignored() {
        let w = [0.0, 5.0, 0.0, 5.0];
        let tau = threshold_exact(&w, 1.0);
        assert!((tau - 10.0).abs() < 1e-9);
        let p = inclusion_probabilities(&w, tau);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn paper_figure1_probabilities() {
        // Figure 1: weights 3,6,4,7,1,8,4,2,3,2 with s=4 give the IPPS
        // probabilities 0.3,0.6,0.4,0.7,0.1,0.8,0.4,0.2,0.3,0.2 — i.e. τ=10.
        let w = [3.0, 6.0, 4.0, 7.0, 1.0, 8.0, 4.0, 2.0, 3.0, 2.0];
        let tau = threshold_exact(&w, 4.0);
        assert!((tau - 10.0).abs() < 1e-9, "tau = {tau}");
        let p = inclusion_probabilities(&w, tau);
        let expect = [0.3, 0.6, 0.4, 0.7, 0.1, 0.8, 0.4, 0.2, 0.3, 0.2];
        for (a, b) in p.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn streaming_matches_exact_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let n = rng.gen_range(5..200);
            let s = rng.gen_range(1..n);
            let weights: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        rng.gen_range(50.0..500.0)
                    } else {
                        rng.gen_range(0.01..5.0)
                    }
                })
                .collect();
            let exact = threshold_exact(&weights, s as f64);
            let mut st = StreamingThreshold::new(s);
            for &w in &weights {
                st.push(w);
            }
            let streamed = st.finish();
            assert!(
                (exact - streamed).abs() < 1e-6 * (1.0 + exact),
                "trial {trial}: exact {exact} vs streamed {streamed}"
            );
        }
    }

    #[test]
    fn streaming_with_zero_weights() {
        let mut st = StreamingThreshold::new(2);
        for w in [0.0, 3.0, 0.0, 3.0, 3.0, 0.0] {
            st.push(w);
        }
        // Three weight-3 keys, s=2: τ = 9/2 = 4.5.
        assert!((st.tau() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn streaming_fewer_items_than_s() {
        let mut st = StreamingThreshold::new(10);
        st.push(5.0);
        st.push(7.0);
        assert_eq!(st.tau(), 0.0);
        assert_eq!(st.count(), 2);
    }

    #[test]
    fn expected_size_monotone_in_tau() {
        let w = [4.0, 2.0, 9.0, 1.0, 6.0];
        let mut last = f64::INFINITY;
        for i in 1..50 {
            let tau = i as f64 * 0.5;
            let e = expected_size(&w, tau);
            assert!(e <= last + 1e-12);
            last = e;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_s_panics() {
        threshold_exact(&[1.0], 0.0);
    }
}
