//! Samples and Horvitz–Thompson estimation (Appendix A of the paper).
//!
//! A [`Sample`] is the summary object produced by every sampler in this
//! library: the included keys together with their HT *adjusted weights*
//! `a(i) = wᵢ / pᵢ`. For IPPS probabilities, `a(i) = max(wᵢ, τ)`:
//! heavy keys (`wᵢ ≥ τ`) keep their exact weight; light keys are inflated
//! to τ.
//!
//! The adjusted weight of a subset `J` is `a(J) = Σ_{i ∈ S∩J} a(i)`, an
//! unbiased estimator of the true subset weight `w(J)` for *any* subset
//! chosen after the fact — this flexibility is the core advantage of
//! sample-based summaries over dedicated range-sum structures.

use std::collections::HashMap;

use crate::{KeyId, WeightedKey};

/// One sampled key with its original and HT-adjusted weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEntry {
    /// The sampled key.
    pub key: KeyId,
    /// The key's original weight (when known; streaming samplers that only
    /// retain adjusted weights store the adjusted weight here too).
    pub weight: f64,
    /// Horvitz–Thompson adjusted weight `wᵢ / pᵢ`.
    pub adjusted_weight: f64,
}

/// A sample-based summary: sampled keys with HT adjusted weights.
///
/// Supports unbiased subset-sum estimation over arbitrary predicates and
/// key sets, and exposes the IPPS threshold used to build it.
#[derive(Debug, Clone, Default)]
pub struct Sample {
    entries: Vec<SampleEntry>,
    tau: f64,
}

impl Sample {
    /// Builds a sample from entries and the IPPS threshold `τ`.
    pub fn from_entries(entries: Vec<SampleEntry>, tau: f64) -> Self {
        Self { entries, tau }
    }

    /// Builds a sample from `(key, probability)` aggregation output plus the
    /// original data weights. Keys with `pᵢ = 1` (within tolerance) are
    /// included; adjusted weight is `max(wᵢ, τ)`.
    pub fn from_inclusion(
        data: &[WeightedKey],
        probabilities: &[f64],
        included: impl IntoIterator<Item = KeyId>,
        tau: f64,
    ) -> Self {
        let _ = probabilities;
        let by_key: HashMap<KeyId, f64> = data.iter().map(|wk| (wk.key, wk.weight)).collect();
        let entries = included
            .into_iter()
            .map(|k| {
                let w = by_key.get(&k).copied().unwrap_or(0.0);
                SampleEntry {
                    key: k,
                    weight: w,
                    adjusted_weight: if tau > 0.0 { w.max(tau) } else { w },
                }
            })
            .collect();
        Self { entries, tau }
    }

    /// Number of sampled keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The IPPS threshold τ used to build this sample.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Iterates over the sampled entries.
    pub fn iter(&self) -> impl Iterator<Item = &SampleEntry> {
        self.entries.iter()
    }

    /// The sampled keys.
    pub fn keys(&self) -> impl Iterator<Item = KeyId> + '_ {
        self.entries.iter().map(|e| e.key)
    }

    /// Whether `key` is present in the sample.
    pub fn contains(&self, key: KeyId) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// HT estimate of the total data weight.
    pub fn total_estimate(&self) -> f64 {
        self.entries.iter().map(|e| e.adjusted_weight).sum()
    }

    /// HT estimate of the weight of the subset of keys satisfying `pred`.
    ///
    /// Unbiased for any fixed predicate: `E[a(J)] = w(J)`.
    pub fn subset_estimate(&self, mut pred: impl FnMut(KeyId) -> bool) -> f64 {
        self.entries
            .iter()
            .filter(|e| pred(e.key))
            .map(|e| e.adjusted_weight)
            .sum()
    }

    /// Number of sampled keys satisfying `pred` (for discrepancy studies).
    pub fn subset_count(&self, mut pred: impl FnMut(KeyId) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(e.key)).count()
    }

    /// Per-key variance of the HT estimator under IPPS:
    /// `Var[a(i)] = wᵢ(τ − wᵢ)` if `wᵢ ≤ τ`, else 0.
    ///
    /// Requires original weights for all data keys (not just sampled ones);
    /// returns the sum `ΣV = Σᵢ Var[a(i)]`, the quantity VarOpt minimizes.
    pub fn sum_per_key_variance(data: &[WeightedKey], tau: f64) -> f64 {
        data.iter()
            .map(|wk| {
                if wk.weight < tau {
                    wk.weight * (tau - wk.weight)
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Merges another sample into this one (keys assumed disjoint), keeping
    /// the larger threshold for reporting purposes.
    pub fn merge(&mut self, other: Sample) {
        self.entries.extend(other.entries);
        self.tau = self.tau.max(other.tau);
    }

    /// Consumes the sample returning its entries.
    pub fn into_entries(self) -> Vec<SampleEntry> {
        self.entries
    }
}

impl FromIterator<SampleEntry> for Sample {
    fn from_iter<T: IntoIterator<Item = SampleEntry>>(iter: T) -> Self {
        Self {
            entries: iter.into_iter().collect(),
            tau: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fixture() -> Sample {
        Sample::from_entries(
            vec![
                SampleEntry {
                    key: 1,
                    weight: 20.0,
                    adjusted_weight: 20.0,
                },
                SampleEntry {
                    key: 5,
                    weight: 2.0,
                    adjusted_weight: 10.0,
                },
                SampleEntry {
                    key: 9,
                    weight: 3.0,
                    adjusted_weight: 10.0,
                },
            ],
            10.0,
        )
    }

    #[test]
    fn subset_estimate_filters() {
        let s = sample_fixture();
        assert_eq!(s.subset_estimate(|k| k > 4), 20.0);
        assert_eq!(s.subset_estimate(|_| true), 40.0);
        assert_eq!(s.subset_estimate(|_| false), 0.0);
        assert_eq!(s.total_estimate(), 40.0);
    }

    #[test]
    fn subset_count_counts() {
        let s = sample_fixture();
        assert_eq!(s.subset_count(|k| k >= 5), 2);
    }

    #[test]
    fn from_inclusion_adjusts_weights() {
        let data = vec![
            WeightedKey::new(1, 20.0),
            WeightedKey::new(2, 2.0),
            WeightedKey::new(3, 1.0),
        ];
        let s = Sample::from_inclusion(&data, &[1.0, 0.5, 0.25], [1, 2], 4.0);
        assert_eq!(s.len(), 2);
        let e1 = s.iter().find(|e| e.key == 1).unwrap();
        assert_eq!(e1.adjusted_weight, 20.0); // heavy: exact
        let e2 = s.iter().find(|e| e.key == 2).unwrap();
        assert_eq!(e2.adjusted_weight, 4.0); // light: τ
    }

    #[test]
    fn variance_formula() {
        let data = vec![WeightedKey::new(1, 2.0), WeightedKey::new(2, 8.0)];
        // τ = 4: key1 light → 2·(4−2)=4, key2 heavy → 0.
        assert_eq!(Sample::sum_per_key_variance(&data, 4.0), 4.0);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = sample_fixture();
        let b = Sample::from_entries(
            vec![SampleEntry {
                key: 42,
                weight: 1.0,
                adjusted_weight: 12.0,
            }],
            12.0,
        );
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.tau(), 12.0);
        assert!(a.contains(42));
    }

    #[test]
    fn empty_sample() {
        let s = Sample::default();
        assert!(s.is_empty());
        assert_eq!(s.total_estimate(), 0.0);
    }
}
