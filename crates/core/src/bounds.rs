//! Chernoff tail bounds for Poisson and VarOpt samples (the paper's
//! Eqns. 2–4) and the Vapnik–Chervonenkis ε-approximation size bound
//! (Theorem 2).
//!
//! Because VarOpt samples satisfy the inclusion/exclusion product conditions,
//! the classic Chernoff bounds on `X_J = |S ∩ J|` apply verbatim, which is
//! what gives sample-based summaries their `O(√p(R))` expected discrepancy on
//! any single range — and, unlike deterministic summaries, an error on
//! multi-range queries that grows with the *square root* of the number of
//! ranges rather than linearly.

/// Upper tail: probability of at least `a` samples in a subset with mean
/// `mu`, for a sample of (fixed) size `s` — the paper's Eqn. (2),
/// simplified exponential form `exp(a − μ) · (μ/a)^a`.
///
/// Requires `mu <= a`. Returns 1.0 when the bound is vacuous.
pub fn chernoff_upper(mu: f64, a: f64) -> f64 {
    assert!(mu >= 0.0 && a >= 0.0);
    if a <= mu {
        return 1.0;
    }
    if mu == 0.0 {
        return 0.0;
    }
    ((a - mu) + a * (mu / a).ln()).exp().min(1.0)
}

/// Lower tail: probability of at most `a` samples in a subset with mean `mu`
/// — the paper's Eqn. (3), exponential form.
///
/// Requires `a <= mu`. Returns 1.0 when the bound is vacuous.
pub fn chernoff_lower(mu: f64, a: f64) -> f64 {
    assert!(mu >= 0.0 && a >= 0.0);
    if a >= mu {
        return 1.0;
    }
    if a == 0.0 {
        return (-mu).exp().min(1.0);
    }
    ((a - mu) + a * (mu / a).ln()).exp().min(1.0)
}

/// Weight-estimate tail (the paper's Eqn. (4)): bound on
/// `Pr[a(J) ≥ h]` (or `≤ h` on the other side) for a subset of true weight
/// `w`, threshold `tau`.
pub fn weight_tail(w: f64, h: f64, tau: f64) -> f64 {
    assert!(w >= 0.0 && h >= 0.0 && tau > 0.0);
    if h == 0.0 || w == 0.0 {
        return 1.0;
    }
    (((h - w) / tau) + (h / tau) * (w / h).ln()).exp().min(1.0)
}

/// A two-sided deviation bound: probability that `|X_J − μ| ≥ d`.
pub fn chernoff_two_sided(mu: f64, d: f64) -> f64 {
    assert!(d >= 0.0);
    let up = chernoff_upper(mu, mu + d);
    let down = if mu >= d {
        chernoff_lower(mu, mu - d)
    } else {
        0.0
    };
    (up + down).min(1.0)
}

/// The ε-approximation sample-size bound of Theorem 2 (Vapnik–Chervonenkis):
/// a random sample of size `c·ε⁻²(d·log(d/ε) + log(1/δ))` is an
/// ε-approximation with probability `1 − δ`. We use `c = 1` — constants in
/// the theorem are not tight and this is only used for sizing heuristics.
pub fn epsilon_approximation_size(vc_dim: f64, eps: f64, delta: f64) -> f64 {
    assert!(vc_dim > 0.0 && eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
    (vc_dim * (vc_dim / eps).ln() + (1.0 / delta).ln()) / (eps * eps)
}

/// A two-sided confidence interval for a subset's true weight, derived by
/// inverting the weight tail bound (Eqn. 4) at confidence `1 − delta`.
///
/// Given an HT estimate `a_j` of a light-key subset (all member weights
/// below `tau`), returns `(lo, hi)` such that the true weight lies inside
/// with probability at least `1 − delta`.
pub fn weight_confidence_interval(a_j: f64, tau: f64, delta: f64) -> (f64, f64) {
    assert!(a_j >= 0.0 && tau > 0.0 && delta > 0.0 && delta < 1.0);
    // Find the smallest w_hi with Pr[a(J) <= a_j | w = w_hi] <= delta/2 and
    // the largest w_lo with Pr[a(J) >= a_j | w = w_lo] <= delta/2, by
    // bisection on the monotone tail bound.
    let target = delta / 2.0;
    // Upper endpoint: raising w makes observing a_j-or-less less likely.
    let mut lo = a_j;
    let mut hi = (a_j + tau).max(tau) * 4.0 + 10.0 * tau;
    while weight_tail(hi, a_j.max(tau * 1e-9), tau) > target {
        hi *= 2.0;
        if hi > 1e300 {
            break;
        }
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if weight_tail(mid, a_j.max(tau * 1e-9), tau) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let upper = hi;
    // Lower endpoint: lowering w makes observing a_j-or-more less likely.
    let (mut lo2, mut hi2) = (0.0, a_j);
    for _ in 0..100 {
        let mid = 0.5 * (lo2 + hi2);
        if weight_tail(mid, a_j, tau) > target {
            hi2 = mid;
        } else {
            lo2 = mid;
        }
    }
    let lower = if a_j == 0.0 { 0.0 } else { lo2 };
    (lower, upper)
}

/// Expected discrepancy scale `O(√p(R))` for a structure-oblivious sample on
/// a range of expected sample mass `p_r` — the quantity structure-aware
/// sampling improves to `O(1)` in one dimension.
pub fn oblivious_discrepancy_scale(p_r: f64) -> f64 {
    p_r.max(0.0).sqrt()
}

/// Product-structure discrepancy bound of Section 4:
/// `min{ 2d·s^((d−1)/d), p(R) }` is the VarOpt subset mass μ the error
/// concentrates around the square root of.
pub fn product_mu_bound(d: u32, s: f64, p_r: f64) -> f64 {
    assert!(d >= 1);
    let d_f = d as f64;
    (2.0 * d_f * s.powf((d_f - 1.0) / d_f)).min(p_r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_tail_decreases_in_a() {
        let mu = 10.0;
        let mut last = 1.0;
        for a in 11..40 {
            let b = chernoff_upper(mu, a as f64);
            assert!(b <= last + 1e-15, "a={a}: {b} > {last}");
            last = b;
        }
    }

    #[test]
    fn lower_tail_decreases_as_a_drops() {
        let mu = 10.0;
        let mut last = 1.0;
        for a in (0..10).rev() {
            let b = chernoff_lower(mu, a as f64);
            assert!(b <= last + 1e-15, "a={a}: {b} > {last}");
            last = b;
        }
    }

    #[test]
    fn vacuous_bounds_are_one() {
        assert_eq!(chernoff_upper(5.0, 5.0), 1.0);
        assert_eq!(chernoff_upper(5.0, 3.0), 1.0);
        assert_eq!(chernoff_lower(5.0, 5.0), 1.0);
        assert_eq!(chernoff_lower(5.0, 7.0), 1.0);
    }

    #[test]
    fn zero_mean_upper_tail_zero() {
        assert_eq!(chernoff_upper(0.0, 1.0), 0.0);
    }

    #[test]
    fn empirical_tail_dominated_by_bound() {
        // Poisson-binomial with p=0.5, n=20: check P[X>=a] <= bound.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 20;
        let mu = 10.0;
        let runs = 100_000;
        let mut counts = vec![0usize; n + 1];
        for _ in 0..runs {
            let x = (0..n).filter(|_| rng.gen_bool(0.5)).count();
            counts[x] += 1;
        }
        for a in 11..=n {
            let emp: f64 = counts[a..].iter().sum::<usize>() as f64 / runs as f64;
            let bound = chernoff_upper(mu, a as f64);
            assert!(
                emp <= bound + 0.01,
                "a={a}: empirical {emp} > bound {bound}"
            );
        }
    }

    #[test]
    fn weight_tail_sane() {
        // Upper deviation of 2x weight is unlikely.
        let b = weight_tail(100.0, 200.0, 5.0);
        assert!(b < 1e-3, "bound {b}");
        assert_eq!(weight_tail(0.0, 10.0, 1.0), 1.0);
    }

    #[test]
    fn two_sided_bound() {
        let b = chernoff_two_sided(25.0, 15.0);
        assert!(b < 0.05, "bound {b}");
        assert_eq!(chernoff_two_sided(25.0, 0.0), 1.0);
    }

    #[test]
    fn confidence_interval_contains_truth() {
        // Empirical coverage: CI from repeated VarOpt-like estimates covers
        // the truth at least 1-delta of the time. Simulate estimates as
        // tau * Binomial(n, w/(n*tau)) for a light subset.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tau = 5.0;
        let w = 100.0; // true subset weight; mu = 20 samples expected
        let n = 200; // subset size, each key weight 0.5 => p = 0.1
        let p = (w / n as f64) / tau;
        let delta = 0.1;
        let trials = 2000;
        let mut covered = 0;
        for _ in 0..trials {
            let hits = (0..n).filter(|_| rng.gen_bool(p)).count();
            let est = tau * hits as f64;
            let (lo, hi) = weight_confidence_interval(est, tau, delta);
            if lo <= w && w <= hi {
                covered += 1;
            }
        }
        let coverage = covered as f64 / trials as f64;
        assert!(
            coverage >= 1.0 - delta - 0.02,
            "coverage {coverage} below {}",
            1.0 - delta
        );
    }

    #[test]
    fn confidence_interval_monotone_in_delta() {
        let (lo1, hi1) = weight_confidence_interval(50.0, 5.0, 0.01);
        let (lo9, hi9) = weight_confidence_interval(50.0, 5.0, 0.2);
        assert!(
            lo1 <= lo9 + 1e-9 && hi9 <= hi1 + 1e-9,
            "stricter delta must widen"
        );
        assert!(lo1 < 50.0 && hi1 > 50.0);
    }

    #[test]
    fn confidence_interval_zero_estimate() {
        let (lo, hi) = weight_confidence_interval(0.0, 2.0, 0.05);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 100.0, "hi = {hi}");
    }

    #[test]
    fn eps_approx_size_grows_with_precision() {
        let a = epsilon_approximation_size(2.0, 0.1, 0.05);
        let b = epsilon_approximation_size(2.0, 0.01, 0.05);
        assert!(b > a * 50.0);
    }

    #[test]
    fn product_mu_bound_caps_at_mass() {
        // Small range: dominated by p(R).
        assert_eq!(product_mu_bound(2, 10_000.0, 3.0), 3.0);
        // Large range: dominated by the boundary term 2d·s^((d−1)/d).
        let big = product_mu_bound(2, 10_000.0, 1e9);
        assert!((big - 4.0 * 100.0).abs() < 1e-9);
    }
}
