//! Mergeable summaries — the substrate of sharded and distributed
//! summarization.
//!
//! A summary type is *mergeable* [Agarwal et al., PODS 2012] when two
//! summaries built over disjoint data sets can be combined into a summary of
//! the union that is as good as one built in a single pass — without access
//! to the underlying data. Mergeability is what lets a summarization run be
//! split across threads, shards, or machines and recombined bottom-up.
//!
//! The VarOpt family is mergeable by *threshold merge*: take the union of
//! the two samples using each key's Horvitz–Thompson adjusted weight as its
//! effective weight, recompute the IPPS threshold for the target budget over
//! the union, and re-subsample down to the budget with pair aggregation.
//! Because the effective weights are themselves unbiased estimates, the
//! tower rule keeps every subset-sum estimate of the merged sample unbiased;
//! because the union's threshold dominates both input thresholds, the VarOpt
//! invariants (IPPS inclusion probabilities, fixed size) are preserved.
//! [`crate::VarOptSampler::merge`] implements this for reservoir states;
//! `sas-sampling`'s `sharded` module implements the structure-aware variant
//! for finished samples.
//!
//! Deterministic summaries (q-digest node sets, count-sketch counter arrays)
//! merge by plain addition and ignore the random source.

use rand::Rng;

use crate::estimate::Sample;

/// A summary of a weighted data set that can absorb a summary of a
/// *disjoint* data set, yielding a summary of the union.
///
/// Implementations must preserve their estimator's unbiasedness: for any
/// fixed subset `J`, the merged summary's estimate of `w(J)` must have the
/// same expectation as an estimate from a summary built over the union
/// directly. Randomized merges draw from `rng`; deterministic merges (e.g.
/// sketch counter addition) ignore it.
pub trait Mergeable {
    /// Merges `other` into `self`. `other`'s data is assumed disjoint from
    /// `self`'s.
    fn merge_with<R: Rng + ?Sized>(&mut self, other: Self, rng: &mut R);
}

/// Finished [`Sample`]s over disjoint key sets merge by concatenation: each
/// entry keeps the adjusted weight assigned by its own sampler, so every
/// subset estimate remains the sum of two unbiased halves. (Size-bounded
/// merging — re-subsampling the union down to a budget — lives in
/// `sas-sampling::sharded`, which needs the aggregation order to be
/// structure-aware.)
impl Mergeable for Sample {
    fn merge_with<R: Rng + ?Sized>(&mut self, other: Self, _rng: &mut R) {
        self.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::SampleEntry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_merge_with_concatenates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Sample::from_entries(
            vec![SampleEntry {
                key: 1,
                weight: 2.0,
                adjusted_weight: 4.0,
            }],
            4.0,
        );
        let b = Sample::from_entries(
            vec![SampleEntry {
                key: 2,
                weight: 3.0,
                adjusted_weight: 3.0,
            }],
            1.0,
        );
        a.merge_with(b, &mut rng);
        assert_eq!(a.len(), 2);
        assert_eq!(a.tau(), 4.0);
        assert!((a.total_estimate() - 7.0).abs() < 1e-12);
    }
}
