//! Probabilistic aggregation — the paper's Section 2 and **Algorithm 1**.
//!
//! A sampling scheme can be viewed as operating on the vector `p` of
//! inclusion probabilities: entries are incrementally driven to 0 (omit) or
//! 1 (include). The output is a VarOpt sample as long as every intermediate
//! vector is a *probabilistic aggregate* of the original: expectations agree
//! entry-wise, the sum is preserved exactly, and high-order
//! inclusion/exclusion probabilities are dominated by products of the
//! first-order ones.
//!
//! `PAIR-AGGREGATE` is the primitive used by every summarization algorithm in
//! this library. It touches exactly two unset entries and sets at least one
//! of them:
//!
//! * if `pᵢ + pⱼ < 1`, the whole mass moves onto one of the two keys (the
//!   other is zeroed), choosing the survivor proportionally to its mass;
//! * if `pᵢ + pⱼ ≥ 1`, one key is *included* (set to 1) and the leftover
//!   mass `pᵢ + pⱼ − 1` stays on the other.
//!
//! Crucially, **which pair** is aggregated at each step is a free choice —
//! aggregating keys that are close in the structure is what bounds range
//! discrepancy (Sections 3–4).

use rand::Rng;

use crate::KeyId;

/// Outcome of a single [`pair_aggregate`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOutcome {
    /// Entry `i` was set (to 0 or 1); entry `j` holds any leftover mass.
    SetFirst,
    /// Entry `j` was set (to 0 or 1); entry `i` holds any leftover mass.
    SetSecond,
}

/// Performs one pair aggregation step (the paper's **Algorithm 1**) on the
/// probabilities `(pi, pj)`, both of which must lie strictly in `(0, 1)`.
///
/// Returns the updated pair and which entry was set. After the call at least
/// one entry is in `{0.0, 1.0}`; the other carries the leftover mass and
/// satisfies `pi' + pj' = pi + pj` exactly (up to floating point).
///
/// # Panics
/// Panics (debug assertions) if an input probability is outside `(0, 1)`.
pub fn pair_aggregate<R: Rng + ?Sized>(pi: f64, pj: f64, rng: &mut R) -> (f64, f64, PairOutcome) {
    debug_assert!(pi > 0.0 && pi < 1.0, "pi={pi} out of (0,1)");
    debug_assert!(pj > 0.0 && pj < 1.0, "pj={pj} out of (0,1)");
    let sum = pi + pj;
    if sum < 1.0 {
        // One key absorbs all the mass; the other is excluded.
        if rng.gen::<f64>() < pi / sum {
            (sum, 0.0, PairOutcome::SetSecond)
        } else {
            (0.0, sum, PairOutcome::SetFirst)
        }
    } else {
        // One key is included; the leftover sum-1 stays on the other.
        let denom = 2.0 - sum;
        if denom <= 0.0 {
            // pi + pj == 2 can only happen from rounding; include both.
            return (1.0, 1.0, PairOutcome::SetFirst);
        }
        if rng.gen::<f64>() < (1.0 - pj) / denom {
            (1.0, sum - 1.0, PairOutcome::SetFirst)
        } else {
            (sum - 1.0, 1.0, PairOutcome::SetSecond)
        }
    }
}

/// Classification of a probability entry during aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Entry has been driven to 0 — the key is excluded from the sample.
    Excluded,
    /// Entry has been driven to 1 — the key is included in the sample.
    Included,
    /// Entry is still strictly between 0 and 1.
    Active,
}

/// Tolerance for treating a probability as exactly 0 or 1.
///
/// Leftover masses accumulate floating-point error over long aggregation
/// chains; anything within this distance of an endpoint snaps to it.
pub const SNAP_EPS: f64 = 1e-12;

/// Mutable aggregation state: the probability vector `p` plus bookkeeping of
/// which entries are already set.
///
/// Summarization algorithms drive this state with [`AggregationState::aggregate`]
/// until no two active entries remain, then read off the sample.
///
/// ```
/// use rand::SeedableRng;
/// use sas_core::aggregate::AggregationState;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut st = AggregationState::new(vec![10, 20, 30, 40], vec![0.5, 0.5, 0.5, 0.5]);
/// // Aggregate pairs in any order — the result is always a VarOpt sample.
/// st.aggregate(0, 1, &mut rng);
/// st.aggregate(2, 3, &mut rng);
/// let actives: Vec<_> = st.active_indices().collect();
/// assert!(actives.len() <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct AggregationState {
    keys: Vec<KeyId>,
    p: Vec<f64>,
}

impl AggregationState {
    /// Creates a new state from keys and their inclusion probabilities.
    ///
    /// # Panics
    /// Panics if lengths differ or any probability is outside `[0, 1]`.
    pub fn new(keys: Vec<KeyId>, p: Vec<f64>) -> Self {
        assert_eq!(keys.len(), p.len(), "keys/probabilities length mismatch");
        for &pi in &p {
            assert!((0.0..=1.0).contains(&pi), "probability {pi} out of [0,1]");
        }
        Self { keys, p }
    }

    /// Number of entries (set and active).
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// The key at index `idx`.
    pub fn key(&self, idx: usize) -> KeyId {
        self.keys[idx]
    }

    /// The current probability of entry `idx`.
    pub fn probability(&self, idx: usize) -> f64 {
        self.p[idx]
    }

    /// Classifies entry `idx`.
    pub fn state(&self, idx: usize) -> EntryState {
        let v = self.p[idx];
        if v <= SNAP_EPS {
            EntryState::Excluded
        } else if v >= 1.0 - SNAP_EPS {
            EntryState::Included
        } else {
            EntryState::Active
        }
    }

    /// Iterator over indices still strictly between 0 and 1.
    pub fn active_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.p.len()).filter(|&i| self.state(i) == EntryState::Active)
    }

    /// Iterator over the keys that ended up included (p = 1).
    pub fn included_keys(&self) -> impl Iterator<Item = KeyId> + '_ {
        (0..self.p.len())
            .filter(|&i| self.state(i) == EntryState::Included)
            .map(|i| self.keys[i])
    }

    /// Sum of all probabilities (invariant under aggregation).
    pub fn mass(&self) -> f64 {
        self.p.iter().sum()
    }

    /// Pair-aggregates entries `i` and `j` (both must be active). At least
    /// one becomes set; returns which per [`PairOutcome`].
    ///
    /// # Panics
    /// Panics if `i == j` or either entry is not active.
    pub fn aggregate<R: Rng + ?Sized>(&mut self, i: usize, j: usize, rng: &mut R) -> PairOutcome {
        assert_ne!(i, j, "cannot aggregate an entry with itself");
        assert_eq!(self.state(i), EntryState::Active, "entry {i} not active");
        assert_eq!(self.state(j), EntryState::Active, "entry {j} not active");
        let (ni, nj, out) = pair_aggregate(self.p[i], self.p[j], rng);
        self.p[i] = snap(ni);
        self.p[j] = snap(nj);
        out
    }

    /// Finalizes a lone active entry whose probability is (within tolerance)
    /// integral; returns `true` if the entry was snapped.
    ///
    /// After a full aggregation pass with integral total mass, at most one
    /// active entry may remain and its probability must be ≈0 or ≈1 — but
    /// with a looser tolerance than [`SNAP_EPS`] because error accumulates.
    pub fn finalize_entry(&mut self, idx: usize, tol: f64) -> bool {
        let v = self.p[idx];
        if v <= tol {
            self.p[idx] = 0.0;
            true
        } else if v >= 1.0 - tol {
            self.p[idx] = 1.0;
            true
        } else {
            false
        }
    }

    /// Randomly rounds a lone active entry: include with probability `p`.
    ///
    /// Used when the total mass is not integral (the expected sample size is
    /// fractional); this preserves per-key expectations at the cost of a
    /// ±1-varying sample size.
    pub fn round_entry<R: Rng + ?Sized>(&mut self, idx: usize, rng: &mut R) {
        let v = self.p[idx];
        self.p[idx] = if rng.gen::<f64>() < v { 1.0 } else { 0.0 };
    }

    /// Consumes the state, returning `(keys, probabilities)`.
    pub fn into_parts(self) -> (Vec<KeyId>, Vec<f64>) {
        (self.keys, self.p)
    }
}

fn snap(v: f64) -> f64 {
    if v <= SNAP_EPS {
        0.0
    } else if v >= 1.0 - SNAP_EPS {
        1.0
    } else {
        v
    }
}

/// Repeatedly aggregates the active entries of `state` in arbitrary
/// (first-found) order until at most one remains. This yields a *structure
/// oblivious* VarOpt sample and is used as a final clean-up step by several
/// algorithms.
pub fn aggregate_all<R: Rng + ?Sized>(state: &mut AggregationState, rng: &mut R) {
    let mut actives: Vec<usize> = state.active_indices().collect();
    while actives.len() >= 2 {
        let i = actives[actives.len() - 2];
        let j = actives[actives.len() - 1];
        state.aggregate(i, j, rng);
        actives.retain(|&k| state.state(k) == EntryState::Active);
    }
    if let Some(&last) = actives.first() {
        if !state.finalize_entry(last, 1e-6) {
            // Non-integral total mass: randomized rounding keeps expectations.
            state.round_entry(last, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_sum_below_one_moves_all_mass() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let (a, b, _) = pair_aggregate(0.3, 0.4, &mut rng);
            assert!((a + b - 0.7).abs() < 1e-12);
            assert!(a == 0.0 || b == 0.0);
        }
    }

    #[test]
    fn pair_sum_at_least_one_includes_one() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let (a, b, _) = pair_aggregate(0.7, 0.6, &mut rng);
            assert!((a + b - 1.3).abs() < 1e-12);
            assert!(a == 1.0 || b == 1.0);
            let leftover = if a == 1.0 { b } else { a };
            assert!((leftover - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn pair_agreement_in_expectation() {
        // E[p_i'] must equal p_i. Monte Carlo with fixed seed.
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 200_000;
        for (pi, pj) in [(0.2, 0.3), (0.6, 0.7), (0.5, 0.5), (0.9, 0.05)] {
            let (mut sum_i, mut sum_j) = (0.0, 0.0);
            for _ in 0..trials {
                let (a, b, _) = pair_aggregate(pi, pj, &mut rng);
                sum_i += a;
                sum_j += b;
            }
            let (ei, ej) = (sum_i / trials as f64, sum_j / trials as f64);
            assert!((ei - pi).abs() < 5e-3, "E[pi']={ei} vs {pi}");
            assert!((ej - pj).abs() < 5e-3, "E[pj']={ej} vs {pj}");
        }
    }

    #[test]
    fn pair_inclusion_exclusion_bounds() {
        // (I): E[p_i' p_j'] <= p_i p_j  — in fact one side is always 0 or the
        // product is p_set * leftover; statistically check both bounds.
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 100_000;
        for (pi, pj) in [(0.3, 0.4), (0.8, 0.7)] {
            let mut prod_inc = 0.0;
            let mut prod_exc = 0.0;
            for _ in 0..trials {
                let (a, b, _) = pair_aggregate(pi, pj, &mut rng);
                prod_inc += a * b;
                prod_exc += (1.0 - a) * (1.0 - b);
            }
            let ei = prod_inc / trials as f64;
            let ee = prod_exc / trials as f64;
            assert!(ei <= pi * pj + 5e-3, "E[prod]={ei} vs {}", pi * pj);
            assert!(
                ee <= (1.0 - pi) * (1.0 - pj) + 5e-3,
                "E[excl]={ee} vs {}",
                (1.0 - pi) * (1.0 - pj)
            );
        }
    }

    #[test]
    fn state_tracks_included_and_excluded() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut st = AggregationState::new(vec![1, 2], vec![0.9, 0.8]);
        st.aggregate(0, 1, &mut rng);
        // Sum 1.7 ≥ 1: one included, other has 0.7 active mass.
        let included: Vec<_> = st.included_keys().collect();
        assert_eq!(included.len(), 1);
        assert_eq!(st.active_indices().count(), 1);
        assert!((st.mass() - 1.7).abs() < 1e-12);
    }

    #[test]
    fn aggregate_all_reaches_fixed_size() {
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..50 {
            let n = 20;
            let p = vec![0.25; n]; // total mass 5 — integral
            let keys: Vec<KeyId> = (0..n as u64).collect();
            let mut st = AggregationState::new(keys, p);
            aggregate_all(&mut st, &mut rng);
            let count = st.included_keys().count();
            assert_eq!(count, 5, "trial {trial}: got {count} included");
            assert_eq!(st.active_indices().count(), 0);
        }
    }

    #[test]
    fn aggregate_all_nonintegral_mass_rounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 2];
        for _ in 0..200 {
            let mut st = AggregationState::new(vec![1, 2, 3], vec![0.5, 0.5, 0.5]);
            aggregate_all(&mut st, &mut rng);
            let c = st.included_keys().count();
            assert!(c == 1 || c == 2, "count {c}");
            counts[c - 1] += 1;
        }
        // Expected size 1.5: both sizes must occur.
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    fn per_key_inclusion_unbiased_through_full_aggregation() {
        // End-to-end VarOpt property: Pr[key included] == p_i.
        let mut rng = StdRng::seed_from_u64(10);
        let p = [0.1, 0.4, 0.7, 0.8]; // mass 2.0
        let trials = 50_000;
        let mut hits = [0usize; 4];
        for _ in 0..trials {
            let mut st = AggregationState::new(vec![0, 1, 2, 3], p.to_vec());
            aggregate_all(&mut st, &mut rng);
            for k in st.included_keys() {
                hits[k as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let freq = h as f64 / trials as f64;
            assert!(
                (freq - p[i]).abs() < 0.01,
                "key {i}: freq {freq} vs p {}",
                p[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn aggregating_set_entry_panics() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut st = AggregationState::new(vec![1, 2], vec![1.0, 0.5]);
        st.aggregate(0, 1, &mut rng);
    }

    #[test]
    fn snap_behaviour() {
        assert_eq!(snap(1e-15), 0.0);
        assert_eq!(snap(1.0 - 1e-15), 1.0);
        assert_eq!(snap(0.5), 0.5);
    }
}
