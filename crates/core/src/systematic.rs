//! Systematic sampling over an ordered domain (Appendix D).
//!
//! Associate key `i` (in order) with the interval
//! `Hᵢ = (Σ_{j<i} pⱼ, Σ_{j≤i} pⱼ]` on the positive axis. Pick a uniform
//! offset `α ∈ [0,1)` and include every key whose interval contains `h + α`
//! for some integer `h`.
//!
//! Properties (as discussed in the paper):
//! * maximum interval discrepancy Δ < 1 — better than any VarOpt scheme can
//!   guarantee (Theorem 1 shows VarOpt cannot beat Δ = 2);
//! * satisfies VarOpt conditions (i) IPPS inclusion probabilities and
//!   (ii) fixed sample size, but **not** (iii): inclusions are positively
//!   correlated, so Chernoff tail bounds do *not* apply and some subsets are
//!   estimated with high variance.
//!
//! A deterministic variant (`α` fixed to pick intervals containing integers)
//! is also provided; it loses unbiasedness but maximizes reproducibility.

use rand::Rng;

use crate::estimate::{Sample, SampleEntry};
use crate::{ipps, WeightedKey};

/// Draws a systematic sample of expected size `s` from keys taken in the
/// order given by `data`.
///
/// Uses IPPS probabilities with the exact threshold, then the random-offset
/// systematic scheme: unbiased, fixed size ⌊s⌋ or ⌈s⌉, interval discrepancy
/// Δ < 1.
pub fn sample<R: Rng + ?Sized>(data: &[WeightedKey], s: usize, rng: &mut R) -> Sample {
    let tau = ipps::threshold_for_keys(data, s as f64);
    let alpha: f64 = rng.gen();
    sample_with_offset(data, tau, alpha)
}

/// Systematic sample with explicit threshold and offset (deterministic given
/// both). `alpha` must lie in `[0, 1)`.
pub fn sample_with_offset(data: &[WeightedKey], tau: f64, alpha: f64) -> Sample {
    assert!((0.0..1.0).contains(&alpha), "offset {alpha} out of [0,1)");
    let mut entries = Vec::new();
    let mut cum = 0.0_f64;
    for wk in data {
        let p = if tau <= 0.0 {
            if wk.weight > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            (wk.weight / tau).min(1.0)
        };
        let lo = cum;
        cum += p;
        // Include iff (lo, cum] contains h + alpha for some integer h,
        // i.e. floor(cum - alpha) > floor(lo - alpha).
        let crossed = (cum - alpha).floor() > (lo - alpha).floor();
        if crossed {
            entries.push(SampleEntry {
                key: wk.key,
                weight: wk.weight,
                adjusted_weight: if tau > 0.0 {
                    wk.weight.max(tau)
                } else {
                    wk.weight
                },
            });
        }
    }
    Sample::from_entries(entries, tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_data(n: u64) -> Vec<WeightedKey> {
        (0..n).map(|k| WeightedKey::new(k, 1.0)).collect()
    }

    #[test]
    fn sample_size_is_floor_or_ceil() {
        let data = uniform_data(100);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = sample(&data, 7, &mut rng);
            assert!(s.len() == 7, "systematic with integral mass: {}", s.len());
        }
    }

    #[test]
    fn prefix_discrepancy_below_one() {
        // For every prefix, |#sampled − Σp| < 1.
        let data: Vec<WeightedKey> = (0..200)
            .map(|k| WeightedKey::new(k, 1.0 + (k % 5) as f64))
            .collect();
        let tau = ipps::threshold_for_keys(&data, 20.0);
        let p: Vec<f64> = data.iter().map(|wk| (wk.weight / tau).min(1.0)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let alpha: f64 = rng.gen();
            let s = sample_with_offset(&data, tau, alpha);
            let in_sample: std::collections::HashSet<u64> = s.keys().collect();
            let mut cum = 0.0;
            let mut count = 0.0;
            for (i, wk) in data.iter().enumerate() {
                cum += p[i];
                if in_sample.contains(&wk.key) {
                    count += 1.0;
                }
                assert!(
                    (count - cum).abs() < 1.0 + 1e-9,
                    "prefix {i}: count {count} vs mass {cum}"
                );
            }
        }
    }

    #[test]
    fn interval_discrepancy_below_one() {
        // Δ < 1 on all intervals follows from prefix property (difference of
        // two prefixes each < 1 apart, but systematic is stronger: check
        // directly on random intervals).
        let data = uniform_data(60);
        let tau = ipps::threshold_for_keys(&data, 12.0);
        let s = sample_with_offset(&data, tau, 0.37);
        let in_sample: std::collections::HashSet<u64> = s.keys().collect();
        let p = 12.0 / 60.0;
        for a in 0..60u64 {
            for b in a..60u64 {
                let expect = (b - a + 1) as f64 * p;
                let got = (a..=b).filter(|k| in_sample.contains(k)).count() as f64;
                assert!(
                    (got - expect).abs() < 1.0 + 1e-9,
                    "[{a},{b}]: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn unbiased_inclusion() {
        let data: Vec<WeightedKey> = (0..40)
            .map(|k| WeightedKey::new(k, ((k % 4) + 1) as f64))
            .collect();
        let tau = ipps::threshold_for_keys(&data, 10.0);
        let p: Vec<f64> = data.iter().map(|wk| (wk.weight / tau).min(1.0)).collect();
        let runs = 40_000;
        let mut hits = vec![0usize; 40];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..runs {
            let alpha: f64 = rng.gen();
            let s = sample_with_offset(&data, tau, alpha);
            for e in s.iter() {
                hits[e.key as usize] += 1;
            }
        }
        for i in 0..40 {
            let freq = hits[i] as f64 / runs as f64;
            assert!(
                (freq - p[i]).abs() < 0.02,
                "key {i}: freq {freq} vs p {}",
                p[i]
            );
        }
    }

    #[test]
    fn heavy_keys_always_included() {
        let mut data = uniform_data(30);
        data.push(WeightedKey::new(999, 100.0));
        let tau = ipps::threshold_for_keys(&data, 5.0);
        for alpha in [0.0, 0.25, 0.5, 0.75, 0.999] {
            let s = sample_with_offset(&data, tau, alpha);
            assert!(s.contains(999), "alpha {alpha}");
        }
    }
}
