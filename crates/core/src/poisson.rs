//! Poisson IPPS sampling: independent inclusion decisions.
//!
//! Each key is included independently with probability `pᵢ = min(1, wᵢ/τ_s)`.
//! The sample size is `s` only in expectation (variance Σ pᵢ(1−pᵢ)), which is
//! exactly what VarOpt improves on. Provided as a baseline and because its
//! independence makes some analyses (and tests) simpler.

use rand::Rng;

use crate::estimate::{Sample, SampleEntry};
use crate::{ipps, WeightedKey};

/// Draws a Poisson IPPS sample of expected size `s` from `data`.
///
/// The threshold is computed exactly (two passes conceptually; one sort).
pub fn sample<R: Rng + ?Sized>(data: &[WeightedKey], s: usize, rng: &mut R) -> Sample {
    let tau = ipps::threshold_for_keys(data, s as f64);
    sample_with_tau(data, tau, rng)
}

/// Draws a Poisson IPPS sample with a fixed threshold `τ`.
pub fn sample_with_tau<R: Rng + ?Sized>(data: &[WeightedKey], tau: f64, rng: &mut R) -> Sample {
    let entries = data
        .iter()
        .filter_map(|wk| {
            let p = if tau <= 0.0 {
                if wk.weight > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                (wk.weight / tau).min(1.0)
            };
            let include = p >= 1.0 || rng.gen::<f64>() < p;
            include.then_some(SampleEntry {
                key: wk.key,
                weight: wk.weight,
                adjusted_weight: if tau > 0.0 {
                    wk.weight.max(tau)
                } else {
                    wk.weight
                },
            })
        })
        .collect();
    Sample::from_entries(entries, tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expected_size_matches() {
        let data: Vec<WeightedKey> = (0..500)
            .map(|k| WeightedKey::new(k, 1.0 + (k % 13) as f64))
            .collect();
        let runs = 2000;
        let mut total = 0usize;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..runs {
            total += sample(&data, 40, &mut rng).len();
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 40.0).abs() < 1.0, "mean size {mean}");
    }

    #[test]
    fn size_varies_unlike_varopt() {
        let data: Vec<WeightedKey> = (0..200).map(|k| WeightedKey::new(k, 1.0)).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let sizes: Vec<usize> = (0..50).map(|_| sample(&data, 20, &mut rng).len()).collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(distinct.len() > 1, "Poisson sizes should vary: {sizes:?}");
    }

    #[test]
    fn unbiased_total() {
        let data: Vec<WeightedKey> = (0..300)
            .map(|k| WeightedKey::new(k, ((k % 7) + 1) as f64))
            .collect();
        let truth: f64 = crate::total_weight(&data);
        let runs = 3000;
        let mut sum = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..runs {
            sum += sample(&data, 30, &mut rng).total_estimate();
        }
        let mean = sum / runs as f64;
        assert!((mean - truth).abs() / truth < 0.02, "{mean} vs {truth}");
    }

    #[test]
    fn tau_zero_includes_everything() {
        let data = vec![WeightedKey::new(1, 2.0), WeightedKey::new(2, 0.0)];
        let mut rng = StdRng::seed_from_u64(6);
        let s = sample_with_tau(&data, 0.0, &mut rng);
        assert_eq!(s.len(), 1); // zero-weight key excluded
        assert!(s.contains(1));
    }
}
