//! Range discrepancy — the central quality measure of the paper.
//!
//! For a sample `S` and range `R`, the discrepancy is
//! `Δ(S, R) = | |S ∩ R| − Σ_{i∈R} pᵢ |`: how far the number of sampled keys
//! in the range is from its expectation. The absolute error of the HT
//! estimator on `R` is exactly `τ · Δ(S, R)`, so low discrepancy means
//! accurate range queries.
//!
//! Structure-oblivious VarOpt achieves `Δ(S, R) = O(√p(R))` in expectation;
//! the structure-aware schemes of `sas-sampling` achieve `Δ < 1`
//! (hierarchies), `Δ < 2` (orders), and `O(d·s^((d−1)/(2d)))`
//! (d-dimensional boxes).

use std::collections::HashSet;

use crate::estimate::Sample;
use crate::KeyId;

/// Discrepancy of a sample on one range, where the range is given as the set
/// of member keys with their inclusion probabilities.
///
/// `range` yields `(key, p)` pairs; keys outside the data (p = 0) contribute
/// nothing.
pub fn range_discrepancy(sample: &Sample, range: impl IntoIterator<Item = (KeyId, f64)>) -> f64 {
    let in_sample: HashSet<KeyId> = sample.keys().collect();
    let mut expected = 0.0;
    let mut actual = 0usize;
    for (key, p) in range {
        expected += p;
        if in_sample.contains(&key) {
            actual += 1;
        }
    }
    (actual as f64 - expected).abs()
}

/// Maximum discrepancy over a family of ranges, each given as `(key, p)`
/// membership lists.
pub fn max_discrepancy<'a, I, R>(sample: &Sample, ranges: I) -> f64
where
    I: IntoIterator<Item = R>,
    R: IntoIterator<Item = (KeyId, f64)> + 'a,
{
    ranges
        .into_iter()
        .map(|r| range_discrepancy(sample, r))
        .fold(0.0, f64::max)
}

/// Helper that evaluates discrepancy using a membership predicate instead of
/// an explicit member list: the expectation is accumulated over `data` keys
/// satisfying the predicate.
pub fn predicate_discrepancy(
    sample: &Sample,
    data_probs: &[(KeyId, f64)],
    mut pred: impl FnMut(KeyId) -> bool,
) -> f64 {
    let expected: f64 = data_probs
        .iter()
        .filter(|(k, _)| pred(*k))
        .map(|(_, p)| p)
        .sum();
    let actual = sample.subset_count(&mut pred) as f64;
    (actual - expected).abs()
}

/// Summary statistics of discrepancies over a battery of ranges: useful for
/// the experimental harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscrepancyStats {
    /// Largest discrepancy observed.
    pub max: f64,
    /// Mean discrepancy.
    pub mean: f64,
    /// Root-mean-square discrepancy.
    pub rms: f64,
    /// Number of ranges evaluated.
    pub count: usize,
}

impl DiscrepancyStats {
    /// Aggregates a sequence of per-range discrepancies.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut max = 0.0_f64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let mut count = 0usize;
        for v in values {
            max = max.max(v);
            sum += v;
            sumsq += v * v;
            count += 1;
        }
        if count == 0 {
            return Self {
                max: 0.0,
                mean: 0.0,
                rms: 0.0,
                count: 0,
            };
        }
        Self {
            max,
            mean: sum / count as f64,
            rms: (sumsq / count as f64).sqrt(),
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::SampleEntry;

    fn make_sample(keys: &[KeyId]) -> Sample {
        Sample::from_entries(
            keys.iter()
                .map(|&key| SampleEntry {
                    key,
                    weight: 1.0,
                    adjusted_weight: 2.0,
                })
                .collect(),
            2.0,
        )
    }

    #[test]
    fn exact_range_has_zero_discrepancy() {
        let s = make_sample(&[1, 3]);
        // Range {1,2,3,4} with probabilities summing to 2, two sampled.
        let d = range_discrepancy(&s, [(1, 0.5), (2, 0.5), (3, 0.5), (4, 0.5)]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn over_represented_range() {
        let s = make_sample(&[1, 2, 3]);
        let d = range_discrepancy(&s, [(1, 0.5), (2, 0.5), (3, 0.5)]);
        assert!((d - 1.5).abs() < 1e-12);
    }

    #[test]
    fn under_represented_range() {
        let s = make_sample(&[]);
        let d = range_discrepancy(&s, [(1, 0.9), (2, 0.9)]);
        assert!((d - 1.8).abs() < 1e-12);
    }

    #[test]
    fn max_over_family() {
        let s = make_sample(&[1]);
        let family = vec![vec![(1u64, 0.5), (2, 0.5)], vec![(3u64, 0.75)]];
        let d = max_discrepancy(&s, family);
        assert!((d - 0.75).abs() < 1e-12);
    }

    #[test]
    fn predicate_variant_matches() {
        let s = make_sample(&[2, 4]);
        let probs: Vec<(KeyId, f64)> = (1..=5).map(|k| (k, 0.4)).collect();
        let d = predicate_discrepancy(&s, &probs, |k| k % 2 == 0);
        // Expectation over {2,4} = 0.8; actual = 2.
        assert!((d - 1.2).abs() < 1e-12);
    }

    #[test]
    fn stats_aggregation() {
        let st = DiscrepancyStats::from_values([1.0, 2.0, 3.0]);
        assert_eq!(st.max, 3.0);
        assert!((st.mean - 2.0).abs() < 1e-12);
        assert!((st.rms - (14.0_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(st.count, 3);
        let empty = DiscrepancyStats::from_values([]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0.0);
    }
}
