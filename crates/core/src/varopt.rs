//! Streaming VarOpt_s sampling (Cohen, Duffield, Kaplan, Lund, Thorup,
//! SODA 2009) — the structure-oblivious baseline ("obliv" in the paper's
//! experiments) and the guide sample of the two-pass algorithms.
//!
//! The sampler maintains a reservoir of exactly `s` keys (once `s` items have
//! arrived). Keys whose weight exceeds the current threshold `τ` are kept
//! with their original weight ("large"); all other kept keys share the
//! adjusted weight `τ` ("small"). When a new key arrives the threshold is
//! raised to the value at which the expected number of candidates equals `s`,
//! and exactly one candidate is dropped — each candidate `i` with probability
//! `1 − min(1, wᵢ/τ')`, which sum to exactly 1.
//!
//! The resulting distribution is VarOpt: IPPS inclusion probabilities, fixed
//! sample size, and the inclusion/exclusion product bounds (conditions
//! (i)–(iii) of Appendix A).

use rand::Rng;

use crate::aggregate::{aggregate_all, AggregationState};
use crate::estimate::{Sample, SampleEntry};
use crate::merge::Mergeable;
use crate::{ipps, KeyId, WeightedKey};

/// One key held in the VarOpt reservoir.
#[derive(Debug, Clone, Copy)]
struct Held {
    key: KeyId,
    /// Original weight.
    weight: f64,
}

/// Streaming variance-optimal sampler with fixed reservoir size `s`.
///
/// ```
/// use rand::SeedableRng;
/// use sas_core::varopt::VarOptSampler;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sampler = VarOptSampler::new(8);
/// for i in 0..1000u64 {
///     sampler.push(i, 1.0 + (i % 7) as f64, &mut rng);
/// }
/// let sample = sampler.finish();
/// assert_eq!(sample.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct VarOptSampler {
    s: usize,
    /// Keys with weight > τ, in a min-heap ordered by weight.
    large: Vec<Held>,
    /// Keys with adjusted weight τ.
    small: Vec<KeyId>,
    /// Current threshold (adjusted weight of every small key).
    tau: f64,
    /// Count of processed items.
    count: usize,
    /// Total processed weight (for diagnostics).
    total_weight: f64,
}

impl VarOptSampler {
    /// Creates a sampler with reservoir size `s`.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: usize) -> Self {
        assert!(s > 0, "sample size must be positive");
        Self {
            s,
            large: Vec::with_capacity(s + 1),
            small: Vec::new(),
            tau: 0.0,
            count: 0,
            total_weight: 0.0,
        }
    }

    /// The reservoir capacity `s`.
    pub fn capacity(&self) -> usize {
        self.s
    }

    /// Number of items processed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current threshold `τ` (0 until the reservoir overflows).
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Current number of keys held (min(count, s)).
    pub fn held(&self) -> usize {
        self.large.len() + self.small.len()
    }

    /// Processes one `(key, weight)` item.
    ///
    /// Zero-weight keys are counted but never held.
    pub fn push<R: Rng + ?Sized>(&mut self, key: KeyId, weight: f64, rng: &mut R) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "invalid weight {weight}"
        );
        self.count += 1;
        self.total_weight += weight;
        if weight == 0.0 {
            return;
        }
        if self.held() < self.s {
            self.heap_push(Held { key, weight });
            return;
        }
        // Reservoir full: s+1 candidates — current holdings plus the new key.
        // Find τ' ≥ τ with Σ min(1, w/τ') = s over candidates, where small
        // keys have (adjusted) weight τ.
        //
        // Pool the new key (if light) and pop large keys below τ' into a
        // "shrink pool"; all pool members and all small keys end up with
        // adjusted weight τ', and exactly one candidate is dropped.
        let mut pool: Vec<Held> = Vec::new();
        let mut pool_sum = 0.0;
        let mut small_candidate_new = false;

        if weight > self.tau {
            self.heap_push(Held { key, weight });
        } else {
            pool.push(Held { key, weight });
            pool_sum += weight;
            small_candidate_new = true;
        }

        // Iteratively raise τ'. Small keys contribute n_small·τ/τ'; pool
        // members w/τ'; remaining large keys contribute 1 each.
        let n_small = self.small.len() as f64;
        let mut tau_new;
        loop {
            let large_cnt = self.large.len() as f64;
            // Solve: large_cnt + (n_small*tau + pool_sum)/τ' = s
            let denom = self.s as f64 - large_cnt;
            tau_new = if denom <= 0.0 {
                f64::INFINITY
            } else {
                (n_small * self.tau + pool_sum) / denom
            };
            match self.heap_peek() {
                Some(min_w) if min_w <= tau_new => {
                    let h = self.heap_pop().expect("non-empty");
                    pool_sum += h.weight;
                    pool.push(h);
                }
                _ => break,
            }
        }
        debug_assert!(tau_new.is_finite(), "threshold diverged");
        debug_assert!(tau_new >= self.tau - 1e-12);

        // Drop exactly one candidate. Drop probabilities: small key (weight
        // τ): 1 − τ/τ'; pool member: 1 − w/τ'; large key: 0. They sum to 1.
        let drop_small_each = 1.0 - self.tau / tau_new;
        let total_small_drop = drop_small_each * n_small;
        let r: f64 = rng.gen::<f64>();
        if r < total_small_drop && !self.small.is_empty() {
            // Drop a uniformly random small key; all pool members become
            // small keys at the new threshold.
            let idx = (r / drop_small_each) as usize;
            let idx = idx.min(self.small.len() - 1);
            self.small.swap_remove(idx);
            self.small.extend(pool.iter().map(|h| h.key));
        } else {
            let mut acc = total_small_drop;
            let mut dropped = false;
            let mut keep_from_pool: Vec<KeyId> = Vec::with_capacity(pool.len());
            for h in &pool {
                let dp = 1.0 - h.weight / tau_new;
                if !dropped && r < acc + dp {
                    dropped = true; // drop h
                } else {
                    keep_from_pool.push(h.key);
                }
                acc += dp;
            }
            if !dropped {
                // Numerical slack: drop the lightest pool member, or if the
                // pool is empty (can't happen when probabilities sum to 1,
                // but guard anyway), drop a random small key.
                if let Some(k) = keep_from_pool.pop() {
                    let _ = k;
                } else if !self.small.is_empty() {
                    let idx = rng.gen_range(0..self.small.len());
                    self.small.swap_remove(idx);
                } else if small_candidate_new {
                    // nothing held the new key; it is simply not added
                }
            }
            self.small.extend(keep_from_pool);
        }
        self.tau = tau_new;
        debug_assert_eq!(self.held(), self.s);
    }

    /// Merges `other` (a VarOpt reservoir over a disjoint key set) into this
    /// sampler, re-subsampling the union down to this sampler's budget `s` —
    /// the threshold merge that makes VarOpt a mergeable summary.
    ///
    /// Every held key enters the merge with its *effective* weight: large
    /// keys keep their original weight, small keys carry their reservoir's
    /// threshold (their HT adjusted weight). A new threshold `τ'` solving
    /// `Σ min(1, w̃ᵢ/τ') = s` over the union is computed; keys at or above
    /// `τ'` stay large, the rest are pair-aggregated down to exactly the
    /// remaining slots with inclusion probability `w̃ᵢ/τ'` each. When the
    /// union overflows the budget and both inputs are non-empty,
    /// `τ' > max(τ_a, τ_b)` — the threshold-max merge. When the union fits,
    /// everything is kept at its effective weight and `τ` restarts at 0.
    ///
    /// Because effective weights are unbiased for the true weights and the
    /// re-subsampling is HT with respect to them, the merged reservoir's
    /// estimates remain unbiased for any subset of the combined stream, and
    /// the result is a valid VarOpt state: streaming can continue on it.
    ///
    /// `other`'s capacity may differ; the merged capacity is `self`'s.
    pub fn merge<R: Rng + ?Sized>(&mut self, other: VarOptSampler, rng: &mut R) {
        self.count += other.count;
        self.total_weight += other.total_weight;
        // Trivial merges keep the existing reservoir state untouched.
        if other.held() == 0 {
            return;
        }
        if self.held() == 0 && other.held() <= self.s {
            self.large = other.large;
            self.small = other.small;
            self.tau = other.tau;
            return;
        }

        // Pool every held key with its effective (HT-adjusted) weight.
        let tau_self = self.tau;
        let mut entries: Vec<Held> = Vec::with_capacity(self.held() + other.held());
        entries.append(&mut self.large);
        entries.extend(self.small.drain(..).map(|key| Held {
            key,
            weight: tau_self,
        }));
        entries.extend(other.large);
        entries.extend(other.small.into_iter().map(|key| Held {
            key,
            weight: other.tau,
        }));

        let weights: Vec<f64> = entries.iter().map(|h| h.weight).collect();
        let tau_new = ipps::threshold_exact(&weights, self.s as f64);
        if tau_new <= 0.0 {
            // The union fits in the budget: keep every key, restarting the
            // reservoir from τ = 0 with effective weights as weights. (The
            // tower property keeps all estimates unbiased; classifying a key
            // whose effective weight is below the other input's threshold as
            // "small" would instead inflate it — a bias.) The threshold
            // re-grows as streaming continues.
            self.tau = 0.0;
            for h in entries {
                self.heap_push(h);
            }
            return;
        }
        self.tau = tau_new;

        // Subsample: certain keys (w̃ ≥ τ') stay large with exact weight;
        // the rest compete for the remaining slots with p = w̃/τ'. The
        // active mass is exactly s − #certain, so pair aggregation resolves
        // to exactly that many survivors.
        let mut active_keys: Vec<KeyId> = Vec::new();
        let mut active_probs: Vec<f64> = Vec::new();
        for h in entries {
            if h.weight >= tau_new {
                self.heap_push(h);
            } else {
                active_keys.push(h.key);
                active_probs.push(h.weight / tau_new);
            }
        }
        let mut state = AggregationState::new(active_keys, active_probs);
        aggregate_all(&mut state, rng);
        self.small.extend(state.included_keys());
        debug_assert!(
            self.held() <= self.s,
            "merge overfilled the reservoir: {} > {}",
            self.held(),
            self.s
        );
    }

    /// Finalizes the sampler into a [`Sample`] with Horvitz–Thompson
    /// adjusted weights.
    pub fn finish(self) -> Sample {
        let mut entries: Vec<SampleEntry> = Vec::with_capacity(self.held());
        for h in &self.large {
            entries.push(SampleEntry {
                key: h.key,
                weight: h.weight,
                adjusted_weight: h.weight.max(self.tau),
            });
        }
        for &k in &self.small {
            entries.push(SampleEntry {
                key: k,
                // The original weight of a small key is not retained by the
                // streaming algorithm; its HT adjusted weight is exactly τ.
                weight: self.tau,
                adjusted_weight: self.tau,
            });
        }
        Sample::from_entries(entries, self.tau)
    }

    // -- state exposure for persistence ------------------------------------
    //
    // A reservoir is durable state: `sas-summaries` serializes it so that
    // streaming can continue in another process. The large partition is
    // exposed (and restored) in its exact heap order so a decode→encode
    // round trip is byte-faithful and the restored sampler draws the same
    // random decisions as the original would.

    /// The large partition (keys with weight above τ) in internal heap
    /// order, as `(key, weight)` pairs.
    pub fn large_entries(&self) -> impl Iterator<Item = (KeyId, f64)> + '_ {
        self.large.iter().map(|h| (h.key, h.weight))
    }

    /// The small partition: keys whose adjusted weight is exactly τ.
    pub fn small_keys(&self) -> &[KeyId] {
        &self.small
    }

    /// Total weight processed so far.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Reassembles a sampler from persisted state. `large` must be given in
    /// the heap order produced by [`VarOptSampler::large_entries`].
    ///
    /// Validates every invariant a corrupted file could violate: positive
    /// capacity, finite non-negative weights and threshold, `held ≤ s`,
    /// `count ≥ held`, small keys only after the reservoir has a threshold,
    /// and the min-heap property of the large partition.
    pub fn from_parts(
        s: usize,
        large: Vec<(KeyId, f64)>,
        small: Vec<KeyId>,
        tau: f64,
        count: usize,
        total_weight: f64,
    ) -> Result<Self, String> {
        if s == 0 {
            return Err("capacity must be positive".into());
        }
        if !(tau.is_finite() && tau >= 0.0) {
            return Err(format!("invalid threshold {tau}"));
        }
        if !(total_weight.is_finite() && total_weight >= 0.0) {
            return Err(format!("invalid total weight {total_weight}"));
        }
        let held = large.len() + small.len();
        if held > s {
            return Err(format!("{held} held keys exceed capacity {s}"));
        }
        if count < held {
            return Err(format!("count {count} below {held} held keys"));
        }
        if tau == 0.0 && !small.is_empty() {
            return Err("small keys require a positive threshold".into());
        }
        for &(_, w) in &large {
            if !(w.is_finite() && w > 0.0) {
                return Err(format!("invalid large-key weight {w}"));
            }
            // The large partition holds keys at or above the threshold
            // (streaming keeps w > τ; a merge may leave w == τ', and a
            // restart sets τ = 0 under arbitrary positive weights).
            if w < tau {
                return Err(format!("large-key weight {w} below threshold {tau}"));
            }
        }
        for (i, &(_, w)) in large.iter().enumerate() {
            if i > 0 && large[(i - 1) / 2].1 > w {
                return Err("large partition is not in heap order".into());
            }
        }
        Ok(Self {
            s,
            large: large
                .into_iter()
                .map(|(key, weight)| Held { key, weight })
                .collect(),
            small,
            tau,
            count,
            total_weight,
        })
    }

    /// Convenience: sample a whole slice.
    pub fn sample_slice<R: Rng + ?Sized>(s: usize, data: &[WeightedKey], rng: &mut R) -> Sample {
        let mut sampler = Self::new(s);
        for wk in data {
            sampler.push(wk.key, wk.weight, rng);
        }
        sampler.finish()
    }

    // -- tiny inline min-heap on `large`, keyed by weight -------------------

    fn heap_push(&mut self, h: Held) {
        self.large.push(h);
        let mut i = self.large.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.large[parent].weight > self.large[i].weight {
                self.large.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_peek(&self) -> Option<f64> {
        self.large.first().map(|h| h.weight)
    }

    fn heap_pop(&mut self) -> Option<Held> {
        if self.large.is_empty() {
            return None;
        }
        let last = self.large.len() - 1;
        self.large.swap(0, last);
        let out = self.large.pop();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < self.large.len() && self.large[l].weight < self.large[m].weight {
                m = l;
            }
            if r < self.large.len() && self.large[r].weight < self.large[m].weight {
                m = r;
            }
            if m == i {
                break;
            }
            self.large.swap(i, m);
            i = m;
        }
        out
    }
}

impl Mergeable for VarOptSampler {
    fn merge_with<R: Rng + ?Sized>(&mut self, other: Self, rng: &mut R) {
        self.merge(other, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data_mixed(n: usize, seed: u64) -> Vec<WeightedKey> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|k| {
                let w = if rng.gen_bool(0.1) {
                    rng.gen_range(50.0..200.0)
                } else {
                    rng.gen_range(0.1..2.0)
                };
                WeightedKey::new(k, w)
            })
            .collect()
    }

    #[test]
    fn fixed_sample_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for s in [1, 2, 5, 17, 64] {
            let data = data_mixed(500, 99);
            let sample = VarOptSampler::sample_slice(s, &data, &mut rng);
            assert_eq!(sample.len(), s, "s={s}");
        }
    }

    #[test]
    fn fewer_items_than_s_keeps_all() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = data_mixed(5, 7);
        let sample = VarOptSampler::sample_slice(10, &data, &mut rng);
        assert_eq!(sample.len(), 5);
        // With everything kept, adjusted weights equal original weights.
        let est: f64 = sample.total_estimate();
        let truth: f64 = crate::total_weight(&data);
        assert!((est - truth).abs() < 1e-9);
    }

    #[test]
    fn total_weight_estimate_unbiased() {
        // Mean of total-weight estimates over many runs ≈ true total.
        let data = data_mixed(300, 5);
        let truth = crate::total_weight(&data);
        let runs = 400;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let sample = VarOptSampler::sample_slice(30, &data, &mut rng);
            sum += sample.total_estimate();
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.02,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn inclusion_probabilities_are_ipps() {
        // Empirical inclusion frequency of each key ≈ min(1, w/τ_s).
        let data: Vec<WeightedKey> = vec![
            WeightedKey::new(0, 8.0),
            WeightedKey::new(1, 4.0),
            WeightedKey::new(2, 2.0),
            WeightedKey::new(3, 1.0),
            WeightedKey::new(4, 1.0),
        ];
        let s = 3;
        let tau = crate::ipps::threshold_for_keys(&data, s as f64);
        let p: Vec<f64> = data.iter().map(|wk| (wk.weight / tau).min(1.0)).collect();
        let runs = 60_000;
        let mut hits = vec![0usize; data.len()];
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..runs {
            let sample = VarOptSampler::sample_slice(s, &data, &mut rng);
            for e in sample.iter() {
                hits[e.key as usize] += 1;
            }
        }
        for i in 0..data.len() {
            let freq = hits[i] as f64 / runs as f64;
            assert!(
                (freq - p[i]).abs() < 0.015,
                "key {i}: freq {freq} vs p {}",
                p[i]
            );
        }
    }

    #[test]
    fn heavy_keys_always_kept() {
        // A key much heavier than τ_s must appear in every sample.
        let mut data = data_mixed(200, 3);
        data.push(WeightedKey::new(9999, 1e6));
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sample = VarOptSampler::sample_slice(10, &data, &mut rng);
            assert!(sample.iter().any(|e| e.key == 9999), "seed {seed}");
        }
    }

    #[test]
    fn zero_weight_keys_never_held() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = VarOptSampler::new(4);
        for i in 0..100 {
            sampler.push(i, 0.0, &mut rng);
        }
        assert_eq!(sampler.held(), 0);
        sampler.push(100, 5.0, &mut rng);
        assert_eq!(sampler.finish().len(), 1);
    }

    #[test]
    fn uniform_weights_behave_like_reservoir() {
        // With uniform weights VarOpt degenerates to reservoir sampling:
        // every key has inclusion probability s/n.
        let n = 60;
        let s = 12;
        let data: Vec<WeightedKey> = (0..n).map(|k| WeightedKey::new(k, 1.0)).collect();
        let runs = 40_000;
        let mut hits = vec![0usize; n as usize];
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..runs {
            let sample = VarOptSampler::sample_slice(s, &data, &mut rng);
            assert_eq!(sample.len(), s);
            for e in sample.iter() {
                hits[e.key as usize] += 1;
            }
        }
        let target = s as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            let freq = h as f64 / runs as f64;
            assert!(
                (freq - target).abs() < 0.015,
                "key {i}: freq {freq} vs {target}"
            );
        }
    }

    /// Splits `data` in two, streams each half into its own sampler, merges.
    fn merged_halves(data: &[WeightedKey], s: usize, rng: &mut StdRng) -> VarOptSampler {
        let mid = data.len() / 2;
        let mut a = VarOptSampler::new(s);
        let mut b = VarOptSampler::new(s);
        for wk in &data[..mid] {
            a.push(wk.key, wk.weight, rng);
        }
        for wk in &data[mid..] {
            b.push(wk.key, wk.weight, rng);
        }
        a.merge(b, rng);
        a
    }

    #[test]
    fn merge_yields_exact_budget() {
        let data = data_mixed(600, 31);
        for s in [1, 2, 7, 25, 64] {
            let mut rng = StdRng::seed_from_u64(100 + s as u64);
            let merged = merged_halves(&data, s, &mut rng);
            assert_eq!(merged.held(), s, "s={s}");
            assert_eq!(merged.count(), 600);
            assert_eq!(merged.finish().len(), s, "s={s}");
        }
    }

    #[test]
    fn merge_threshold_dominates_inputs() {
        let data = data_mixed(500, 33);
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = VarOptSampler::new(20);
        let mut b = VarOptSampler::new(20);
        for wk in &data[..250] {
            a.push(wk.key, wk.weight, &mut rng);
        }
        for wk in &data[250..] {
            b.push(wk.key, wk.weight, &mut rng);
        }
        let (ta, tb) = (a.tau(), b.tau());
        assert!(ta > 0.0 && tb > 0.0);
        a.merge(b, &mut rng);
        assert!(a.tau() > ta.max(tb), "τ' {} vs inputs {ta}, {tb}", a.tau());
    }

    #[test]
    fn merge_unbiased_total_and_subset() {
        let data = data_mixed(400, 35);
        let truth_total = crate::total_weight(&data);
        let truth_subset: f64 = data
            .iter()
            .filter(|wk| wk.key < 150)
            .map(|wk| wk.weight)
            .sum();
        let runs = 600;
        let (mut acc_total, mut acc_subset) = (0.0, 0.0);
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(9000 + seed);
            let sample = merged_halves(&data, 40, &mut rng).finish();
            acc_total += sample.total_estimate();
            acc_subset += sample.subset_estimate(|k| k < 150);
        }
        let mean_total = acc_total / runs as f64;
        let mean_subset = acc_subset / runs as f64;
        assert!(
            (mean_total - truth_total).abs() / truth_total < 0.02,
            "total {mean_total} vs {truth_total}"
        );
        assert!(
            (mean_subset - truth_subset).abs() / truth_subset < 0.05,
            "subset {mean_subset} vs {truth_subset}"
        );
    }

    #[test]
    fn merge_underfull_keeps_everything_exactly() {
        // Neither reservoir overflows: the merge must keep all keys with
        // exact weights (zero-variance estimates).
        let mut rng = StdRng::seed_from_u64(41);
        let mut a = VarOptSampler::new(10);
        let mut b = VarOptSampler::new(10);
        for i in 0..4u64 {
            a.push(i, 1.0 + i as f64, &mut rng);
        }
        for i in 4..9u64 {
            b.push(i, 1.0 + i as f64, &mut rng);
        }
        a.merge(b, &mut rng);
        assert_eq!(a.held(), 9);
        let sample = a.finish();
        let truth: f64 = (0..9).map(|i| 1.0 + i as f64).sum();
        assert!((sample.total_estimate() - truth).abs() < 1e-9);
    }

    #[test]
    fn merge_full_into_underfull_restarts_threshold_without_bias() {
        // A full small-budget reservoir merged into an underfull larger one:
        // held keys keep their HT-adjusted weights; no inflation to the
        // larger threshold may occur.
        let data = data_mixed(300, 43);
        let truth = crate::total_weight(&data[..200]) + 3.0;
        let runs = 800;
        let mut acc = 0.0;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(17_000 + seed);
            let mut a = VarOptSampler::new(50);
            a.push(9999, 3.0, &mut rng); // underfull, τ = 0
            let mut b = VarOptSampler::new(30);
            for wk in &data[..200] {
                b.push(wk.key, wk.weight, &mut rng); // full, τ > 0
            }
            a.merge(b, &mut rng);
            assert_eq!(a.held(), 31);
            acc += a.finish().total_estimate();
        }
        let mean = acc / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.02,
            "mean {mean} vs {truth}"
        );
    }

    #[test]
    fn merge_keeps_heavy_keys() {
        let mut data = data_mixed(400, 45);
        data[37] = WeightedKey::new(37, 1e6);
        data[361] = WeightedKey::new(361, 2e6);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sample = merged_halves(&data, 12, &mut rng).finish();
            assert!(sample.contains(37), "seed {seed}");
            assert!(sample.contains(361), "seed {seed}");
        }
    }

    #[test]
    fn merged_reservoir_continues_streaming() {
        // The merged state is a valid VarOpt reservoir: keep pushing.
        let data = data_mixed(900, 47);
        let mut rng = StdRng::seed_from_u64(5);
        let mut merged = merged_halves(&data[..600], 25, &mut rng);
        for wk in &data[600..] {
            merged.push(wk.key, wk.weight, &mut rng);
        }
        assert_eq!(merged.count(), 900);
        assert_eq!(merged.finish().len(), 25);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = data_mixed(200, 49);
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = VarOptSampler::new(15);
        for wk in &data {
            a.push(wk.key, wk.weight, &mut rng);
        }
        let tau_before = a.tau();
        let held_before = a.held();
        a.merge(VarOptSampler::new(15), &mut rng);
        assert_eq!(a.held(), held_before);
        assert_eq!(a.tau(), tau_before);
        let mut empty = VarOptSampler::new(15);
        let mut b = VarOptSampler::new(15);
        for wk in &data {
            b.push(wk.key, wk.weight, &mut rng);
        }
        empty.merge(b, &mut rng);
        assert_eq!(empty.held(), 15);
    }

    #[test]
    fn merge_via_mergeable_trait() {
        let data = data_mixed(100, 51);
        let mut rng = StdRng::seed_from_u64(8);
        let mut a = VarOptSampler::new(10);
        let mut b = VarOptSampler::new(10);
        for wk in &data[..50] {
            a.push(wk.key, wk.weight, &mut rng);
        }
        for wk in &data[50..] {
            b.push(wk.key, wk.weight, &mut rng);
        }
        Mergeable::merge_with(&mut a, b, &mut rng);
        assert_eq!(a.held(), 10);
    }

    #[test]
    fn state_roundtrips_through_parts() {
        let data = data_mixed(500, 61);
        let mut rng = StdRng::seed_from_u64(9);
        let mut sampler = VarOptSampler::new(20);
        for wk in &data[..400] {
            sampler.push(wk.key, wk.weight, &mut rng);
        }
        let rebuilt = VarOptSampler::from_parts(
            sampler.capacity(),
            sampler.large_entries().collect(),
            sampler.small_keys().to_vec(),
            sampler.tau(),
            sampler.count(),
            sampler.total_weight(),
        )
        .expect("valid state");
        // Identical state ⇒ identical behaviour under the same RNG stream.
        let mut r1 = StdRng::seed_from_u64(33);
        let mut r2 = StdRng::seed_from_u64(33);
        let mut original = sampler;
        let mut restored = rebuilt;
        for wk in &data[400..] {
            original.push(wk.key, wk.weight, &mut r1);
            restored.push(wk.key, wk.weight, &mut r2);
        }
        let a = original.finish();
        let b = restored.finish();
        assert_eq!(a.tau(), b.tau());
        let ka: Vec<_> = a.keys().collect();
        let kb: Vec<_> = b.keys().collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn from_parts_rejects_invalid_state() {
        // Zero capacity.
        assert!(VarOptSampler::from_parts(0, vec![], vec![], 0.0, 0, 0.0).is_err());
        // Held exceeds capacity.
        assert!(
            VarOptSampler::from_parts(1, vec![(1, 2.0), (2, 3.0)], vec![], 0.0, 2, 5.0).is_err()
        );
        // Count below held.
        assert!(VarOptSampler::from_parts(4, vec![(1, 2.0)], vec![], 0.0, 0, 2.0).is_err());
        // Small keys with zero threshold.
        assert!(VarOptSampler::from_parts(4, vec![], vec![7], 0.0, 1, 1.0).is_err());
        // Non-finite threshold / weight.
        assert!(VarOptSampler::from_parts(4, vec![], vec![], f64::NAN, 0, 0.0).is_err());
        assert!(VarOptSampler::from_parts(4, vec![(1, f64::NAN)], vec![], 0.0, 1, 1.0).is_err());
        assert!(VarOptSampler::from_parts(4, vec![(1, -1.0)], vec![], 0.0, 1, 1.0).is_err());
        // Heap order violated: parent heavier than child.
        assert!(
            VarOptSampler::from_parts(4, vec![(1, 5.0), (2, 3.0)], vec![], 0.0, 2, 8.0).is_err()
        );
        // Large key below the threshold (corrupted partition).
        assert!(VarOptSampler::from_parts(4, vec![(1, 1.0)], vec![2], 5.0, 2, 6.0).is_err());
        // A valid small state is accepted.
        assert!(
            VarOptSampler::from_parts(4, vec![(1, 3.0), (2, 5.0)], vec![3], 2.0, 5, 12.0).is_ok()
        );
    }

    #[test]
    fn tau_matches_offline_threshold() {
        let data = data_mixed(400, 11);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = VarOptSampler::new(25);
        for wk in &data {
            sampler.push(wk.key, wk.weight, &mut rng);
        }
        let offline = crate::ipps::threshold_for_keys(&data, 25.0);
        // The stream threshold coincides with the offline IPPS threshold
        // only in expectation/structure; it is within a constant factor and
        // never smaller than needed. Sanity-check the magnitude.
        assert!(sampler.tau() > 0.0);
        assert!(sampler.tau() < offline * 10.0 + 1.0);
    }
}
