//! Classic uniform reservoir sampling (Vitter's Algorithm R).
//!
//! The paper notes that reservoir sampling is the special case of streaming
//! VarOpt on uniform weights. We provide it both as a cheap baseline and for
//! use in tests that cross-validate [`crate::varopt::VarOptSampler`].

use rand::Rng;

use crate::estimate::{Sample, SampleEntry};
use crate::KeyId;

/// Uniform reservoir sampler holding exactly `min(count, s)` keys.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    s: usize,
    reservoir: Vec<KeyId>,
    count: usize,
}

impl ReservoirSampler {
    /// Creates a reservoir of capacity `s`.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: usize) -> Self {
        assert!(s > 0, "sample size must be positive");
        Self {
            s,
            reservoir: Vec::with_capacity(s),
            count: 0,
        }
    }

    /// Number of items seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Processes one key.
    pub fn push<R: Rng + ?Sized>(&mut self, key: KeyId, rng: &mut R) {
        self.count += 1;
        if self.reservoir.len() < self.s {
            self.reservoir.push(key);
        } else {
            let j = rng.gen_range(0..self.count);
            if j < self.s {
                self.reservoir[j] = key;
            }
        }
    }

    /// Finalizes into a [`Sample`]. Each kept key represents `count/held`
    /// units (the HT adjusted weight under uniform unit weights).
    pub fn finish(self) -> Sample {
        let held = self.reservoir.len();
        let adjusted = if held == 0 {
            0.0
        } else {
            self.count as f64 / held as f64
        };
        let entries = self
            .reservoir
            .into_iter()
            .map(|key| SampleEntry {
                key,
                weight: 1.0,
                adjusted_weight: adjusted,
            })
            .collect();
        Sample::from_entries(entries, adjusted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn holds_exactly_s_after_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = ReservoirSampler::new(10);
        for k in 0..1000 {
            r.push(k, &mut rng);
        }
        assert_eq!(r.finish().len(), 10);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = ReservoirSampler::new(10);
        for k in 0..4 {
            r.push(k, &mut rng);
        }
        let s = r.finish();
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_estimate(), 4.0);
    }

    #[test]
    fn uniform_inclusion_probability() {
        let n = 50;
        let s = 10;
        let runs = 30_000;
        let mut hits = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..runs {
            let mut r = ReservoirSampler::new(s);
            for k in 0..n as u64 {
                r.push(k, &mut rng);
            }
            for e in r.finish().iter() {
                hits[e.key as usize] += 1;
            }
        }
        let target = s as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            let freq = h as f64 / runs as f64;
            assert!(
                (freq - target).abs() < 0.02,
                "key {i}: freq {freq} vs {target}"
            );
        }
    }

    #[test]
    fn total_estimate_equals_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = ReservoirSampler::new(7);
        for k in 0..123 {
            r.push(k, &mut rng);
        }
        let s = r.finish();
        assert!((s.total_estimate() - 123.0).abs() < 1e-9);
    }
}
