//! Property tests for sas-core: sampler laws that must hold on arbitrary
//! inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_core::varopt::VarOptSampler;
use sas_core::{ipps, poisson, reservoir::ReservoirSampler, WeightedKey};

fn data_strategy() -> impl Strategy<Value = Vec<WeightedKey>> {
    prop::collection::vec(0.01f64..200.0, 1..150).prop_map(|ws| {
        ws.into_iter()
            .enumerate()
            .map(|(i, w)| WeightedKey::new(i as u64, w))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varopt_size_is_min_s_n(data in data_strategy(), s in 1usize..60, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = VarOptSampler::sample_slice(s, &data, &mut rng);
        prop_assert_eq!(sample.len(), s.min(data.len()));
    }

    #[test]
    fn varopt_adjusted_weights_at_least_tau_or_exact(data in data_strategy(), s in 1usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = VarOptSampler::sample_slice(s, &data, &mut rng);
        let tau = sample.tau();
        for e in sample.iter() {
            prop_assert!(e.adjusted_weight >= tau - 1e-9,
                "adjusted {} below tau {}", e.adjusted_weight, tau);
        }
    }

    #[test]
    fn varopt_keeps_heavy_keys(data in data_strategy(), s in 2usize..40, seed in 0u64..200) {
        prop_assume!(data.len() > s);
        let tau_off = ipps::threshold_for_keys(&data, s as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = VarOptSampler::sample_slice(s, &data, &mut rng);
        // Keys with weight far above the offline threshold must be present.
        for wk in &data {
            if wk.weight >= 2.0 * tau_off && tau_off > 0.0 {
                prop_assert!(sample.contains(wk.key), "heavy key {} dropped", wk.key);
            }
        }
    }

    #[test]
    fn poisson_adjusted_weight_identity(data in data_strategy(), s in 1usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = poisson::sample(&data, s, &mut rng);
        let tau = sample.tau();
        for e in sample.iter() {
            let expected = if tau > 0.0 { e.weight.max(tau) } else { e.weight };
            prop_assert!((e.adjusted_weight - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn reservoir_total_estimate_is_count(n in 1usize..500, s in 1usize..50, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = ReservoirSampler::new(s);
        for k in 0..n as u64 {
            r.push(k, &mut rng);
        }
        let sample = r.finish();
        prop_assert!((sample.total_estimate() - n as f64).abs() < 1e-9);
    }

    #[test]
    fn threshold_monotone_in_s(data in data_strategy()) {
        prop_assume!(data.len() >= 4);
        let weights: Vec<f64> = data.iter().map(|wk| wk.weight).collect();
        let mut last = f64::INFINITY;
        for s in 1..data.len() {
            let tau = ipps::threshold_exact(&weights, s as f64);
            prop_assert!(tau <= last + 1e-9, "tau not decreasing in s");
            last = tau;
        }
    }
}
