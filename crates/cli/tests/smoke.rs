//! End-to-end smoke test for the `sas` binary: `summarize → query → info`
//! over a temp TSV file, checking range estimates against the exact answer
//! within the paper's discrepancy bound (HT estimator error = τ · Δ(S, R),
//! with Δ < 2 for all intervals under the order-structure sampler).

mod common;

use common::{parse_info_field, sas, TempFile};

/// Deterministic heavy-tailed-ish weight for key `i` (no RNG dependency).
fn weight(i: u64) -> f64 {
    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
    1.0 + (h % 997) as f64 / 10.0 + if h.is_multiple_of(53) { 400.0 } else { 0.0 }
}

#[test]
fn one_dim_summarize_query_info_within_paper_bound() {
    const N: u64 = 600;
    const SIZE: usize = 48;

    let mut data_tsv = String::from("# key\tweight\n");
    let mut exact_total = 0.0;
    let mut exact_range = 0.0; // keys in [150, 449]
    for i in 0..N {
        let w = weight(i);
        exact_total += w;
        if (150..450).contains(&i) {
            exact_range += w;
        }
        data_tsv.push_str(&format!("{i}\t{w:.4}\n"));
    }
    let data = TempFile::create("1d.tsv", &data_tsv);

    // summarize: summary TSV on stdout, status line on stderr.
    let (summary_text, status) = sas(
        &["summarize", data.path(), "--size", "48", "--seed", "7"],
        true,
    );
    assert!(
        status.contains("48-key") && status.contains("1–D"),
        "unexpected status line: {status}"
    );
    assert!(summary_text.starts_with("#sas-summary tau="));
    let summary = TempFile::create("1d-summary.tsv", &summary_text);

    // info: reports the key count, dimensionality, threshold and total.
    let (info, _) = sas(&["info", summary.path()], true);
    assert_eq!(parse_info_field(&info, "keys") as usize, SIZE);
    assert_eq!(parse_info_field(&info, "dims") as u64, 1);
    let tau = parse_info_field(&info, "tau");
    assert!(tau > 0.0, "tau must be positive for n > s");

    // VarOpt preserves the population total exactly (zero-variance total).
    let total = parse_info_field(&info, "total estimate");
    assert!(
        (total - exact_total).abs() <= 1e-6 * exact_total,
        "total estimate {total} vs exact {exact_total}"
    );

    // query: the paper's order-structure guarantee is Δ(S, R) < 2 for every
    // interval R, and the HT estimator's absolute error is exactly τ·Δ.
    let (est_line, _) = sas(&["query", summary.path(), "--range", "150..449"], true);
    let est: f64 = est_line.trim().parse().expect("estimate is a number");
    let err = (est - exact_range).abs();
    assert!(
        err <= 2.0 * tau + 1e-9,
        "range estimate {est} vs exact {exact_range}: |error| {err} exceeds 2τ = {}",
        2.0 * tau
    );

    // A full-domain interval query must also hit the exact total.
    let (full_line, _) = sas(&["query", summary.path(), "--range", "0..599"], true);
    let full: f64 = full_line.trim().parse().expect("estimate is a number");
    assert!((full - exact_total).abs() <= 1e-6 * exact_total);
}

#[test]
fn two_dim_summarize_query_within_product_bound() {
    const SIDE: u64 = 64;
    const SIZE: f64 = 64.0;

    let mut data_tsv = String::new();
    let mut exact_total = 0.0;
    let mut exact_box = 0.0; // box [8, 39] × [16, 47]
    let mut i = 0u64;
    for x in 0..SIDE {
        for y in 0..SIDE {
            if (x * 31 + y * 17) % 3 != 0 {
                continue; // sparse grid
            }
            let w = weight(i);
            i += 1;
            exact_total += w;
            if (8..40).contains(&x) && (16..48).contains(&y) {
                exact_box += w;
            }
            data_tsv.push_str(&format!("{x}\t{y}\t{w:.4}\n"));
        }
    }
    let data = TempFile::create("2d.tsv", &data_tsv);

    let (summary_text, status) = sas(
        &["summarize", data.path(), "--size", "64", "--seed", "11"],
        true,
    );
    assert!(status.contains("2–D"), "unexpected status line: {status}");
    let summary = TempFile::create("2d-summary.tsv", &summary_text);

    let (info, _) = sas(&["info", summary.path()], true);
    let tau = parse_info_field(&info, "tau");
    assert_eq!(parse_info_field(&info, "dims") as u64, 2);
    let total = parse_info_field(&info, "total estimate");
    assert!(
        (total - exact_total).abs() <= 1e-6 * exact_total,
        "total estimate {total} vs exact {exact_total}"
    );

    // 2-D boxes: Δ = O(d·s^((d−1)/(2d))) = O(2·s^¼); allow a 4× constant.
    let delta_bound = 4.0 * 2.0 * SIZE.powf(0.25);
    let (est_line, _) = sas(&["query", summary.path(), "--range", "8..39,16..47"], true);
    let est: f64 = est_line.trim().parse().expect("estimate is a number");
    let err = (est - exact_box).abs();
    assert!(
        err <= delta_bound * tau,
        "box estimate {est} vs exact {exact_box}: |error| {err} exceeds {delta_bound}·τ = {}",
        delta_bound * tau
    );
}

#[test]
fn sharded_summarize_matches_serial_guarantees() {
    const N: u64 = 600;

    let mut data_tsv = String::new();
    let mut exact_total = 0.0;
    let mut exact_range = 0.0; // keys in [150, 449]
    for i in 0..N {
        let w = weight(i);
        exact_total += w;
        if (150..450).contains(&i) {
            exact_range += w;
        }
        data_tsv.push_str(&format!("{i}\t{w:.4}\n"));
    }
    let data = TempFile::create("sharded.tsv", &data_tsv);

    let (summary_text, status) = sas(
        &[
            "summarize",
            data.path(),
            "--size",
            "48",
            "--seed",
            "7",
            "--shards",
            "4",
        ],
        true,
    );
    assert!(
        status.contains("48-key") && status.contains("4 shards"),
        "unexpected status line: {status}"
    );
    let summary = TempFile::create("sharded-summary.tsv", &summary_text);

    let (info, _) = sas(&["info", summary.path()], true);
    assert_eq!(parse_info_field(&info, "keys") as usize, 48);
    let tau = parse_info_field(&info, "tau");
    assert!(tau > 0.0);

    // The threshold merge conserves the total exactly, like serial VarOpt.
    let total = parse_info_field(&info, "total estimate");
    assert!(
        (total - exact_total).abs() <= 1e-6 * exact_total,
        "total estimate {total} vs exact {exact_total}"
    );

    // Interval error: serial guarantees τ·Δ with Δ < 2; each of the
    // log₂(4) = 2 merge levels may add < 2 more, so allow Δ < 6.
    let (est_line, _) = sas(&["query", summary.path(), "--range", "150..449"], true);
    let est: f64 = est_line.trim().parse().expect("estimate is a number");
    let err = (est - exact_range).abs();
    assert!(
        err <= 6.0 * tau + 1e-9,
        "range estimate {est} vs exact {exact_range}: |error| {err} exceeds 6τ = {}",
        6.0 * tau
    );

    // 2-D data must reject --shards with a clean error.
    let bad = TempFile::create("sharded-2d.tsv", "1\t2\t3.0\n4\t5\t6.0\n");
    let (_, stderr) = sas(
        &["summarize", bad.path(), "--size", "2", "--shards", "2"],
        false,
    );
    assert!(stderr.contains("error"), "expected error, got: {stderr}");
}

#[test]
fn query_bounds_batch_and_formats() {
    // Build a modest budgeted summary, then drive every new query surface:
    // open-ended ranges, --confidence bounds output, --queries batch mode
    // in tsv and json.
    let mut data = String::new();
    let mut total = 0.0;
    for k in 0..800u64 {
        let w = 0.5 + (k % 9) as f64;
        total += w;
        data.push_str(&format!("{k}\t{w}\n"));
    }
    let input = TempFile::create("bounds-data.tsv", &data);
    let summary = TempFile::create("bounds-summary.sas", "");
    sas(
        &[
            "summarize",
            input.path(),
            "--size",
            "80",
            "--seed",
            "3",
            "--out",
            summary.path(),
        ],
        true,
    );

    // Open-ended range, bare value (back-compat contract).
    let (bare, _) = sas(&["query", summary.path(), "--range", ":"], true);
    let bare: f64 = bare.trim().parse().expect("bare value");
    assert!((bare - total).abs() <= 1e-6 * total);

    // Same query with --confidence: `value ±half [lower, upper] @c`, the
    // value identical and the interval containing the exact total.
    let (bounds, _) = sas(
        &[
            "query",
            summary.path(),
            "--range",
            ":",
            "--confidence",
            "0.9",
        ],
        true,
    );
    let fields: Vec<&str> = bounds.split_whitespace().collect();
    assert_eq!(fields[0].parse::<f64>().unwrap().to_bits(), bare.to_bits());
    let lower: f64 = fields[2].trim_matches(['[', ',']).parse().unwrap();
    let upper: f64 = fields[3].trim_matches([']']).parse().unwrap();
    assert!(
        lower <= total && total <= upper,
        "total {total} outside [{lower}, {upper}]: {bounds}"
    );
    assert!(fields[4].starts_with('@'), "{bounds}");

    // Reversed bounds fail loudly, not as a silent empty range.
    let (_, stderr) = sas(&["query", summary.path(), "--range", "9..3"], false);
    assert!(stderr.contains("reversed"), "{stderr}");

    // Batch mode: every query shape in one file, tsv and json output.
    let batch = TempFile::create(
        "bounds-queries.txt",
        "# one query per line\n:199\n200..399;600:\npoint 17\nnode 6/3\ntotal\n",
    );
    let (tsv, _) = sas(&["query", summary.path(), "--queries", batch.path()], true);
    let rows: Vec<&str> = tsv.lines().collect();
    assert!(rows[0].starts_with("#query"), "{tsv}");
    assert_eq!(rows.len(), 6, "{tsv}");
    for row in &rows[1..] {
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), 6, "{row}");
        let value: f64 = cols[1].parse().unwrap();
        let lower: f64 = cols[2].parse().unwrap();
        let upper: f64 = cols[3].parse().unwrap();
        assert!(lower <= value && value <= upper, "{row}");
    }
    // The total row's value matches the bare full-domain query.
    let total_row: Vec<&str> = rows[5].split('\t').collect();
    assert_eq!(total_row[0], "total");
    assert_eq!(
        total_row[1].parse::<f64>().unwrap().to_bits(),
        bare.to_bits()
    );

    let (json, _) = sas(
        &[
            "query",
            summary.path(),
            "--queries",
            batch.path(),
            "--format",
            "json",
        ],
        true,
    );
    assert!(json.trim_start().starts_with('['), "{json}");
    assert_eq!(json.matches("\"query\"").count(), 5, "{json}");
    assert!(json.contains("\"confidence\": 0.95"), "{json}");

    // An overlapping multi-range in the batch file is rejected.
    let bad = TempFile::create("bounds-bad.txt", "0..10;5..20\n");
    let (_, stderr) = sas(&["query", summary.path(), "--queries", bad.path()], false);
    assert!(stderr.contains("overlap"), "{stderr}");
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown subcommand and missing file must not succeed (or panic).
    sas(&["frobnicate"], false);
    sas(
        &["summarize", "/nonexistent/sas-smoke.tsv", "--size", "10"],
        false,
    );

    // Malformed data surfaces a parse error, not a crash.
    let bad = TempFile::create("bad.tsv", "1\t2\t3\t4\t5\n");
    let (_, stderr) = sas(&["summarize", bad.path(), "--size", "10"], false);
    assert!(
        stderr.contains("error"),
        "expected an error message, got: {stderr}"
    );
}
