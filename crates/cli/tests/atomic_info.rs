//! Satellite coverage: atomic `--out` persistence (a simulated crash can
//! never leave a torn frame) and the multi-path / directory form of
//! `sas info`.

mod common;

use std::fs;

use common::{parse_info_field, sas, TempFile};

/// `sas summarize --out` goes through temp-file + rename: the destination
/// is either absent or a complete decodable frame, and a crash's truncated
/// temp file is ignored by every reader.
#[test]
fn out_files_are_atomic_and_torn_temps_are_inert() {
    let data = TempFile::create("atomic.tsv", "1\t5.0\n2\t3.0\n9\t1.5\n4\t2.5\n");
    let out = TempFile::create("atomic.sas", "");
    sas(
        &["summarize", data.path(), "--size", "4", "--out", out.path()],
        true,
    );
    let full = fs::read(out.path()).unwrap();

    // Simulate a crash mid-rewrite: a truncated temp next to the
    // destination (exactly what write_atomic leaves if killed before
    // rename — the destination itself still holds the previous bytes).
    let torn = format!("{}.tmp-99999-0", out.path());
    fs::write(&torn, &full[..10]).unwrap();
    let (stdout, _) = sas(&["query", out.path(), "--range", "0..100"], true);
    assert_eq!(stdout.trim(), "12");
    let (info, _) = sas(&["info", out.path()], true);
    assert_eq!(parse_info_field(&info, "keys"), 4.0);
    fs::remove_file(&torn).unwrap();

    // The temp file itself is not a valid frame — a reader that somehow
    // opens one fails loudly instead of serving a prefix.
    let prefix = TempFile::create("prefix.sas", "");
    fs::write(prefix.path(), &full[..full.len() / 2]).unwrap();
    let (_, stderr) = sas(&["query", prefix.path(), "--range", "0..100"], false);
    assert!(stderr.contains("error"), "{stderr}");
}

/// `sas info` with several paths prints one `path kind items bytes` line
/// per frame; directories are expanded recursively.
#[test]
fn info_lists_multiple_paths_and_directories() {
    let data = TempFile::create("multi.tsv", "1\t5.0\n2\t3.0\n9\t1.5\n");
    let a = TempFile::create("a.sas", "");
    let b = TempFile::create("b.sas", "");
    sas(
        &["summarize", data.path(), "--size", "3", "--out", a.path()],
        true,
    );
    sas(
        &[
            "summarize",
            data.path(),
            "--size",
            "2",
            "--kind",
            "varopt",
            "--out",
            b.path(),
        ],
        true,
    );
    let (out, _) = sas(&["info", a.path(), b.path()], true);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{out}");
    assert!(lines[0].starts_with(a.path()) && lines[0].contains("\tsample\t3\t"));
    assert!(lines[1].starts_with(b.path()) && lines[1].contains("\tvaropt\t2\t"));

    // Directory form: nested frames are found, temp debris is skipped,
    // and undecodable files report an error line without aborting the
    // listing.
    let dir = std::env::temp_dir().join(format!("sas-info-dir-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("nested")).unwrap();
    fs::copy(a.path(), dir.join("nested/a.sas")).unwrap();
    fs::write(dir.join("junk.sas"), b"not a frame").unwrap();
    fs::write(dir.join("a.sas.tmp-1-1"), b"torn").unwrap();
    let (out, _) = sas(&["info", dir.to_str().unwrap()], true);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "temp file must be skipped:\n{out}");
    assert!(out.contains("nested/a.sas\tsample\t3\t"), "{out}");
    assert!(out.contains("junk.sas\terror\t-\t"), "{out}");
    fs::remove_dir_all(&dir).unwrap();
}
