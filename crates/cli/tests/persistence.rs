//! End-to-end persistence tests for the `sas` binary: the save → merge →
//! query workflow across *separate process invocations*, certifying the
//! acceptance criterion that a summary written by `sas summarize --out`,
//! merged from shard files in another process, answers range queries
//! **bit-identically** to the same merge performed in-memory.

mod common;

use common::{parse_info_field, sas, TempFile};

use sas_cli::{load_summary, merge_summaries, parse_range, query, LoadedSummary};
use sas_summaries::SummaryKind;

/// Deterministic heavy-tailed-ish weight (no RNG dependency).
fn weight(i: u64) -> f64 {
    let h = i.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 33;
    0.5 + (h % 811) as f64 / 8.0 + if h.is_multiple_of(71) { 300.0 } else { 0.0 }
}

fn one_dim_data(n: u64) -> String {
    let mut tsv = String::from("# key\tweight\n");
    for i in 0..n {
        tsv.push_str(&format!("{i}\t{:.6}\n", weight(i)));
    }
    tsv
}

struct TempPath(std::path::PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!("sas-persist-{}-{id}-{name}", std::process::id())))
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("UTF-8 path")
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn save_then_query_binary_summary() {
    const N: u64 = 500;
    let data = TempFile::create("bin.tsv", &one_dim_data(N));
    let out = TempPath::new("bin.sas");

    let (_, status) = sas(
        &[
            "summarize",
            data.path(),
            "--size",
            "40",
            "--seed",
            "3",
            "--out",
            out.path(),
        ],
        true,
    );
    assert!(
        status.contains("40-item") && status.contains("sample"),
        "status: {status}"
    );

    // The file is a binary frame, loadable by a fresh process.
    let bytes = std::fs::read(out.path()).expect("summary file exists");
    assert!(sas_codec::is_frame(&bytes));

    // info on the binary file reports kind, size, and byte sizes.
    let (info, _) = sas(&["info", out.path()], true);
    assert!(info.contains("kind: sample"), "{info}");
    assert_eq!(parse_info_field(&info, "keys") as usize, 40);
    assert_eq!(parse_info_field(&info, "dims") as u64, 1);
    assert_eq!(
        parse_info_field(&info, "file bytes") as usize,
        bytes.len(),
        "{info}"
    );
    assert!(parse_info_field(&info, "serialized bytes") > 0.0);

    // Queries from the file match the in-process decode bit-for-bit, and
    // the total is conserved exactly (VarOpt invariant).
    let loaded = load_summary(&bytes).unwrap();
    let exact_total: f64 = (0..N).map(weight).sum();
    for spec in ["0..499", "100..399", "250..250"] {
        let (line, _) = sas(&["query", out.path(), "--range", spec], true);
        let cli_est: f64 = line.trim().parse().expect("estimate");
        let mem_est = query(&loaded, &parse_range(spec, 1).unwrap());
        assert_eq!(cli_est.to_bits(), mem_est.to_bits(), "range {spec}");
    }
    let total = parse_info_field(&info, "total estimate");
    assert!((total - exact_total).abs() <= 1e-6 * exact_total);
}

#[test]
fn shard_files_merged_in_separate_process_match_in_memory_merge_bit_for_bit() {
    const N: u64 = 1200;
    const SIZE: &str = "64";
    const MERGE_SEED: u64 = 9;

    let data = TempFile::create("shards.tsv", &one_dim_data(N));
    let base = TempPath::new("part.sas");

    // Process 1: write per-shard, unmerged summaries.
    let (_, status) = sas(
        &[
            "summarize",
            data.path(),
            "--size",
            SIZE,
            "--seed",
            "7",
            "--shards",
            "3",
            "--per-shard",
            "--out",
            base.path(),
        ],
        true,
    );
    assert!(status.contains("3 unmerged shard summaries"), "{status}");
    let shard_paths: Vec<String> = (0..3).map(|i| format!("{}.{i}", base.path())).collect();

    // Process 2: merge the shard files down to the budget.
    let merged_path = TempPath::new("merged.sas");
    let (_, status) = sas(
        &[
            "merge",
            &shard_paths[0],
            &shard_paths[1],
            &shard_paths[2],
            "--size",
            SIZE,
            "--seed",
            "9",
            "--out",
            merged_path.path(),
        ],
        true,
    );
    assert!(status.contains("merged 3 sample summaries"), "{status}");

    // In-memory reference: load the same shard files and merge them with
    // the same budget and seed through the same erased API.
    let shards: Vec<LoadedSummary> = shard_paths
        .iter()
        .map(|p| load_summary(&std::fs::read(p).unwrap()).unwrap())
        .collect();
    let reference = merge_summaries(shards, Some(64), MERGE_SEED).unwrap();

    // Process 3: query the merged file; answers must be bit-identical to
    // the in-memory merge (Rust's shortest-roundtrip float formatting makes
    // the printed estimate parse back to the exact f64).
    let (info, _) = sas(&["info", merged_path.path()], true);
    assert_eq!(parse_info_field(&info, "keys") as usize, 64);
    for spec in ["0..1199", "0..399", "400..799", "137..1042"] {
        let (line, _) = sas(&["query", merged_path.path(), "--range", spec], true);
        let cli_est: f64 = line.trim().parse().expect("estimate");
        let mem_est = query(&reference, &parse_range(spec, 1).unwrap());
        assert_eq!(
            cli_est.to_bits(),
            mem_est.to_bits(),
            "range {spec}: {cli_est} vs {mem_est}"
        );
    }

    // And the merged file conserves the exact total.
    let exact_total: f64 = (0..N).map(weight).sum();
    let total = parse_info_field(&info, "total estimate");
    assert!((total - exact_total).abs() <= 1e-6 * exact_total);

    for p in &shard_paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn merge_rejects_mixed_kinds_and_bad_inputs() {
    let data1 = TempFile::create("m1.tsv", &one_dim_data(100));
    let a = TempPath::new("a.sas");
    let b = TempPath::new("b.sas");
    sas(
        &["summarize", data1.path(), "--size", "10", "--out", a.path()],
        true,
    );
    sas(
        &[
            "summarize",
            data1.path(),
            "--size",
            "10",
            "--kind",
            "varopt",
            "--out",
            b.path(),
        ],
        true,
    );
    let out = TempPath::new("mixed.sas");
    let (_, stderr) = sas(&["merge", a.path(), b.path(), "--out", out.path()], false);
    assert!(stderr.contains("cannot merge"), "stderr: {stderr}");

    // A single input is refused; a corrupt input is a clean error.
    let (_, stderr) = sas(&["merge", a.path(), "--out", out.path()], false);
    assert!(stderr.contains("at least two"), "stderr: {stderr}");
    let corrupt = TempFile::create("corrupt.sas", "SASFnot really a frame");
    let (_, stderr) = sas(
        &["merge", a.path(), corrupt.path(), "--out", out.path()],
        false,
    );
    assert!(stderr.contains("error"), "stderr: {stderr}");
}

#[test]
fn every_kind_summarizes_to_disk_and_reports_info() {
    let one_d = TempFile::create("k1.tsv", &one_dim_data(300));
    let mut two_d = String::new();
    for i in 0..300u64 {
        two_d.push_str(&format!(
            "{}\t{}\t{:.4}\n",
            (i * 11) % 64,
            (i * 23) % 64,
            weight(i)
        ));
    }
    let two_d = TempFile::create("k2.tsv", &two_d);

    for kind in SummaryKind::all() {
        let name = kind.name();
        let input = match kind {
            SummaryKind::Sample | SummaryKind::VarOptReservoir => &one_d,
            _ => &two_d,
        };
        let out = TempPath::new(&format!("{name}.sas"));
        let (_, status) = sas(
            &[
                "summarize",
                input.path(),
                "--size",
                "32",
                "--seed",
                "5",
                "--kind",
                name,
                "--out",
                out.path(),
            ],
            true,
        );
        assert!(status.contains(name), "{name}: {status}");
        let (info, _) = sas(&["info", out.path()], true);
        assert!(info.contains(&format!("kind: {name}")), "{name}: {info}");
        assert!(parse_info_field(&info, "keys") > 0.0, "{name}");
        assert!(parse_info_field(&info, "serialized bytes") > 0.0, "{name}");

        // Full-domain query answers (total weight is conserved by sample,
        // varopt, and qdigest; wavelet/sketch are approximate).
        let dims = parse_info_field(&info, "dims") as usize;
        let spec = if dims == 1 {
            "0..9999".into()
        } else {
            "0..9999,0..9999".to_string()
        };
        let (line, _) = sas(&["query", out.path(), "--range", &spec], true);
        let est: f64 = line.trim().parse().expect("estimate");
        assert!(est.is_finite(), "{name}: {est}");
    }

    // Non-sample kinds have no TSV form without --out.
    let (_, stderr) = sas(
        &["summarize", one_d.path(), "--size", "8", "--kind", "varopt"],
        false,
    );
    assert!(stderr.contains("--out"), "stderr: {stderr}");
    // Unknown kind is a clean error.
    let (_, stderr) = sas(
        &["summarize", one_d.path(), "--size", "8", "--kind", "bogus"],
        false,
    );
    assert!(stderr.contains("unknown --kind"), "stderr: {stderr}");
}

#[test]
fn per_shard_reports_actual_file_count_for_tiny_inputs() {
    // 3 data rows with --shards 4: the sampler collapses to one shard, and
    // the status line must name the one file actually written.
    let data = TempFile::create("tiny.tsv", "1\t5.0\n2\t3.0\n9\t1.5\n");
    let base = TempPath::new("tiny.sas");
    let (_, status) = sas(
        &[
            "summarize",
            data.path(),
            "--size",
            "2",
            "--shards",
            "4",
            "--per-shard",
            "--out",
            base.path(),
        ],
        true,
    );
    assert!(status.contains("wrote 1 unmerged shard"), "{status}");
    assert!(std::fs::metadata(format!("{}.0", base.path())).is_ok());
    assert!(std::fs::metadata(format!("{}.1", base.path())).is_err());
    let _ = std::fs::remove_file(format!("{}.0", base.path()));
}
