//! End-to-end observability test: spawn a real `sas serve` process, drive
//! it with `sas client`, and check the three faces of the metrics layer —
//! the `REQ_METRICS` exchange behind `sas client metrics` (all three
//! output formats), the structured stderr log with the slow-query trace
//! (`--slow-query-ms 0` logs every request), and the periodic
//! `--metrics-every` operational dump.

mod common;

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};

use common::sas;

/// A scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sas-metrics-test-{}-{id}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A running `sas serve` child that records every stderr line it emits, so
/// tests can assert on the structured log and the periodic metric dumps
/// after shutdown.
struct Daemon {
    child: Child,
    addr: String,
    stderr_lines: Arc<Mutex<Vec<String>>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn spawn(store_dir: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sas"));
        cmd.arg("serve")
            .arg(store_dir)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn sas serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let stderr_lines = Arc::new(Mutex::new(Vec::new()));
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before its readiness line")
                .expect("readable stderr");
            let found = line
                .strip_prefix("sas-store: listening on ")
                .map(|rest| rest.trim().to_string());
            stderr_lines.lock().unwrap().push(line);
            if let Some(addr) = found {
                break addr;
            }
        };
        let sink = stderr_lines.clone();
        let reader = std::thread::spawn(move || {
            for line in lines.map_while(Result::ok) {
                sink.lock().unwrap().push(line);
            }
        });
        Daemon {
            child,
            addr,
            stderr_lines,
            reader: Some(reader),
        }
    }

    /// Shuts down via the protocol and returns everything the daemon wrote
    /// to stderr over its lifetime.
    fn shutdown(mut self) -> Vec<String> {
        sas(&["client", &self.addr, "shutdown"], true);
        let status = self.child.wait().expect("wait for serve");
        assert!(status.success(), "serve exited with {status:?}");
        self.reader.take().unwrap().join().expect("stderr reader");
        let lines = std::mem::take(&mut *self.stderr_lines.lock().unwrap());
        std::mem::forget(self);
        lines
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn write_tsv(dir: &Path, name: &str, lo: u64, n: u64) -> PathBuf {
    let mut text = String::new();
    for k in lo..lo + n {
        text.push_str(&format!("{k}\t{}\n", 1.0 + (k % 7) as f64));
    }
    let path = dir.join(name);
    fs::write(&path, text).unwrap();
    path
}

/// Finds a metric's value in Prometheus text output.
fn prom_value(out: &str, name: &str) -> Option<f64> {
    out.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

#[test]
fn client_metrics_serves_counts_in_every_format() {
    let work = TempDir::new("formats");
    let store_dir = work.path().join("store");
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "0"], &[]);
    let addr = daemon.addr.clone();

    let data = write_tsv(work.path(), "d.tsv", 0, 200);
    sas(
        &[
            "client",
            &addr,
            "ingest",
            data.to_str().unwrap(),
            "--dataset",
            "web",
            "--ts",
            "30",
        ],
        true,
    );
    for _ in 0..3 {
        sas(
            &[
                "client",
                &addr,
                "query",
                "--dataset",
                "web",
                "--range",
                "0..999",
            ],
            true,
        );
    }
    sas(&["client", &addr, "ping"], true);

    // Prometheus (the default format): every non-comment line is
    // `name value`, request counters carry per-tag labels, error counters
    // are zero, and the query latency histogram is populated.
    let (prom, _) = sas(&["client", &addr, "metrics"], true);
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        let mut parts = line.split(' ');
        let name = parts.next().expect("metric name");
        let value = parts.next().expect("metric value");
        assert!(parts.next().is_none(), "extra token in line: {line}");
        assert!(!name.is_empty() && name.starts_with("sas_"), "{line}");
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    assert!(prom.lines().any(|l| l.starts_with("# TYPE ")), "{prom}");
    assert!(
        prom_value(&prom, "sas_requests_total{tag=\"query\"}").unwrap() >= 3.0,
        "{prom}"
    );
    assert_eq!(
        prom_value(&prom, "sas_requests_total{tag=\"ingest\"}"),
        Some(1.0),
        "{prom}"
    );
    for zero in [
        "sas_protocol_errors_total",
        "sas_conns_shed_total",
        "sas_requests_shed_total",
        "sas_conn_read_timeouts_total",
    ] {
        assert_eq!(prom_value(&prom, zero), Some(0.0), "{zero}\n{prom}");
    }
    assert!(
        prom_value(&prom, "sas_request_ns_count{tag=\"query\"}").unwrap() >= 3.0,
        "{prom}"
    );
    // Cumulative bucket lines end with the +Inf sentinel equal to _count.
    assert!(
        prom.lines()
            .any(|l| l.starts_with("sas_request_ns_bucket{tag=\"query\",le=\"+Inf\"}")),
        "{prom}"
    );

    // TSV: strict two-column `name\tvalue` lines, histograms expanded to
    // summary columns.
    let (tsv, _) = sas(&["client", &addr, "metrics", "--format", "tsv"], true);
    for line in tsv.lines() {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 2, "not two columns: {line}");
        cols[1]
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    assert!(
        tsv.lines()
            .any(|l| l.starts_with("sas_request_ns{tag=\"query\"}.p99\t")),
        "{tsv}"
    );

    // JSON: one object, numeric values, with the same request counter.
    let (json, _) = sas(&["client", &addr, "metrics", "--format", "json"], true);
    let json = json.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(
        json.contains("\"sas_requests_total{tag=\\\"ingest\\\"}\": 1"),
        "{json}"
    );

    // Unknown formats fail loudly.
    sas(&["client", &addr, "metrics", "--format", "xml"], false);

    // `sas client stats` output is sorted by stat name for diffability.
    let (stats, _) = sas(&["client", &addr, "stats"], true);
    let names: Vec<&str> = stats.lines().filter_map(|l| l.split(':').next()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "{stats}");
    assert!(stats.lines().any(|l| l.starts_with("minute_frame_bytes: ")));

    daemon.shutdown();
}

#[test]
fn slow_query_log_and_periodic_dump_reach_stderr() {
    let work = TempDir::new("slowlog");
    let store_dir = work.path().join("store");
    // Threshold 0 logs every request; the 1s metric cadence is the
    // smallest the flag accepts.
    let daemon = Daemon::spawn(
        &store_dir,
        &[
            "--compact-every",
            "0",
            "--slow-query-ms",
            "0",
            "--metrics-every",
            "1",
        ],
        &[("SAS_LOG", "info")],
    );
    let addr = daemon.addr.clone();

    let data = write_tsv(work.path(), "d.tsv", 0, 100);
    sas(
        &[
            "client",
            &addr,
            "ingest",
            data.to_str().unwrap(),
            "--dataset",
            "web",
            "--ts",
            "30",
        ],
        true,
    );
    sas(
        &[
            "client",
            &addr,
            "query",
            "--dataset",
            "web",
            "--range",
            "0..999",
        ],
        true,
    );

    // Let at least one periodic dump fire.
    std::thread::sleep(std::time::Duration::from_millis(1400));
    let lines = daemon.shutdown();

    // SAS_LOG=info surfaces the recovery record.
    assert!(
        lines
            .iter()
            .any(|l| l.contains("level=info") && l.contains("event=store_opened")),
        "no store_opened record in:\n{}",
        lines.join("\n")
    );
    // Every request was "slow": the trace names the dataset, the canonical
    // query bytes, and the per-stage breakdown.
    let slow = lines
        .iter()
        .find(|l| l.contains("event=slow_query") && l.contains("tag=query"))
        .unwrap_or_else(|| panic!("no slow_query record in:\n{}", lines.join("\n")));
    for key in [
        "dataset=web",
        "query=",
        "total_us=",
        "work_us=",
        "flush_us=",
    ] {
        assert!(slow.contains(key), "missing {key} in: {slow}");
    }
    // The periodic dump wrote at least one TSV metric line.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("sas_conns_accepted_total\t")),
        "no periodic metrics dump in:\n{}",
        lines.join("\n")
    );
}
