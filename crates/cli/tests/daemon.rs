//! End-to-end daemon test: spawn a real `sas serve` process, drive it with
//! `sas client` processes — ≥4 parallel query clients during active ingest
//! — then verify every served answer against offline `sas query` runs over
//! the persisted frames, shut down cleanly, and prove restart recovery is
//! bit-identical.

mod common;

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use common::sas;

/// A scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sas-daemon-test-{}-{id}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A running `sas serve` child whose address was read from its readiness
/// line. Killed on drop if the test failed before the clean shutdown.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(store_dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sas"))
            .arg("serve")
            .arg(store_dir)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn sas serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before its readiness line")
                .expect("readable stderr");
            if let Some(rest) = line.strip_prefix("sas-store: listening on ") {
                break rest.trim().to_string();
            }
        };
        // Drain the rest of stderr in the background so the child never
        // blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    /// Requests shutdown via the protocol and waits for a clean exit.
    fn shutdown(mut self) {
        sas(&["client", &self.addr, "shutdown"], true);
        let status = self.child.wait().expect("wait for serve");
        assert!(status.success(), "serve exited with {status:?}");
        // Disarm the drop kill.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn write_tsv(dir: &Path, name: &str, lo: u64, n: u64) -> PathBuf {
    let mut text = String::new();
    for k in lo..lo + n {
        text.push_str(&format!("{k}\t{}\n", 1.0 + (k % 7) as f64));
    }
    let path = dir.join(name);
    fs::write(&path, text).unwrap();
    path
}

fn exact_total(lo: u64, n: u64) -> f64 {
    (lo..lo + n).map(|k| 1.0 + (k % 7) as f64).sum()
}

/// All persisted window frames under a store directory (manifest excluded).
fn frame_files(store_dir: &Path) -> Vec<PathBuf> {
    sas_store::fsio::walk_files(store_dir)
        .unwrap()
        .into_iter()
        .filter(|p| {
            p.extension().is_some_and(|e| e == "sas")
                && p.file_name().is_some_and(|n| n != "MANIFEST.sas")
        })
        .collect()
}

#[test]
fn daemon_serves_concurrent_clients_and_recovers_bit_identically() {
    let work = TempDir::new("e2e");
    let store_dir = work.path().join("store");
    // Compaction off: the offline comparison below wants the exact frames
    // the ingests produced (compaction correctness has its own tests).
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "0"]);
    let addr = daemon.addr.clone();

    // Seed one batch so queries during the storm always have data.
    let first = write_tsv(work.path(), "first.tsv", 0, 100);
    sas(
        &[
            "client",
            &addr,
            "ingest",
            first.to_str().unwrap(),
            "--dataset",
            "web",
            "--ts",
            "30",
        ],
        true,
    );

    // ≥4 parallel clients issue range queries while the main thread keeps
    // ingesting. Totals only grow, so every client asserts monotonicity —
    // a torn snapshot would show up as a regression.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let addr = addr.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let range = if r % 2 == 0 { "0..99999999" } else { "0..1999" };
                let mut last = 0.0f64;
                let mut runs = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || runs < 5 {
                    let (stdout, _) = sas(
                        &[
                            "client",
                            &addr,
                            "query",
                            "--dataset",
                            "web",
                            "--range",
                            range,
                        ],
                        true,
                    );
                    let value: f64 = stdout.trim().parse().expect("numeric answer");
                    assert!(
                        value >= last,
                        "reader {r}: answer regressed from {last} to {value}"
                    );
                    last = value;
                    runs += 1;
                }
                runs
            })
        })
        .collect();

    let batches: Vec<(u64, u64, u64)> = (0..8u64)
        .map(|i| (i * 500 + 100, 250, 30 + i * 40))
        .collect();
    for (i, &(lo, n, ts)) in batches.iter().enumerate() {
        let data = write_tsv(work.path(), &format!("b{i}.tsv"), lo, n);
        sas(
            &[
                "client",
                &addr,
                "ingest",
                data.to_str().unwrap(),
                "--dataset",
                "web",
                "--ts",
                &ts.to_string(),
            ],
            true,
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() >= 5);
    }

    // Quiesced: every served answer must match the offline `sas query`
    // sum over the persisted frames — the daemon holds no truth the files
    // don't.
    let probes = ["0..99999999", "0..1999", "700..3000"];
    let frames = frame_files(&store_dir);
    assert!(!frames.is_empty());
    let serve_answers: Vec<String> = probes
        .iter()
        .map(|range| {
            let (stdout, _) = sas(
                &[
                    "client",
                    &addr,
                    "query",
                    "--dataset",
                    "web",
                    "--range",
                    range,
                ],
                true,
            );
            stdout.trim().to_string()
        })
        .collect();
    for (range, served) in probes.iter().zip(&serve_answers) {
        let offline: f64 = frames
            .iter()
            .map(|f| {
                let (stdout, _) = sas(&["query", f.to_str().unwrap(), "--range", range], true);
                stdout.trim().parse::<f64>().unwrap()
            })
            .sum();
        let served: f64 = served.parse().unwrap();
        assert!(
            (served - offline).abs() <= offline.abs() * 1e-9,
            "range {range}: served {served} vs offline {offline}"
        );
    }
    // And the full-domain answer is the exact input total (unbudgeted
    // exact batches).
    let truth = exact_total(0, 100)
        + batches
            .iter()
            .map(|&(lo, n, _)| exact_total(lo, n))
            .sum::<f64>();
    let served: f64 = serve_answers[0].parse().unwrap();
    assert!((served - truth).abs() <= truth * 1e-9);

    // `sas list` and `sas info <dir>` agree on the catalog.
    let (list_out, _) = sas(&["client", &addr, "list"], true);
    let windows = list_out.lines().count();
    assert!(windows >= 2, "expected several minute windows:\n{list_out}");
    let (info_out, _) = sas(&["info", store_dir.to_str().unwrap()], true);
    let info_frames = info_out
        .lines()
        .filter(|l| l.contains("\tsample\t"))
        .count();
    assert_eq!(info_frames, windows, "{info_out}");
    assert_eq!(
        info_out
            .lines()
            .filter(|l| l.contains("\tmanifest\t"))
            .count(),
        1,
        "{info_out}"
    );

    daemon.shutdown();

    // Restart on the same directory: recovery must serve bit-identical
    // answers (shortest-roundtrip float printing makes string equality
    // exactly bit equality).
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "0"]);
    for (range, before) in probes.iter().zip(&serve_answers) {
        let (stdout, _) = sas(
            &[
                "client",
                &daemon.addr,
                "query",
                "--dataset",
                "web",
                "--range",
                range,
            ],
            true,
        );
        assert_eq!(stdout.trim(), before, "range {range} after restart");
    }
    let (stats_out, _) = sas(&["client", &daemon.addr, "stats"], true);
    assert!(
        stats_out
            .lines()
            .any(|l| l.starts_with("recovered_windows: ") && !l.ends_with(" 0")),
        "{stats_out}"
    );
    daemon.shutdown();
}

#[test]
fn mixed_old_and_new_tag_clients_get_identical_values() {
    // One server, two protocols: the legacy REQ_QUERY tag (bare value) and
    // the PR-5 REQ_ESTIMATE tag (`--confidence`, value ± bound) must agree
    // on every value, bit for bit (shortest-roundtrip float printing makes
    // string equality exactly bit equality) — and the estimate's interval
    // must contain its own value.
    let work = TempDir::new("mixed-tags");
    let store_dir = work.path().join("store");
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "0"]);
    let addr = daemon.addr.clone();

    for (i, ts) in [30u64, 90, 150].iter().enumerate() {
        let data = write_tsv(work.path(), &format!("m{i}.tsv"), *ts * 10, 200);
        sas(
            &[
                "client",
                &addr,
                "ingest",
                data.to_str().unwrap(),
                "--dataset",
                "web",
                "--ts",
                &ts.to_string(),
            ],
            true,
        );
    }

    let probes = ["0..99999999", "300..1499", "0..999", "1500.."];
    for range in probes {
        let (old_out, _) = sas(
            &[
                "client",
                &addr,
                "query",
                "--dataset",
                "web",
                "--range",
                range,
            ],
            true,
        );
        let (new_out, new_err) = sas(
            &[
                "client",
                &addr,
                "query",
                "--dataset",
                "web",
                "--range",
                range,
                "--confidence",
                "0.95",
            ],
            true,
        );
        let old_value = old_out.trim();
        // New-tag output: `value ±half [lower, upper] @confidence`.
        let mut parts = new_out.split_whitespace();
        let new_value = parts.next().expect("value field");
        assert_eq!(
            new_value, old_value,
            "range {range}: old tag {old_value} vs new tag {new_value}"
        );
        let lower: f64 = parts
            .nth(1)
            .expect("lower field")
            .trim_matches(['[', ','])
            .parse()
            .expect("numeric lower");
        let upper: f64 = parts
            .next()
            .expect("upper field")
            .trim_matches([']', ','])
            .parse()
            .expect("numeric upper");
        let value: f64 = new_value.parse().expect("numeric value");
        assert!(
            lower <= value && value <= upper,
            "range {range}: value {value} outside [{lower}, {upper}]"
        );
        assert!(new_err.contains("window"), "{new_err}");
    }

    // Both tags share the canonical-query cache: the same estimate asked
    // twice reports a cache hit the second time.
    let ask = || {
        sas(
            &[
                "client",
                &addr,
                "query",
                "--dataset",
                "web",
                "--range",
                "0..999",
                "--confidence",
                "0.9",
            ],
            true,
        )
    };
    ask();
    let (_, stderr) = ask();
    assert!(stderr.contains("(cached)"), "{stderr}");
    daemon.shutdown();
}

#[test]
fn daemon_rejects_garbage_and_stays_up() {
    let work = TempDir::new("errors");
    let store_dir = work.path().join("store");
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "0"]);
    let addr = daemon.addr.clone();

    // Bad dataset name: the client surfaces the server's message and
    // exits nonzero; the daemon keeps serving.
    let data = write_tsv(work.path(), "d.tsv", 0, 10);
    let (_, stderr) = sas(
        &[
            "client",
            &addr,
            "ingest",
            data.to_str().unwrap(),
            "--dataset",
            "no/slashes",
        ],
        false,
    );
    assert!(stderr.contains("dataset"), "{stderr}");
    // Unknown series queries answer 0 over 0 windows rather than failing.
    let (stdout, stderr) = sas(
        &[
            "client",
            &addr,
            "query",
            "--dataset",
            "ghost",
            "--range",
            "0..9",
        ],
        true,
    );
    assert_eq!(stdout.trim(), "0");
    assert!(stderr.contains("0 windows"), "{stderr}");
    daemon.shutdown();
}
