//! Golden regression test for the CLI pipeline: `summarize → query → info`
//! under a fixed seed, compared *structurally* rather than byte-for-byte —
//! refactors may reshuffle formatting or RNG consumption, but they cannot
//! silently change what the summary claims: its size, dimensionality,
//! threshold consistency, exact total conservation, per-entry invariants,
//! determinism for a fixed seed, and query estimates within the paper's
//! discrepancy envelope of the exact answers.

mod common;

use std::collections::HashSet;

use common::{parse_info_field, sas as sas_expect, TempFile};

/// The fixed workload: 500 keys with a deterministic heavy-tailed-ish
/// weight profile (no RNG, so the golden truths below are stable).
const N: u64 = 500;
const SIZE: usize = 40;
const SEED: &str = "1234";

fn weight(i: u64) -> f64 {
    let h = i.wrapping_mul(0x517c_c1b7_2722_0a95) >> 32;
    0.5 + (h % 701) as f64 / 20.0 + if h.is_multiple_of(67) { 250.0 } else { 0.0 }
}

/// The golden query battery: interval plus its exact answer, computed from
/// the same deterministic weights.
fn golden_queries() -> Vec<((u64, u64), f64)> {
    [(0u64, N - 1), (0, 99), (100, 299), (250, 499), (42, 42)]
        .into_iter()
        .map(|(lo, hi)| ((lo, hi), (lo..=hi).map(weight).sum()))
        .collect()
}

fn sas(args: &[&str]) -> (String, String) {
    sas_expect(args, true)
}

fn data_file() -> TempFile {
    let mut tsv = String::from("# golden fixture\n");
    for i in 0..N {
        tsv.push_str(&format!("{i}\t{:.6}\n", weight(i)));
    }
    TempFile::create("data.tsv", &tsv)
}

/// Structural digest of a summary file: everything a refactor must preserve.
#[derive(Debug, PartialEq)]
struct SummaryShape {
    keys: Vec<u64>,
    dims: usize,
    /// τ and per-key adjusted weights rounded to 9 decimal places (the
    /// determinism comparison — not compared against a stored constant).
    tau_nano: i64,
    adjusted_nano: Vec<i64>,
}

fn shape_of(summary_text: &str) -> SummaryShape {
    let mut lines = summary_text.lines();
    let header = lines.next().expect("summary has a header");
    assert!(header.starts_with("#sas-summary tau="), "header: {header}");
    let field = |name: &str| -> f64 {
        header
            .split_whitespace()
            .find_map(|t| t.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("header missing {name}: {header}"))
            .parse()
            .expect("numeric header field")
    };
    let tau = field("tau");
    let dims = field("dims") as usize;
    let mut keys = Vec::new();
    let mut adjusted_nano = Vec::new();
    for line in lines.filter(|l| !l.trim().is_empty()) {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 3, "1-D summary rows have 3 columns: {line}");
        let key: u64 = cols[0].parse().expect("key");
        let w: f64 = cols[1].parse().expect("weight");
        let a: f64 = cols[2].parse().expect("adjusted");
        // Per-entry invariants: adjusted = max(weight, τ) under IPPS.
        assert!(
            (a - w.max(tau)).abs() < 1e-9,
            "key {key}: adjusted {a} != max(weight {w}, tau {tau})"
        );
        keys.push(key);
        adjusted_nano.push((a * 1e9).round() as i64);
    }
    SummaryShape {
        keys,
        dims,
        tau_nano: (tau * 1e9).round() as i64,
        adjusted_nano,
    }
}

fn run_pipeline(shards: Option<&str>) -> (SummaryShape, Vec<f64>, String) {
    let data = data_file();
    let mut args = vec!["summarize", data.path(), "--size", "40", "--seed", SEED];
    if let Some(n) = shards {
        args.extend(["--shards", n]);
    }
    let (summary_text, _) = sas(&args);
    let shape = shape_of(&summary_text);
    let summary = TempFile::create("summary.tsv", &summary_text);
    let estimates: Vec<f64> = golden_queries()
        .iter()
        .map(|((lo, hi), _)| {
            let spec = format!("{lo}..{hi}");
            let (line, _) = sas(&["query", summary.path(), "--range", &spec]);
            line.trim().parse().expect("estimate")
        })
        .collect();
    let (info, _) = sas(&["info", summary.path()]);
    (shape, estimates, info)
}

#[test]
fn golden_pipeline_structure_and_estimates() {
    let (shape, estimates, info) = run_pipeline(None);

    // Structure: exactly SIZE distinct keys in the data domain, 1-D.
    assert_eq!(shape.dims, 1);
    assert_eq!(shape.keys.len(), SIZE);
    let distinct: HashSet<u64> = shape.keys.iter().copied().collect();
    assert_eq!(distinct.len(), SIZE, "duplicate keys in summary");
    assert!(shape.keys.iter().all(|&k| k < N), "key outside data domain");
    let tau = shape.tau_nano as f64 / 1e9;
    assert!(tau > 0.0, "τ must be positive for n > s");

    // Every heavy key (w ≥ τ) must be present — IPPS certainty.
    for i in 0..N {
        if weight(i) >= tau {
            assert!(distinct.contains(&i), "heavy key {i} missing");
        }
    }

    // Estimates: total conserved exactly; intervals within τ·Δ, Δ < 2.
    let golden = golden_queries();
    let (_, exact_total) = golden[0];
    assert!(
        (estimates[0] - exact_total).abs() <= 1e-6 * exact_total,
        "total {} vs exact {exact_total}",
        estimates[0]
    );
    for (((lo, hi), exact), est) in golden.iter().zip(&estimates).skip(1) {
        assert!(
            (est - exact).abs() <= 2.0 * tau + 1e-9,
            "range {lo}..{hi}: estimate {est} vs exact {exact} beyond 2τ = {}",
            2.0 * tau
        );
    }

    // Info block agrees with the summary file itself.
    assert_eq!(parse_info_field(&info, "keys") as usize, SIZE);
    assert_eq!(parse_info_field(&info, "dims") as usize, 1);
    assert!((parse_info_field(&info, "tau") - tau).abs() < 1e-9);
    assert!((parse_info_field(&info, "total estimate") - estimates[0]).abs() < 1e-6);
}

#[test]
fn golden_pipeline_is_deterministic() {
    // Same seed → structurally identical output, twice — serial and sharded.
    for shards in [None, Some("4")] {
        let (shape_a, est_a, info_a) = run_pipeline(shards);
        let (shape_b, est_b, info_b) = run_pipeline(shards);
        assert_eq!(shape_a, shape_b, "shards {shards:?}: summary changed");
        assert_eq!(est_a, est_b, "shards {shards:?}: estimates changed");
        assert_eq!(info_a, info_b, "shards {shards:?}: info changed");
    }
}

#[test]
fn golden_sharded_pipeline_structure() {
    let (shape, estimates, _) = run_pipeline(Some("4"));
    assert_eq!(shape.dims, 1);
    assert_eq!(shape.keys.len(), SIZE);
    let tau = shape.tau_nano as f64 / 1e9;
    assert!(tau > 0.0);
    let golden = golden_queries();
    let (_, exact_total) = golden[0];
    assert!(
        (estimates[0] - exact_total).abs() <= 1e-6 * exact_total,
        "sharded total {} vs exact {exact_total}",
        estimates[0]
    );
    // 4 shards = 2 merge levels: Δ < 2·(log₂ 4 + 1) = 6.
    for (((lo, hi), exact), est) in golden.iter().zip(&estimates).skip(1) {
        assert!(
            (est - exact).abs() <= 6.0 * tau + 1e-9,
            "sharded range {lo}..{hi}: {est} vs {exact} beyond 6τ"
        );
    }
}
