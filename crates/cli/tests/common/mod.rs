//! Shared plumbing for the `sas` binary integration tests (smoke, golden,
//! persistence, daemon, atomic/info).
#![allow(dead_code)] // each test binary uses a different subset

use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temp path that is removed when dropped. Uniqueness combines the
/// pid with a process-wide counter: tests run as parallel threads of one
/// process, so the pid alone would race on reused names.
pub struct TempFile(PathBuf);

impl TempFile {
    pub fn create(name: &str, contents: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("sas-test-{}-{id}-{name}", std::process::id()));
        fs::write(&path, contents).expect("write temp file");
        TempFile(path)
    }

    pub fn path(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

/// Runs the compiled `sas` binary, asserting the expected success/failure.
pub fn sas(args: &[&str], expect_success: bool) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sas"))
        .args(args)
        .output()
        .expect("failed to spawn sas binary");
    assert_eq!(
        out.status.success(),
        expect_success,
        "sas {args:?} exited with {:?}\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    (
        String::from_utf8(out.stdout).expect("non-UTF-8 stdout"),
        String::from_utf8(out.stderr).expect("non-UTF-8 stderr"),
    )
}

/// Extracts a numeric `field: value` line from `sas info` output.
pub fn parse_info_field(info: &str, field: &str) -> f64 {
    info.lines()
        .find_map(|l| l.strip_prefix(&format!("{field}: ")))
        .unwrap_or_else(|| panic!("no '{field}:' line in info output:\n{info}"))
        .trim()
        .parse()
        .expect("numeric info field")
}
