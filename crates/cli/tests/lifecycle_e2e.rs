//! Lifecycle end-to-end through the real binaries: a TTL policy installed
//! over the wire, the daemon's own timer expiring windows, gap-aware
//! answers spanning expired and live data, a `sas client watch` process
//! receiving pushes bit-identical to polling, `sas info` summarizing the
//! store, and a restart proving retention survives recovery with no
//! expired window resurrected.

mod common;

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use common::sas;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sas-lifecycle-test-{}-{id}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A running `sas serve` child whose address was read from its readiness
/// line; killed on drop if the test failed before the clean shutdown.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(store_dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sas"))
            .arg("serve")
            .arg(store_dir)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn sas serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before its readiness line")
                .expect("readable stderr");
            if let Some(rest) = line.strip_prefix("sas-store: listening on ") {
                break rest.trim().to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    fn shutdown(mut self) {
        sas(&["client", &self.addr, "shutdown"], true);
        let status = self.child.wait().expect("wait for serve");
        assert!(status.success(), "serve exited with {status:?}");
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn write_tsv(dir: &Path, name: &str, lo: u64, n: u64) -> PathBuf {
    let mut text = String::new();
    for k in lo..lo + n {
        text.push_str(&format!("{k}\t{}\n", 1.0 + (k % 7) as f64));
    }
    let path = dir.join(name);
    fs::write(&path, text).unwrap();
    path
}

fn ingest(addr: &str, dataset: &str, data: &Path, ts: u64) {
    sas(
        &[
            "client",
            addr,
            "ingest",
            data.to_str().unwrap(),
            "--dataset",
            dataset,
            "--ts",
            &ts.to_string(),
        ],
        true,
    );
}

/// Scrapes one `name: value` counter from `sas client stats`.
fn stat(addr: &str, name: &str) -> u64 {
    let (stdout, _) = sas(&["client", addr, "stats"], true);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name}: ")))
        .unwrap_or_else(|| panic!("no '{name}' in stats:\n{stdout}"))
        .trim()
        .parse()
        .expect("numeric stat")
}

#[test]
fn offline_policy_management_on_a_store_directory() {
    let work = TempDir::new("offline-policy");
    let store_dir = work.path().join("store");
    fs::create_dir_all(&store_dir).unwrap();

    // Set against the directory (no daemon), with every knob.
    let (_, err) = sas(
        &[
            "policy",
            "set",
            store_dir.to_str().unwrap(),
            "--dataset",
            "web",
            "--ttl",
            "120",
            "--compact-after",
            "60",
            "--budget",
            "sample=32",
        ],
        true,
    );
    assert!(err.contains("set policy for web"), "{err}");
    let (rows, _) = sas(&["policy", "show", store_dir.to_str().unwrap()], true);
    assert_eq!(
        rows.trim(),
        "web\tttl=120 compact_after=60 budget[sample]=32"
    );

    // The daemon opening the same directory sees the offline policy.
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "0"]);
    let (rows, _) = sas(&["policy", "show", &daemon.addr, "--dataset", "web"], true);
    assert!(rows.contains("ttl=120"), "{rows}");
    daemon.shutdown();

    // No flags at all clears it.
    let (_, err) = sas(
        &[
            "policy",
            "set",
            store_dir.to_str().unwrap(),
            "--dataset",
            "web",
        ],
        true,
    );
    assert!(err.contains("cleared policy for web"), "{err}");
    let (rows, _) = sas(&["policy", "show", store_dir.to_str().unwrap()], true);
    assert_eq!(rows.trim(), "");
}

#[test]
fn retention_coverage_watch_and_restart() {
    let work = TempDir::new("e2e");
    let store_dir = work.path().join("store");
    // --compact-every drives the daemon's lifecycle timer (retention then
    // compaction); keep it fast so expiry happens within the test.
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "40"]);
    let addr = daemon.addr.clone();

    // ---- Live watch: pushes bit-identical to polling -------------------
    // Watched on its own dataset so the retention part below can never
    // race the byte comparison.
    let mut watcher = Command::new(env!("CARGO_BIN_EXE_sas"))
        .args([
            "client",
            &addr,
            "watch",
            "--dataset",
            "pulse",
            "--range",
            "0..",
            "--count",
            "3",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sas client watch");
    let mut watch_out = BufReader::new(watcher.stdout.take().unwrap()).lines();
    // The first stdout line is the baseline poll — once it arrives the
    // subscription is registered and ingests may start.
    let baseline = watch_out.next().unwrap().unwrap();
    assert!(
        baseline.starts_with("0 "),
        "baseline should be empty: {baseline}"
    );

    let mut pushes = Vec::new();
    for i in 0..3u64 {
        let data = write_tsv(work.path(), &format!("p{i}.tsv"), i * 100, 50);
        ingest(&addr, "pulse", &data, i * 60);
        pushes.push(watch_out.next().unwrap().unwrap());
    }
    let status = watcher.wait().expect("watcher exit");
    assert!(status.success(), "watcher exited with {status:?}");

    // Totals only grow, so the three pushes are strictly increasing.
    let values: Vec<f64> = pushes
        .iter()
        .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
        .collect();
    assert!(values.windows(2).all(|w| w[0] < w[1]), "{values:?}");
    // The final push is bit-identical to polling the same query now:
    // identical estimate line, shortest-roundtrip floats and all.
    let (polled, _) = sas(
        &[
            "client",
            &addr,
            "query",
            "--dataset",
            "pulse",
            "--range",
            "0..",
            "--confidence",
            "0.95",
        ],
        true,
    );
    assert_eq!(polled.trim(), pushes[2], "push vs poll");

    // ---- Retention: TTL policy, timer-driven expiry --------------------
    let (_, err) = sas(
        &["policy", "set", &addr, "--dataset", "web", "--ttl", "120"],
        true,
    );
    assert!(err.contains("set policy for web"), "{err}");
    let (rows, _) = sas(&["policy", "show", &addr], true);
    assert!(rows.contains("web\tttl=120"), "{rows}");

    for i in 0..5u64 {
        let data = write_tsv(work.path(), &format!("w{i}.tsv"), i * 100, 50);
        ingest(&addr, "web", &data, i * 60);
    }
    // Watermark 300, TTL 120: the daemon's timer must expire the three
    // minutes ending ≤180 with no client asking.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stat(&addr, "expired_windows") < 3 {
        assert!(Instant::now() < deadline, "retention timer never fired");
        std::thread::sleep(Duration::from_millis(25));
    }

    // ---- Gap-aware answer spanning expired + live windows --------------
    let (stdout, _) = sas(
        &[
            "client",
            &addr,
            "query",
            "--dataset",
            "web",
            "--range",
            "0..",
            "--since",
            "0",
            "--until",
            "299",
            "--confidence",
            "0.95",
            "--coverage",
        ],
        true,
    );
    let mut lines = stdout.lines();
    let estimate = lines.next().unwrap();
    assert!(!estimate.starts_with("0 "), "live windows still answer");
    assert_eq!(lines.next().unwrap(), "coverage: gaps:0..179(expired)");
    // An expired tick cannot be re-ingested.
    let stale = write_tsv(work.path(), "stale.tsv", 0, 10);
    let (_, err) = sas(
        &[
            "client",
            &addr,
            "ingest",
            stale.to_str().unwrap(),
            "--dataset",
            "web",
            "--ts",
            "0",
        ],
        false,
    );
    assert!(err.contains("accepts ticks >= 180"), "{err}");

    daemon.shutdown();

    // ---- `sas info` on the store directory -----------------------------
    let (info, _) = sas(&["info", store_dir.to_str().unwrap()], true);
    assert!(info.contains("policy: ttl=120"), "{info}");
    assert!(info.contains("dataset web"), "{info}");
    assert!(info.contains("dataset pulse"), "{info}");

    // ---- Restart: recovery resurrects no expired window ----------------
    let daemon = Daemon::spawn(&store_dir, &["--compact-every", "0"]);
    let addr = daemon.addr.clone();
    let (list, _) = sas(&["client", &addr, "list"], true);
    let web_starts: Vec<u64> = list
        .lines()
        .filter(|l| l.starts_with("web\t"))
        .map(|l| l.split('\t').nth(3).unwrap().parse().unwrap())
        .collect();
    assert_eq!(web_starts.len(), 2, "{list}");
    assert!(web_starts.iter().all(|&s| s >= 180), "{list}");
    // The retention floor survived recovery too: same gap report, same
    // refusal to resurrect.
    let (stdout, _) = sas(
        &[
            "client",
            &addr,
            "query",
            "--dataset",
            "web",
            "--range",
            "0..",
            "--since",
            "0",
            "--until",
            "299",
            "--confidence",
            "0.95",
            "--coverage",
        ],
        true,
    );
    assert!(
        stdout.contains("coverage: gaps:0..179(expired)"),
        "{stdout}"
    );
    daemon.shutdown();
}
