//! End-to-end v2 segment surface of the `sas` binary: `compact` converts a
//! store directory between frame and segment files, `info` prints the
//! segment header dump (never a misleading "serialized bytes" line), and
//! `query`/`merge` accept segment files transparently via hydration.

mod common;

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use common::{parse_info_field, sas, TempFile};

use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_core::WeightedKey;
use sas_store::{frame_path, Store, StoreConfig};
use sas_summaries::{StoredSample, Summary};

/// A unique temp directory removed on drop (the store layout is a tree, so
/// the shared `TempFile` is not enough).
struct TempDir(PathBuf);

impl TempDir {
    fn create(name: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sas-cli-seg-{}-{id}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn batch(lo: u64, n: u64, seed: u64) -> Box<dyn Summary> {
    let rows: Vec<WeightedKey> = (lo..lo + n)
        .map(|k| WeightedKey::new(k, 1.0 + (k % 5) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    Box::new(StoredSample::one_dim(sas_sampling::order::sample(
        &rows,
        (n as usize) / 2,
        &mut rng,
    )))
}

/// Seeds a store with two windows and returns their on-disk frame paths.
fn seeded_store_dir(dir: &TempDir) -> Vec<PathBuf> {
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.ingest("web", 5, batch(0, 100, 1)).unwrap();
    store.ingest("api", 5, batch(50, 80, 2)).unwrap();
    store
        .list()
        .iter()
        .map(|row| frame_path(std::path::Path::new(dir.path()), &row.key))
        .collect()
}

#[test]
fn compact_roundtrips_a_store_through_segments() {
    let dir = TempDir::create("roundtrip");
    let files = seeded_store_dir(&dir);
    let v1: Vec<Vec<u8>> = files.iter().map(|f| fs::read(f).unwrap()).collect();

    let (_, status) = sas(&["compact", dir.path(), "--format", "v2"], true);
    assert!(status.contains("converted 2 of 2"), "{status}");
    for f in &files {
        assert!(sas_codec::segment::is_segment(&fs::read(f).unwrap()));
    }
    // Idempotent: nothing left to convert.
    let (_, status) = sas(&["compact", dir.path()], true);
    assert!(status.contains("converted 0 of 2"), "{status}");

    // Back to v1: byte-identical frames.
    let (_, status) = sas(&["compact", dir.path(), "--format", "v1"], true);
    assert!(status.contains("converted 2 of 2"), "{status}");
    let restored: Vec<Vec<u8>> = files.iter().map(|f| fs::read(f).unwrap()).collect();
    assert_eq!(restored, v1);

    // Bad invocations fail cleanly.
    let (_, stderr) = sas(&["compact", dir.path(), "--format", "v7"], false);
    assert!(stderr.contains("unknown --format"), "{stderr}");
    let (_, stderr) = sas(&["compact", "/nonexistent/sas-seg-store"], false);
    assert!(stderr.contains("not a store directory"), "{stderr}");
}

#[test]
fn info_dumps_the_segment_header() {
    let dir = TempDir::create("info");
    let files = seeded_store_dir(&dir);
    let frame = fs::read(&files[0]).unwrap();
    let decoded = sas_summaries::decode_summary(&frame).unwrap();
    sas(&["compact", dir.path(), "--format", "v2"], true);

    let seg_path = files[0].to_str().unwrap();
    let (info, _) = sas(&["info", seg_path], true);
    assert!(info.contains("format: segment v2"), "{info}");
    assert!(info.contains("kind: sample"), "{info}");
    assert!(info.contains("crc: ok"), "{info}");
    assert!(info.contains("  id\telements\toffset\tbytes"), "{info}");
    // The reported metadata matches the decoded summary, and the file size
    // on disk is the segment itself — no v1 re-encode size is shown.
    assert_eq!(
        parse_info_field(&info, "keys") as usize,
        decoded.item_count()
    );
    let seg_len = fs::read(seg_path).unwrap().len();
    assert_eq!(parse_info_field(&info, "file bytes") as usize, seg_len);
    assert!(!info.contains("serialized bytes"), "{info}");

    // Directory mode lists segment files alongside the manifest.
    let (lines, _) = sas(&["info", dir.path()], true);
    assert!(
        lines.lines().any(|l| l.contains("sample")),
        "no summary line in: {lines}"
    );
    assert!(
        lines.lines().any(|l| l.contains("manifest")),
        "no manifest line in: {lines}"
    );
}

#[test]
fn query_and_merge_accept_segment_files() {
    let dir = TempDir::create("query");
    let files = seeded_store_dir(&dir);
    let frame = fs::read(&files[0]).unwrap();
    let decoded = sas_summaries::decode_summary(&frame).unwrap();
    let expect = decoded.range_sum(&[(0, 500)]);
    sas(&["compact", dir.path(), "--format", "v2"], true);

    let seg_path = files[0].to_str().unwrap();
    let (value, _) = sas(&["query", seg_path, "--range", "0..500"], true);
    let value: f64 = value.trim().parse().expect("estimate is a number");
    assert_eq!(value.to_bits(), expect.to_bits());

    // Merging a segment with a v1 frame works: both hydrate to the same
    // owned representation first.
    let other = TempFile::create("other.sas", "");
    fs::write(
        other.path(),
        sas_summaries::encode_summary(decoded.as_ref()),
    )
    .unwrap();
    let merged = TempFile::create("merged.sas", "");
    let (_, status) = sas(
        &["merge", seg_path, other.path(), "--out", merged.path()],
        true,
    );
    assert!(status.contains("merged 2"), "{status}");
    let loaded = sas_summaries::decode_summary(&fs::read(merged.path()).unwrap()).unwrap();
    let doubled = loaded.range_sum(&[(0, 500)]);
    assert!(
        (doubled - 2.0 * expect).abs() <= 1e-9 * expect.abs(),
        "merge of two copies doubles the mass: {doubled} vs {}",
        2.0 * expect
    );
}
