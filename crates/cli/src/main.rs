//! `sas` — build structure-aware sample summaries from TSV data and answer
//! range queries from the summary file alone.
//!
//! ```text
//! sas summarize <data.tsv> --size N [--seed S] [--shards N] > summary.tsv
//! sas query <summary.tsv> --range lo..hi            # 1-D
//! sas query <summary.tsv> --range x0..x1,y0..y1     # 2-D
//! sas info <summary.tsv>
//! ```

use std::process::ExitCode;

use sas_cli::{parse_dataset, parse_range, query, read_summary, summarize_sharded, write_summary};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sas summarize <data.tsv> --size N [--seed S] [--shards N]\n  sas query <summary.tsv> --range lo..hi[,lo..hi]\n  sas info <summary.tsv>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "summarize" => cmd_summarize(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "info" => cmd_info(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_summarize(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing input path")?;
    let size: usize = flag_value(args, "--size")
        .ok_or("missing --size")?
        .parse()
        .map_err(|_| "bad --size")?;
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --seed")?
        .unwrap_or(0);
    let shards: usize = flag_value(args, "--shards")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --shards")?
        .unwrap_or(1);
    let text = std::fs::read_to_string(path)?;
    let data = parse_dataset(&text)?;
    let (sample, dims) = summarize_sharded(&data, size, seed, shards)?;
    eprintln!(
        "built {}-key {}–D structure-aware summary (tau = {:.6}, {} shard{})",
        sample.len(),
        dims,
        sample.tau(),
        shards,
        if shards == 1 { "" } else { "s" }
    );
    print!("{}", write_summary(&sample, &data));
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing summary path")?;
    let spec = flag_value(args, "--range").ok_or("missing --range")?;
    let text = std::fs::read_to_string(path)?;
    let summary = read_summary(&text)?;
    let range = parse_range(spec, summary.dims)?;
    let est = query(&summary, &range);
    println!("{est}");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing summary path")?;
    let text = std::fs::read_to_string(path)?;
    let s = read_summary(&text)?;
    println!(
        "keys: {}\ndims: {}\ntau: {}\ntotal estimate: {}",
        s.sample.len(),
        s.dims,
        s.sample.tau(),
        s.sample.total_estimate()
    );
    Ok(())
}
