//! `sas` — build structure-aware summaries from TSV data, persist them as
//! versioned binary files, merge them across processes, answer range
//! queries from a summary file alone, and run the summary-store daemon.
//!
//! ```text
//! sas summarize <data.tsv> --size N [--seed S] [--shards N]
//!               [--kind sample|varopt|qdigest|wavelet|sketch]
//!               [--out file.sas] [--per-shard]        > summary.tsv
//! sas merge <a.sas> <b.sas> [...] --out all.sas [--size N] [--seed S]
//! sas query <summary> --range lo..hi                  # 1-D
//! sas query <summary> --range x0..x1,y0..y1           # 2-D
//! sas query <summary> --range :100 --confidence 0.95  # value ± bound
//! sas query <summary> --queries FILE [--format tsv|json]
//! sas info <summary|dir> [more paths...]
//! sas serve <store-dir> [--addr H:P] [--threads N] [--budget N]
//!           [--cache N] [--compact-every MS] [--max-conns N]
//!           [--read-timeout MS] [--idle-timeout MS] [--shed N]
//! sas policy set <dir|addr> --dataset D [--ttl TICKS]
//!            [--compact-after TICKS] [--budget KIND=N ...]
//! sas policy show <dir|addr> [--dataset D]
//! sas client <addr> query --dataset D --range R [--kind K]
//!            [--since T] [--until T] [--confidence C] [--coverage]
//! sas client <addr> watch --dataset D --range R [--kind K]
//!            [--confidence C] [--count N]
//! sas client <addr> ingest <data.tsv> --dataset D [--ts T] [--kind K]
//!            [--size N] [--seed S]
//! sas client <addr> list | stats | ping | shutdown
//! ```
//!
//! `query` and `info` accept both binary frames and legacy TSV summaries;
//! `info` with several paths (or a store directory) prints one line per
//! frame. Every file the CLI writes goes through temp-file + `rename`, so
//! a crash can never leave a torn frame. `serve` runs the `sas-store`
//! daemon (windowed ingest, merge-tree compaction, snapshot reads) and
//! `client` speaks its wire protocol.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sas_cli::{
    answer_queries, build_summary, format_estimates, info_text, load_summary, merge_summaries,
    parse_dataset, parse_query, parse_range, segment_info_text, summarize_per_shard,
    summarize_sharded, write_summary, Dataset, LoadedSummary, OutputFormat,
};
use sas_store::client::Client;
use sas_store::manifest::Manifest;
use sas_store::policy::Policy;
use sas_store::server::{Server, ServerConfig};
use sas_store::{fsio, StorageFormat, Store, StoreConfig};
use sas_summaries::{encode_summary, StoredSample, SummaryKind};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sas summarize <data.tsv> --size N [--seed S] [--shards N] [--kind K] [--out F] [--per-shard]\n  sas merge <a.sas> <b.sas> [...] --out F [--size N] [--seed S]\n  sas query <summary> --range lo..hi[,lo..hi] [--confidence C] [--format tsv|json]\n  sas query <summary> --queries FILE [--confidence C] [--format tsv|json]\n  sas info <summary|dir> [more paths...]\n  sas compact <store-dir> [--format v1|v2]\n  sas serve <store-dir> [--addr H:P] [--threads N] [--budget N] [--cache N] [--compact-every MS] [--max-conns N] [--read-timeout MS] [--idle-timeout MS] [--shed N] [--slow-query-ms N] [--metrics-every SECS]\n  sas policy set <dir|addr> --dataset D [--ttl TICKS] [--compact-after TICKS] [--budget KIND=N ...]\n  sas policy show <dir|addr> [--dataset D]\n  sas client <addr> query --dataset D --range R [--kind K] [--since T] [--until T] [--confidence C] [--coverage]\n  sas client <addr> watch --dataset D --range R [--kind K] [--confidence C] [--since T] [--until T] [--count N]\n  sas client <addr> ingest <data.tsv> --dataset D [--ts T] [--kind K] [--size N] [--seed S]\n  sas client <addr> metrics [--format prom|tsv|json]\n  sas client <addr> list | stats | ping | shutdown\nranges: lo..hi or lo:hi per axis; either endpoint may be omitted (clamps to the domain)\nquery lines: a range, ranges joined by ';' (disjoint union), 'point C[,C]', 'node LEVEL/INDEX', 'total'\nkinds: sample (default), varopt, qdigest, wavelet, sketch\npolicy set with no policy flags clears the dataset's policy"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "summarize" => cmd_summarize(&args[1..]),
        "merge" => cmd_merge(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "policy" => cmd_policy(&args[1..]),
        "client" => cmd_client(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {flag}").into()),
    }
}

fn cmd_summarize(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing input path")?;
    let size: usize = flag_value(args, "--size")
        .ok_or("missing --size")?
        .parse()
        .map_err(|_| "bad --size")?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let shards: usize = parse_flag(args, "--shards", 1)?;
    let kind = match flag_value(args, "--kind") {
        None => SummaryKind::Sample,
        Some(name) => SummaryKind::from_name(name)
            .ok_or_else(|| format!("unknown --kind '{name}' (see usage)"))?,
    };
    let out = flag_value(args, "--out");
    let text = std::fs::read_to_string(path)?;
    let data = parse_dataset(&text)?;

    if has_flag(args, "--per-shard") {
        let base = out.ok_or("--per-shard requires --out")?;
        if kind != SummaryKind::Sample {
            return Err("--per-shard supports --kind sample only".into());
        }
        let samples = summarize_per_shard(&data, size, seed, shards)?;
        // Tiny inputs may collapse to fewer shards than requested; report
        // the files actually written so scripted merges see real paths.
        let written = samples.len();
        for (i, sample) in samples.into_iter().enumerate() {
            let shard_path = format!("{base}.{i}");
            let stored = StoredSample::one_dim(sample);
            fsio::write_atomic(Path::new(&shard_path), &encode_summary(&stored))?;
        }
        eprintln!(
            "wrote {written} unmerged shard summaries to {base}.0..{base}.{}",
            written - 1
        );
        return Ok(());
    }

    match out {
        Some(out_path) => {
            let summary = build_summary(&data, size, seed, shards, kind)?;
            let bytes = encode_summary(summary.as_ref());
            fsio::write_atomic(Path::new(out_path), &bytes)?;
            eprintln!(
                "wrote {}-item {}–D {} summary ({} bytes) to {out_path}",
                summary.item_count(),
                summary.dims(),
                summary.kind(),
                bytes.len(),
            );
        }
        None => {
            if kind != SummaryKind::Sample {
                return Err(format!(
                    "--kind {kind} has no TSV form; write a binary file with --out"
                )
                .into());
            }
            let (sample, dims) = summarize_sharded(&data, size, seed, shards)?;
            eprintln!(
                "built {}-key {}–D structure-aware summary (tau = {:.6}, {} shard{})",
                sample.len(),
                dims,
                sample.tau(),
                shards,
                if shards == 1 { "" } else { "s" }
            );
            print!("{}", write_summary(&sample, &data));
        }
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    // Positional arguments (input paths) end at the first flag.
    let inputs: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if inputs.len() < 2 {
        return Err("merge needs at least two summary files".into());
    }
    let out = flag_value(args, "--out").ok_or("missing --out")?;
    let budget: Option<usize> = flag_value(args, "--size")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --size")?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let summaries = inputs
        .iter()
        .map(|p| load_summary(&std::fs::read(p.as_str())?).map_err(Into::into))
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
    let n = summaries.len();
    let merged = merge_summaries(summaries, budget, seed)?;
    let bytes = encode_summary(&*merged);
    fsio::write_atomic(Path::new(out), &bytes)?;
    eprintln!(
        "merged {n} {} summaries into {}-item {out} ({} bytes)",
        merged.kind(),
        merged.item_count(),
        bytes.len(),
    );
    Ok(())
}

/// Parses and range-checks a `--confidence` value: `(0, 1]` (1 is only
/// certifiable by the deterministic kinds; sample kinds reject it at
/// answer time when a probabilistic bound is needed).
fn parse_confidence(value: &str) -> Result<f64, Box<dyn std::error::Error>> {
    let c: f64 = value.parse().map_err(|_| "bad --confidence")?;
    if !(c > 0.0 && c <= 1.0) {
        return Err(format!("bad --confidence {value} (want 0 < c <= 1)").into());
    }
    Ok(c)
}

fn cmd_query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing summary path")?;
    let summary = load_summary(&std::fs::read(path)?)?;
    let confidence_flag = flag_value(args, "--confidence");
    let confidence: f64 = match confidence_flag {
        None => 0.95,
        Some(v) => parse_confidence(v)?,
    };
    let format = flag_value(args, "--format")
        .map(OutputFormat::from_name)
        .transpose()?;

    // Batch mode: one query spec per line (ranges, multi-ranges, points,
    // hierarchy nodes, total), answered in a single pass for sample kinds.
    if let Some(file) = flag_value(args, "--queries") {
        let text = std::fs::read_to_string(file)?;
        let queries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| parse_query(l, summary.dims()))
            .collect::<Result<Vec<_>, _>>()?;
        if queries.is_empty() {
            return Err("no queries in the batch file".into());
        }
        let estimates = answer_queries(&summary, &queries, confidence)?;
        print!(
            "{}",
            format_estimates(&queries, &estimates, format.unwrap_or(OutputFormat::Tsv))
        );
        return Ok(());
    }

    let spec = flag_value(args, "--range").ok_or("missing --range (or --queries FILE)")?;
    let q = parse_query(spec, summary.dims())?;
    let estimates = answer_queries(&summary, std::slice::from_ref(&q), confidence)?;
    match (format, confidence_flag) {
        // Bare `--range`: the historical single-value contract.
        (None, None) => println!("{}", estimates[0].value),
        (None, Some(_)) => print!(
            "{}",
            format_estimates(std::slice::from_ref(&q), &estimates, OutputFormat::Bounds)
        ),
        (Some(f), _) => print!(
            "{}",
            format_estimates(std::slice::from_ref(&q), &estimates, f)
        ),
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let paths: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        return Err("missing summary path".into());
    }
    // Expand directories (store layouts) into their frame files, skipping
    // in-flight temp debris. A directory with a decodable manifest is a
    // store: lead with its lifecycle summary (per-dataset policy, window
    // counts per level, oldest/newest span) before the per-frame lines.
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for p in &paths {
        let path = Path::new(p.as_str());
        if path.is_dir() {
            if let Ok(bytes) = std::fs::read(path.join(sas_store::MANIFEST_FILE)) {
                if let Ok(manifest) = Manifest::decode(&bytes) {
                    print!("{}", sas_cli::store_info_text(&manifest));
                }
            }
            files.extend(fsio::walk_files(path)?.into_iter().filter(|f| {
                f.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.contains(fsio::TEMP_INFIX))
            }));
        } else {
            files.push(path.to_path_buf());
        }
    }
    if files.len() == 1 && !Path::new(paths[0].as_str()).is_dir() {
        // Single file keeps the detailed multi-line report. A v2 segment
        // gets its own header dump (section table, CRC status) — it is
        // served in place, so a v1 "serialized bytes" line would mislead.
        let bytes = std::fs::read(&files[0])?;
        if sas_codec::segment::is_segment(&bytes) {
            print!("{}", segment_info_text(&bytes)?);
            return Ok(());
        }
        let summary: LoadedSummary = load_summary(&bytes)?;
        print!("{}", info_text(&summary, Some(bytes.len() as u64)));
        return Ok(());
    }
    // Several paths or a directory: one `path kind items bytes` line per
    // frame (manifests report their window count as items).
    for file in &files {
        let bytes = std::fs::read(file)?;
        let line = match load_summary(&bytes) {
            Ok(summary) => format!(
                "{}\t{}\t{}\t{}",
                file.display(),
                summary.kind(),
                summary.item_count(),
                bytes.len()
            ),
            Err(load_err) => match Manifest::decode(&bytes) {
                Ok(manifest) => format!(
                    "{}\tmanifest\t{}\t{}",
                    file.display(),
                    manifest.entries.len(),
                    bytes.len()
                ),
                Err(_) => format!("{}\terror\t-\t{load_err}", file.display()),
            },
        };
        println!("{line}");
    }
    Ok(())
}

fn cmd_compact(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.first().ok_or("missing store directory")?;
    if !Path::new(dir.as_str()).is_dir() {
        return Err(format!("'{dir}' is not a store directory").into());
    }
    let (format, label) = match flag_value(args, "--format") {
        None | Some("v2") => (StorageFormat::SegmentV2, "v2 segment"),
        Some("v1") => (StorageFormat::FrameV1, "v1 frame"),
        Some(other) => return Err(format!("unknown --format '{other}' (want v1 or v2)").into()),
    };
    let store = Store::open(dir.as_str(), StoreConfig::default())?;
    let windows = store.list().len();
    let converted = store.convert(format)?;
    eprintln!(
        "converted {converted} of {windows} window{} in {dir} to {label} files",
        if windows == 1 { "" } else { "s" }
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.first().ok_or("missing store directory")?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:4741");
    let threads: usize = parse_flag(args, "--threads", 4)?;
    let budget: Option<usize> = flag_value(args, "--budget")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --budget")?;
    let cache_capacity: usize = parse_flag(args, "--cache", 1024)?;
    let compact_every_ms: u64 = parse_flag(args, "--compact-every", 1000)?;
    let defaults = ServerConfig::default();
    let max_conns: usize = parse_flag(args, "--max-conns", defaults.max_conns)?;
    let read_timeout_ms: u64 = parse_flag(
        args,
        "--read-timeout",
        defaults.read_timeout.as_millis() as u64,
    )?;
    // 0 (the default): idle connections are never reaped.
    let idle_timeout_ms: u64 = parse_flag(args, "--idle-timeout", 0)?;
    let shed: usize = parse_flag(args, "--shed", defaults.dataset_inflight)?;
    // Threshold 0 logs every request (handy when tracing a live daemon);
    // omitting the flag disables the slow-query log entirely.
    let slow_query_ms: u64 = parse_flag(args, "--slow-query-ms", u64::MAX)?;
    let metrics_every_secs: u64 = parse_flag(args, "--metrics-every", 0)?;

    let store = Arc::new(Store::open(
        dir.as_str(),
        StoreConfig {
            budget,
            cache_capacity,
        },
    )?);
    let recovered = store.list().len();
    let server = Server::start_with(
        store.clone(),
        addr,
        ServerConfig {
            threads,
            max_conns,
            read_timeout: Duration::from_millis(read_timeout_ms),
            idle_timeout: (idle_timeout_ms > 0).then(|| Duration::from_millis(idle_timeout_ms)),
            dataset_inflight: shed,
            slow_query: (slow_query_ms != u64::MAX).then(|| Duration::from_millis(slow_query_ms)),
            // The event loop drives retention + compaction on this
            // cadence; no separate compactor thread.
            lifecycle_every: (compact_every_ms > 0)
                .then(|| Duration::from_millis(compact_every_ms)),
            ..defaults
        },
    )?;
    // The "listening" line is the readiness signal scripts wait for; it
    // reports the real port when --addr used an ephemeral one.
    eprintln!("sas-store: listening on {}", server.local_addr());
    eprintln!("sas-store: {recovered} windows recovered from {dir}");
    if metrics_every_secs > 0 {
        // Periodic operational dump; dies with the process when the
        // daemon exits, so no shutdown plumbing is needed.
        let store = store.clone();
        std::thread::Builder::new()
            .name("sas-metrics-dump".into())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_secs(metrics_every_secs));
                eprint!("{}", store.obs().snapshot().to_tsv());
            })
            .expect("spawn metrics dumper");
    }
    server.wait();
    eprintln!("sas-store: shut down cleanly");
    Ok(())
}

/// Collects every value of a repeatable flag (`--budget sample=64
/// --budget sketch=32`).
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Builds a [`Policy`] from `--ttl`, `--compact-after`, and repeated
/// `--budget KIND=N` flags. No flags at all yields the empty policy,
/// which `policy set` treats as "clear".
fn parse_policy(args: &[String]) -> Result<Policy, Box<dyn std::error::Error>> {
    let mut policy = Policy {
        retention_ttl: flag_value(args, "--ttl")
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| "bad --ttl")?,
        compact_after: flag_value(args, "--compact-after")
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| "bad --compact-after")?,
        ..Policy::default()
    };
    for spec in flag_values(args, "--budget") {
        let (name, value) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --budget '{spec}' (want KIND=N)"))?;
        let kind = SummaryKind::from_name(name)
            .ok_or_else(|| format!("unknown summary kind '{name}' in --budget"))?;
        let budget: u64 = value
            .parse()
            .map_err(|_| format!("bad --budget '{spec}' (want KIND=N)"))?;
        policy.per_kind_budget.insert(kind.tag(), budget);
    }
    Ok(policy)
}

/// `sas policy set|show` against a store directory (offline) or a running
/// daemon (over the wire) — the target decides.
fn cmd_policy(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let sub = args.first().ok_or("missing policy subcommand (set|show)")?;
    let target = args
        .get(1)
        .ok_or("missing store directory or daemon address")?;
    let rest = &args[2..];
    let offline = Path::new(target.as_str()).is_dir();
    match sub.as_str() {
        "set" => {
            let dataset = flag_value(rest, "--dataset").ok_or("missing --dataset")?;
            let policy = parse_policy(rest)?;
            if offline {
                let store = Store::open(target.as_str(), StoreConfig::default())?;
                store.set_policy(dataset, policy.clone())?;
            } else {
                Client::connect(target.as_str())?.set_policy(dataset, policy.clone())?;
            }
            if policy.is_empty() {
                eprintln!("cleared policy for {dataset}");
            } else {
                eprintln!("set policy for {dataset}: {policy}");
            }
        }
        "show" => {
            let dataset = flag_value(rest, "--dataset");
            let rows = if offline {
                let store = Store::open(target.as_str(), StoreConfig::default())?;
                match dataset {
                    None => store.policies(),
                    Some(d) => store
                        .policy(d)
                        .map(|p| (d.to_string(), p))
                        .into_iter()
                        .collect(),
                }
            } else {
                Client::connect(target.as_str())?.policies(dataset)?
            };
            for (d, p) in rows {
                println!("{d}\t{p}");
            }
        }
        other => return Err(format!("unknown policy subcommand '{other}' (want set|show)").into()),
    }
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.first().ok_or("missing server address")?;
    let sub = args.get(1).ok_or("missing client subcommand")?;
    let rest = &args[2..];
    let mut client = Client::connect(addr.as_str())?;
    match sub.as_str() {
        "query" => {
            let dataset = flag_value(rest, "--dataset").ok_or("missing --dataset")?;
            let kind = parse_kind(rest)?;
            let spec = flag_value(rest, "--range").ok_or("missing --range")?;
            // The daemon knows the series' dimensionality; infer axes from
            // the spec itself.
            let dims = spec.split(',').count();
            let range = parse_range(spec, dims)?;
            let since: Option<u64> = flag_value(rest, "--since")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --since")?;
            let until: Option<u64> = flag_value(rest, "--until")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --until")?;
            let time = match (since, until) {
                (None, None) => None,
                (t0, t1) => Some((t0.unwrap_or(0), t1.unwrap_or(u64::MAX))),
            };
            let confidence = flag_value(rest, "--confidence");
            let (windows, cached) = if has_flag(rest, "--coverage") {
                // Gap-aware protocol: the estimate plus which stretches of
                // the requested span were missing or expired.
                let confidence = confidence
                    .map(parse_confidence)
                    .transpose()?
                    .unwrap_or(0.95);
                let q = sas_summaries::Query::BoxRange(range);
                let ans = client.estimate_cov(dataset, kind, &q, confidence, time)?;
                print_estimate_line(&ans.estimate);
                println!("coverage: {}", ans.coverage);
                (ans.windows, ans.cached)
            } else if let Some(c) = confidence {
                // New protocol: value with an error bar.
                let confidence = parse_confidence(c)?;
                let q = sas_summaries::Query::BoxRange(range);
                let ans = client.estimate(dataset, kind, &q, confidence, time)?;
                print_estimate_line(&ans.estimate);
                (ans.windows, ans.cached)
            } else {
                // Old wire tag, still answered: bare value.
                let ans = client.query(dataset, kind, &range, time)?;
                println!("{}", ans.value);
                (ans.windows, ans.cached)
            };
            eprintln!(
                "consulted {windows} window{}{}",
                if windows == 1 { "" } else { "s" },
                if cached { " (cached)" } else { "" }
            );
        }
        "watch" => {
            let dataset = flag_value(rest, "--dataset").ok_or("missing --dataset")?;
            let kind = parse_kind(rest)?;
            let spec = flag_value(rest, "--range").ok_or("missing --range")?;
            let dims = spec.split(',').count();
            let range = parse_range(spec, dims)?;
            let since: Option<u64> = flag_value(rest, "--since")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --since")?;
            let until: Option<u64> = flag_value(rest, "--until")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| "bad --until")?;
            let time = match (since, until) {
                (None, None) => None,
                (t0, t1) => Some((t0.unwrap_or(0), t1.unwrap_or(u64::MAX))),
            };
            let confidence = flag_value(rest, "--confidence")
                .map(parse_confidence)
                .transpose()?
                .unwrap_or(0.95);
            // 0: watch forever (until the daemon closes the connection).
            let count: u64 = parse_flag(rest, "--count", 0)?;
            let q = sas_summaries::Query::BoxRange(range);
            // Subscribe first, then poll the baseline: once the baseline
            // line is out, the subscription is registered — a script may
            // start ingesting the moment it reads it. The baseline prints
            // in the same format as every later push (pushes go through
            // the daemon's one estimate path), so a push and a poll of the
            // same state print the identical line.
            let watch_id = client.watch(dataset, kind, &q, confidence, time)?;
            let first = client.estimate_cov(dataset, kind, &q, confidence, time)?;
            print_estimate_line(&first.estimate);
            eprintln!("coverage: {}", first.coverage);
            eprintln!("watching {dataset} (watch {watch_id}); updates follow");
            let mut seen = 0u64;
            while count == 0 || seen < count {
                let update = client.next_update()?;
                print_estimate_line(&update.estimate);
                eprintln!(
                    "update watch={} version={} windows={} coverage: {}",
                    update.watch_id, update.version, update.windows, update.coverage
                );
                seen += 1;
            }
        }
        "ingest" => {
            // The data path is strictly positional (before any flag), like
            // every other subcommand — scanning further would mistake flag
            // values for it.
            let path = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or("missing data path (it must come before the flags)")?;
            let dataset = flag_value(rest, "--dataset").ok_or("missing --dataset")?;
            let ts: u64 = parse_flag(rest, "--ts", 0)?;
            let kind = parse_kind(rest)?;
            let seed: u64 = parse_flag(rest, "--seed", 0)?;
            let text = std::fs::read_to_string(path.as_str())?;
            let data = parse_dataset(&text)?;
            let rows = match &data {
                Dataset::OneDim(rows) => rows.len(),
                Dataset::TwoDim(s) => s.len(),
            };
            // Default batch budget: every row survives (an exact batch).
            let size: usize = parse_flag(rest, "--size", rows)?;
            let summary = build_summary(&data, size, seed, 1, kind)?;
            let ack = client.ingest(dataset, ts, encode_summary(summary.as_ref()))?;
            eprintln!(
                "ingested {rows} rows into {}/{kind}/{}/{} ({} items)",
                dataset, ack.level, ack.start, ack.items
            );
        }
        "list" => {
            for row in client.list()? {
                println!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    row.key.dataset,
                    row.key.kind,
                    row.key.level,
                    row.key.start,
                    row.items,
                    row.batches,
                    row.frame_bytes
                );
            }
        }
        "stats" => {
            // The daemon emits stats in its own fixed (not alphabetical)
            // order, which may change across versions; sort by name so the
            // output is stable and diffable.
            let mut pairs = client.stats()?;
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            for (name, value) in pairs {
                println!("{name}: {value}");
            }
        }
        "metrics" => {
            let report = client.metrics()?;
            match flag_value(rest, "--format").unwrap_or("prom") {
                "prom" => print!("{}", report.to_prometheus()),
                "tsv" => print!("{}", report.to_tsv()),
                "json" => print!("{}", report.to_json()),
                other => {
                    return Err(format!("unknown --format '{other}' (want prom|tsv|json)").into())
                }
            }
        }
        "ping" => {
            client.ping()?;
            println!("pong");
        }
        "shutdown" => {
            client.shutdown()?;
            eprintln!("server shut down");
        }
        other => return Err(format!("unknown client subcommand '{other}'").into()),
    }
    Ok(())
}

/// The one-line estimate format shared by `client query --confidence`,
/// `client query --coverage`, and every `client watch` push — identical
/// state must print the identical line.
fn print_estimate_line(e: &sas_summaries::Estimate) {
    println!(
        "{} ±{} [{}, {}] @{}",
        e.value,
        e.half_width(),
        e.lower,
        e.upper,
        e.confidence
    );
}

fn parse_kind(args: &[String]) -> Result<SummaryKind, Box<dyn std::error::Error>> {
    match flag_value(args, "--kind") {
        None => Ok(SummaryKind::Sample),
        Some(name) => {
            SummaryKind::from_name(name).ok_or_else(|| format!("unknown --kind '{name}'").into())
        }
    }
}
