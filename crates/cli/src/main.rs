//! `sas` — build structure-aware summaries from TSV data, persist them as
//! versioned binary files, merge them across processes, and answer range
//! queries from a summary file alone.
//!
//! ```text
//! sas summarize <data.tsv> --size N [--seed S] [--shards N]
//!               [--kind sample|varopt|qdigest|wavelet|sketch]
//!               [--out file.sas] [--per-shard]        > summary.tsv
//! sas merge <a.sas> <b.sas> [...] --out all.sas [--size N] [--seed S]
//! sas query <summary> --range lo..hi                  # 1-D
//! sas query <summary> --range x0..x1,y0..y1           # 2-D
//! sas info <summary>
//! ```
//!
//! `query` and `info` accept both binary frames and legacy TSV summaries.
//! Without `--out`, `summarize` prints the legacy TSV format (sample kind
//! only) on stdout. `--per-shard` writes one unmerged frame per shard
//! (`file.sas.0`, `file.sas.1`, …) for a later `sas merge` — summaries
//! built by different processes or machines combine exactly like the
//! in-memory merge.

use std::process::ExitCode;

use sas_cli::{
    build_summary, info_text, load_summary, merge_summaries, parse_dataset, parse_range, query,
    summarize_per_shard, summarize_sharded, write_summary, LoadedSummary,
};
use sas_summaries::{encode_summary, StoredSample, SummaryKind};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sas summarize <data.tsv> --size N [--seed S] [--shards N] [--kind K] [--out F] [--per-shard]\n  sas merge <a.sas> <b.sas> [...] --out F [--size N] [--seed S]\n  sas query <summary> --range lo..hi[,lo..hi]\n  sas info <summary>\nkinds: sample (default), varopt, qdigest, wavelet, sketch"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "summarize" => cmd_summarize(&args[1..]),
        "merge" => cmd_merge(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "info" => cmd_info(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {flag}").into()),
    }
}

fn cmd_summarize(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing input path")?;
    let size: usize = flag_value(args, "--size")
        .ok_or("missing --size")?
        .parse()
        .map_err(|_| "bad --size")?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let shards: usize = parse_flag(args, "--shards", 1)?;
    let kind = match flag_value(args, "--kind") {
        None => SummaryKind::Sample,
        Some(name) => SummaryKind::from_name(name)
            .ok_or_else(|| format!("unknown --kind '{name}' (see usage)"))?,
    };
    let out = flag_value(args, "--out");
    let text = std::fs::read_to_string(path)?;
    let data = parse_dataset(&text)?;

    if has_flag(args, "--per-shard") {
        let base = out.ok_or("--per-shard requires --out")?;
        if kind != SummaryKind::Sample {
            return Err("--per-shard supports --kind sample only".into());
        }
        let samples = summarize_per_shard(&data, size, seed, shards)?;
        // Tiny inputs may collapse to fewer shards than requested; report
        // the files actually written so scripted merges see real paths.
        let written = samples.len();
        for (i, sample) in samples.into_iter().enumerate() {
            let shard_path = format!("{base}.{i}");
            let stored = StoredSample::one_dim(sample);
            std::fs::write(&shard_path, encode_summary(&stored))?;
        }
        eprintln!(
            "wrote {written} unmerged shard summaries to {base}.0..{base}.{}",
            written - 1
        );
        return Ok(());
    }

    match out {
        Some(out_path) => {
            let summary = build_summary(&data, size, seed, shards, kind)?;
            let bytes = encode_summary(summary.as_ref());
            std::fs::write(out_path, &bytes)?;
            eprintln!(
                "wrote {}-item {}–D {} summary ({} bytes) to {out_path}",
                summary.item_count(),
                summary.dims(),
                summary.kind(),
                bytes.len(),
            );
        }
        None => {
            if kind != SummaryKind::Sample {
                return Err(format!(
                    "--kind {kind} has no TSV form; write a binary file with --out"
                )
                .into());
            }
            let (sample, dims) = summarize_sharded(&data, size, seed, shards)?;
            eprintln!(
                "built {}-key {}–D structure-aware summary (tau = {:.6}, {} shard{})",
                sample.len(),
                dims,
                sample.tau(),
                shards,
                if shards == 1 { "" } else { "s" }
            );
            print!("{}", write_summary(&sample, &data));
        }
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    // Positional arguments (input paths) end at the first flag.
    let inputs: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    if inputs.len() < 2 {
        return Err("merge needs at least two summary files".into());
    }
    let out = flag_value(args, "--out").ok_or("missing --out")?;
    let budget: Option<usize> = flag_value(args, "--size")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --size")?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let summaries = inputs
        .iter()
        .map(|p| load_summary(&std::fs::read(p.as_str())?).map_err(Into::into))
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
    let n = summaries.len();
    let merged = merge_summaries(summaries, budget, seed)?;
    let bytes = encode_summary(&*merged);
    std::fs::write(out, &bytes)?;
    eprintln!(
        "merged {n} {} summaries into {}-item {out} ({} bytes)",
        merged.kind(),
        merged.item_count(),
        bytes.len(),
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing summary path")?;
    let spec = flag_value(args, "--range").ok_or("missing --range")?;
    let summary = load_summary(&std::fs::read(path)?)?;
    let range = parse_range(spec, summary.dims())?;
    let est = query(&summary, &range);
    println!("{est}");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing summary path")?;
    let bytes = std::fs::read(path)?;
    let summary: LoadedSummary = load_summary(&bytes)?;
    print!("{}", info_text(&summary, Some(bytes.len() as u64)));
    Ok(())
}
