//! Library backing the `sas` command-line summarizer.
//!
//! Two summary representations are supported:
//!
//! * **binary frames** (`--out file.sas`) — the versioned `sas-codec` wire
//!   format, covering every registered [`SummaryKind`] (sample, varopt
//!   reservoir, q-digest, wavelet, count-sketch). Frames are durable: they
//!   can be merged (`sas merge`) and queried (`sas query`) by later
//!   processes, on other machines.
//! * **legacy TSV** (stdout) — sample summaries only: header line
//!   `#sas-summary tau=<τ> dims=<d>` followed by
//!   `key<TAB>weight<TAB>adjusted_weight[<TAB>x<TAB>y]` rows.
//!
//! Input data is plain TSV (`#`-comments ignored): `key<TAB>weight` (1-D /
//! order structure) or `x<TAB>y<TAB>weight` (2-D product structure; the key
//! is the row index). Either summary representation is self-contained:
//! queries are answered from the file alone.
//!
//! Every summary loads into [`LoadedSummary`] — a thin wrapper over
//! `Box<dyn Summary>` — so the query, merge, and info paths are free of
//! per-kind dispatch.

use std::collections::HashMap;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_core::estimate::{Sample, SampleEntry};
use sas_core::varopt::VarOptSampler;
use sas_core::WeightedKey;
use sas_sampling::product::SpatialData;
use sas_structures::product::Point;
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::{
    decode_summary, encode_summary, Estimate, Query, QueryBatch, SegmentSummary, StoredSample,
    Summary, SummaryKind,
};

/// Parsed input data: 1-D weighted keys or 2-D located keys.
#[derive(Debug, Clone)]
pub enum Dataset {
    /// `key weight` rows.
    OneDim(Vec<WeightedKey>),
    /// `x y weight` rows (keys are row indices).
    TwoDim(SpatialData),
}

/// Errors surfaced to the CLI user.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parses input TSV into a [`Dataset`]; column count decides the shape.
pub fn parse_dataset(text: &str) -> Result<Dataset, CliError> {
    let mut one: Vec<WeightedKey> = Vec::new();
    let mut two: Vec<(u64, u64, f64)> = Vec::new();
    let mut cols: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match cols {
            None => cols = Some(fields.len()),
            Some(c) if c != fields.len() => {
                return err(format!(
                    "line {}: expected {} columns, found {}",
                    lineno + 1,
                    c,
                    fields.len()
                ))
            }
            _ => {}
        }
        let parse_u = |s: &str| -> Result<u64, CliError> {
            s.parse()
                .map_err(|_| CliError(format!("line {}: bad integer '{s}'", lineno + 1)))
        };
        let parse_f = |s: &str| -> Result<f64, CliError> {
            let v: f64 = s
                .parse()
                .map_err(|_| CliError(format!("line {}: bad number '{s}'", lineno + 1)))?;
            if !v.is_finite() || v < 0.0 {
                return err(format!("line {}: weight must be >= 0", lineno + 1));
            }
            Ok(v)
        };
        match fields.len() {
            2 => one.push(WeightedKey::new(parse_u(fields[0])?, parse_f(fields[1])?)),
            3 => two.push((
                parse_u(fields[0])?,
                parse_u(fields[1])?,
                parse_f(fields[2])?,
            )),
            n => {
                return err(format!(
                    "line {}: expected 2 or 3 columns, found {n}",
                    lineno + 1
                ))
            }
        }
    }
    match cols {
        None => err("input is empty"),
        Some(2) => Ok(Dataset::OneDim(one)),
        Some(3) => Ok(Dataset::TwoDim(SpatialData::from_xyw(&two))),
        Some(n) => err(format!("unsupported column count {n}")),
    }
}

/// Builds a structure-aware sample summary (serial, one thread).
pub fn summarize(data: &Dataset, size: usize, seed: u64) -> Result<(Sample, usize), CliError> {
    summarize_sharded(data, size, seed, 1)
}

/// Builds a structure-aware sample summary using `shards` parallel workers.
///
/// With `shards == 1` this is the serial path. For 1-D data the input is
/// split into contiguous key ranges, each shard is summarized by the
/// order-structure sampler on its own thread, and the per-shard samples are
/// merged bottom-up with the structure-aware threshold merge (see
/// `sas_sampling::sharded`). 2-D data does not support sharding yet.
pub fn summarize_sharded(
    data: &Dataset,
    size: usize,
    seed: u64,
    shards: usize,
) -> Result<(Sample, usize), CliError> {
    if size == 0 {
        return err("summary size must be positive");
    }
    if shards == 0 {
        return err("--shards must be positive");
    }
    match data {
        Dataset::OneDim(rows) => {
            if rows.is_empty() {
                return err("no data rows");
            }
            if shards == 1 {
                let mut rng = StdRng::seed_from_u64(seed);
                Ok((sas_sampling::order::sample(rows, size, &mut rng), 1))
            } else {
                let cfg = sas_sampling::sharded::ShardedConfig::key_range(shards, seed);
                Ok((
                    sas_sampling::sharded::summarize_sharded(rows, size, &cfg),
                    1,
                ))
            }
        }
        Dataset::TwoDim(spatial) => {
            if spatial.is_empty() {
                return err("no data rows");
            }
            if shards > 1 {
                return err("--shards currently supports 1-D (key weight) data only");
            }
            let mut rng = StdRng::seed_from_u64(seed);
            Ok((
                sas_sampling::two_pass::sample_product(spatial, size, 5, &mut rng),
                2,
            ))
        }
    }
}

/// Builds the per-shard samples without merging them — the distributed
/// workflow's first stage: each sample is persisted to its own file and
/// merged later by a separate `sas merge` process. 1-D data only.
pub fn summarize_per_shard(
    data: &Dataset,
    size: usize,
    seed: u64,
    shards: usize,
) -> Result<Vec<Sample>, CliError> {
    if size == 0 {
        return err("summary size must be positive");
    }
    if shards == 0 {
        return err("--shards must be positive");
    }
    match data {
        Dataset::OneDim(rows) => {
            if rows.is_empty() {
                return err("no data rows");
            }
            let cfg = sas_sampling::sharded::ShardedConfig::key_range(shards, seed);
            Ok(sas_sampling::sharded::per_shard_samples(rows, size, &cfg))
        }
        Dataset::TwoDim(_) => err("--per-shard currently supports 1-D (key weight) data only"),
    }
}

/// Wraps a sample over `data` as an erased [`Summary`] (attaching locations
/// for 2-D data).
fn stored_from(sample: Sample, data: &Dataset) -> Result<StoredSample, CliError> {
    match data {
        Dataset::OneDim(_) => Ok(StoredSample::one_dim(sample)),
        Dataset::TwoDim(spatial) => {
            let by_key: HashMap<u64, Point> = spatial
                .keys
                .iter()
                .zip(&spatial.points)
                .map(|(wk, p)| (wk.key, p.clone()))
                .collect();
            let points = sample
                .iter()
                .map(|e| {
                    by_key
                        .get(&e.key)
                        .cloned()
                        .map(|p| (e.key, p))
                        .ok_or_else(|| CliError(format!("sampled key {} has no location", e.key)))
                })
                .collect::<Result<HashMap<_, _>, _>>()?;
            StoredSample::two_dim(sample, points).map_err(CliError)
        }
    }
}

/// Smallest `bits` with every coordinate of `spatial` below `2^bits`.
fn domain_bits(spatial: &SpatialData) -> u32 {
    spatial
        .points
        .iter()
        .flat_map(|p| [p.coord(0), p.coord(1)])
        .map(|c| 64 - c.leading_zeros())
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Builds a summary of the requested kind. This is the *construction*
/// dispatch — the one place the CLI names concrete summary types; query,
/// merge, and info all operate on the returned `Box<dyn Summary>`.
pub fn build_summary(
    data: &Dataset,
    size: usize,
    seed: u64,
    shards: usize,
    kind: SummaryKind,
) -> Result<Box<dyn Summary>, CliError> {
    if kind != SummaryKind::Sample && shards != 1 {
        return err(format!("--shards supports --kind sample only, not {kind}"));
    }
    match kind {
        SummaryKind::Sample => {
            let (sample, _) = summarize_sharded(data, size, seed, shards)?;
            Ok(Box::new(stored_from(sample, data)?))
        }
        SummaryKind::VarOptReservoir => match data {
            Dataset::OneDim(rows) => {
                if rows.is_empty() {
                    return err("no data rows");
                }
                if size == 0 {
                    return err("summary size must be positive");
                }
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sampler = VarOptSampler::new(size);
                for wk in rows {
                    sampler.push(wk.key, wk.weight, &mut rng);
                }
                Ok(Box::new(sampler))
            }
            Dataset::TwoDim(_) => err("--kind varopt requires 1-D (key weight) data"),
        },
        SummaryKind::QDigest | SummaryKind::Wavelet | SummaryKind::CountSketch => {
            let Dataset::TwoDim(spatial) = data else {
                return err(format!("--kind {kind} requires 2-D (x y weight) data"));
            };
            if spatial.is_empty() {
                return err("no data rows");
            }
            if size == 0 {
                return err("summary size must be positive");
            }
            let bits = domain_bits(spatial);
            // The dyadic summaries shift by `bits`/`level`; coordinates at
            // or above 2^32 would need bits = 33..64, where the builds'
            // per-point (bits+1)² cost explodes and bits = 64 overflows the
            // shifts outright. Reject early with a clean message.
            if bits > 32 {
                return err(format!(
                    "--kind {kind} supports coordinates below 2^32 (data needs 2^{bits})"
                ));
            }
            match kind {
                SummaryKind::QDigest => Ok(Box::new(QDigestSummary::build(spatial, bits, size))),
                SummaryKind::Wavelet => {
                    Ok(Box::new(WaveletSummary::build(spatial, bits, bits, size)))
                }
                SummaryKind::CountSketch => {
                    if bits > 16 {
                        return err(format!(
                            "--kind sketch supports domains up to 2^16 per axis (data needs 2^{bits})"
                        ));
                    }
                    Ok(Box::new(SketchSummary::build(
                        spatial, bits, bits, size, seed,
                    )))
                }
                _ => unreachable!("outer match covers the deterministic kinds"),
            }
        }
    }
}

/// Serializes a sample summary as legacy TSV (with locations for 2-D data).
pub fn write_summary(sample: &Sample, data: &Dataset) -> String {
    let dims = match data {
        Dataset::OneDim(_) => 1,
        Dataset::TwoDim(_) => 2,
    };
    let mut out = String::new();
    let _ = writeln!(out, "#sas-summary tau={} dims={}", sample.tau(), dims);
    for e in sample.iter() {
        match data {
            Dataset::OneDim(_) => {
                let _ = writeln!(out, "{}\t{}\t{}", e.key, e.weight, e.adjusted_weight);
            }
            Dataset::TwoDim(spatial) => {
                let p = spatial.point_of(e.key).expect("sampled key has a location");
                let _ = writeln!(
                    out,
                    "{}\t{}\t{}\t{}\t{}",
                    e.key,
                    e.weight,
                    e.adjusted_weight,
                    p.coord(0),
                    p.coord(1)
                );
            }
        }
    }
    out
}

/// A deserialized summary ready for querying: a thin wrapper over the
/// erased [`Summary`] object. All behaviour comes from the trait — the
/// wrapper adds only the loading logic (binary frame or legacy TSV).
#[derive(Debug)]
pub struct LoadedSummary(pub Box<dyn Summary>);

impl std::ops::Deref for LoadedSummary {
    type Target = dyn Summary;

    fn deref(&self) -> &Self::Target {
        self.0.as_ref()
    }
}

/// Loads a summary from raw file bytes, accepting every on-disk
/// representation: v1 binary frames and v2 segments are detected by magic,
/// anything else parses as TSV. Segments are hydrated into owned summaries
/// so the query and merge paths behave exactly as for frames.
pub fn load_summary(bytes: &[u8]) -> Result<LoadedSummary, CliError> {
    if sas_codec::is_frame(bytes) {
        return decode_summary(bytes)
            .map(LoadedSummary)
            .map_err(|e| CliError(e.to_string()));
    }
    if sas_codec::segment::is_segment(bytes) {
        return SegmentSummary::from_vec(bytes.to_vec())
            .map(|s| LoadedSummary(s.hydrate()))
            .map_err(|e| CliError(e.to_string()));
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| CliError("summary is neither a binary frame nor UTF-8 TSV".into()))?;
    read_summary(text)
}

/// Parses a legacy TSV summary produced by [`write_summary`].
pub fn read_summary(text: &str) -> Result<LoadedSummary, CliError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(CliError("empty summary".into()))?;
    if !header.starts_with("#sas-summary") {
        return err("missing #sas-summary header");
    }
    let mut tau = None;
    let mut dims = None;
    for tok in header.split_whitespace().skip(1) {
        if let Some(v) = tok.strip_prefix("tau=") {
            tau = v.parse::<f64>().ok();
        } else if let Some(v) = tok.strip_prefix("dims=") {
            dims = v.parse::<usize>().ok();
        }
    }
    let tau = tau.ok_or(CliError("header missing tau".into()))?;
    let dims = dims.ok_or(CliError("header missing dims".into()))?;
    if dims != 1 && dims != 2 {
        return err(format!("unsupported dims {dims}"));
    }
    let mut entries = Vec::new();
    let mut points = HashMap::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let want = if dims == 1 { 3 } else { 5 };
        if f.len() != want {
            return err(format!("line {}: expected {want} fields", lineno + 2));
        }
        let key: u64 = f[0]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad key", lineno + 2)))?;
        let weight: f64 = f[1]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad weight", lineno + 2)))?;
        let adjusted: f64 = f[2]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad adjusted weight", lineno + 2)))?;
        entries.push(SampleEntry {
            key,
            weight,
            adjusted_weight: adjusted,
        });
        if dims == 2 {
            let x: u64 = f[3]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad x", lineno + 2)))?;
            let y: u64 = f[4]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad y", lineno + 2)))?;
            points.insert(key, Point::xy(x, y));
        }
    }
    let sample = Sample::from_entries(entries, tau);
    let stored = if dims == 1 {
        StoredSample::one_dim(sample)
    } else {
        StoredSample::two_dim(sample, points).map_err(CliError)?
    };
    Ok(LoadedSummary(Box::new(stored)))
}

/// Parses one axis spec: `lo..hi` or `lo:hi`, either endpoint optional
/// (`..hi` / `:hi` clamps to 0, `lo..` / `lo:` clamps to the domain top,
/// `:` alone spans everything). Reversed bounds are a hard error — never a
/// silent 0-mass range.
fn parse_axis(p: &str) -> Result<(u64, u64), CliError> {
    let (lo, hi) = p
        .split_once("..")
        .or_else(|| p.split_once(':'))
        .ok_or(CliError(format!("bad range '{p}' (want lo..hi or lo:hi)")))?;
    let lo: u64 = if lo.is_empty() {
        0
    } else {
        lo.parse()
            .map_err(|_| CliError(format!("bad bound '{lo}'")))?
    };
    let hi: u64 = if hi.is_empty() {
        u64::MAX
    } else {
        hi.parse()
            .map_err(|_| CliError(format!("bad bound '{hi}'")))?
    };
    if lo > hi {
        return err(format!(
            "reversed range '{p}': lower bound {lo} exceeds upper bound {hi}"
        ));
    }
    Ok((lo, hi))
}

/// Parses a range spec: one axis spec per summary dimension, separated by
/// commas — `lo..hi` (1-D) or `x0..x1,y0..y1` (2-D), open-ended endpoints
/// allowed (`:100,50:` clamps to the domain).
pub fn parse_range(spec: &str, dims: usize) -> Result<Vec<(u64, u64)>, CliError> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != dims {
        return err(format!(
            "range must have {dims} axis spec(s), got {}",
            parts.len()
        ));
    }
    parts.iter().map(|p| parse_axis(p)).collect()
}

/// Parses one query spec (a `--queries` file line or a `--range` value):
///
/// * `total` — the total weight;
/// * `point C[,C]` — a single key / location;
/// * `node LEVEL/INDEX` — a dyadic hierarchy node on axis 0;
/// * a range spec (see [`parse_range`]), or several separated by `;` for a
///   disjoint multi-range sum.
pub fn parse_query(spec: &str, dims: usize) -> Result<Query, CliError> {
    let spec = spec.trim();
    if spec == "total" {
        return Ok(Query::Total);
    }
    if let Some(rest) = spec.strip_prefix("point ") {
        let coords = rest
            .trim()
            .split(',')
            .map(|c| {
                c.trim()
                    .parse::<u64>()
                    .map_err(|_| CliError(format!("bad coordinate '{c}'")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if coords.len() != dims {
            return err(format!(
                "point needs {dims} coordinate(s), got {}",
                coords.len()
            ));
        }
        return Ok(Query::Point(coords));
    }
    if let Some(rest) = spec.strip_prefix("node ") {
        let (level, index) = rest
            .trim()
            .split_once('/')
            .ok_or(CliError(format!("bad node '{rest}' (want LEVEL/INDEX)")))?;
        let level: u32 = level
            .parse()
            .map_err(|_| CliError(format!("bad node level '{level}'")))?;
        let index: u64 = index
            .parse()
            .map_err(|_| CliError(format!("bad node index '{index}'")))?;
        return Ok(Query::HierarchyNode { level, index });
    }
    let boxes = spec
        .split(';')
        .map(|r| parse_range(r.trim(), dims))
        .collect::<Result<Vec<_>, _>>()?;
    let query = if boxes.len() == 1 {
        Query::BoxRange(boxes.into_iter().next().expect("one box"))
    } else {
        Query::MultiRange(boxes)
    };
    // Surface structural problems (overlapping multi-range boxes) here,
    // with the CLI's error prefix, rather than at answer time.
    query.canonical().map_err(|e| CliError(e.to_string()))?;
    Ok(query)
}

/// Answers a range query from a loaded summary — pure trait dispatch, no
/// per-kind branching. Value-only; [`answer_queries`] returns bounds.
pub fn query(summary: &LoadedSummary, range: &[(u64, u64)]) -> f64 {
    summary.range_sum(range)
}

/// Answers a batch of queries with error bounds — one pass over the
/// summary's items for sample-based kinds.
pub fn answer_queries(
    summary: &LoadedSummary,
    queries: &[Query],
    confidence: f64,
) -> Result<Vec<Estimate>, CliError> {
    let batch =
        QueryBatch::new(queries.to_vec(), confidence).map_err(|e| CliError(e.to_string()))?;
    batch
        .evaluate(&**summary)
        .map_err(|e| CliError(e.to_string()))
}

/// Output shape for query answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// One human-readable `value ±half [lower, upper] @confidence` line.
    Bounds,
    /// Tab-separated: `query value lower upper variance confidence`.
    Tsv,
    /// A JSON array of answer objects.
    Json,
}

impl OutputFormat {
    /// Parses a `--format` value (`tsv` or `json`).
    pub fn from_name(name: &str) -> Result<Self, CliError> {
        match name {
            "tsv" => Ok(OutputFormat::Tsv),
            "json" => Ok(OutputFormat::Json),
            other => err(format!("unknown --format '{other}' (want tsv or json)")),
        }
    }
}

/// Renders query answers in the requested format.
pub fn format_estimates(queries: &[Query], estimates: &[Estimate], format: OutputFormat) -> String {
    let mut out = String::new();
    match format {
        OutputFormat::Bounds => {
            for e in estimates {
                let _ = writeln!(
                    out,
                    "{} ±{} [{}, {}] @{}",
                    e.value,
                    e.half_width(),
                    e.lower,
                    e.upper,
                    e.confidence
                );
            }
        }
        OutputFormat::Tsv => {
            let _ = writeln!(out, "#query\tvalue\tlower\tupper\tvariance\tconfidence");
            for (q, e) in queries.iter().zip(estimates) {
                let _ = writeln!(
                    out,
                    "{q}\t{}\t{}\t{}\t{}\t{}",
                    e.value, e.lower, e.upper, e.variance, e.confidence
                );
            }
        }
        OutputFormat::Json => {
            let _ = writeln!(out, "[");
            for (i, (q, e)) in queries.iter().zip(estimates).enumerate() {
                let comma = if i + 1 == estimates.len() { "" } else { "," };
                let _ = writeln!(
                    out,
                    "  {{\"query\": \"{q}\", \"value\": {}, \"lower\": {}, \"upper\": {}, \"variance\": {}, \"confidence\": {}}}{comma}",
                    e.value, e.lower, e.upper, e.variance, e.confidence
                );
            }
            let _ = writeln!(out, "]");
        }
    }
    out
}

/// Merges summaries (disjoint underlying data) through the erased merge —
/// no per-kind branching. `budget` bounds the merged size for kinds that
/// support re-subsampling; `seed` drives the randomized merges.
///
/// Delegates to [`sas_summaries::merge_tree`]: adjacent pairs merge
/// bottom-up in a binary tree (for budgeted samples each merge level adds
/// less than 2 to any interval's discrepancy, so merging `N` shard files
/// pays `O(log₂ N)` levels). The store's window compaction uses the same
/// function, which is what makes `sas merge` a faithful offline replay of
/// a compaction.
pub fn merge_summaries(
    summaries: Vec<LoadedSummary>,
    budget: Option<usize>,
    seed: u64,
) -> Result<LoadedSummary, CliError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let erased: Vec<Box<dyn Summary>> = summaries.into_iter().map(|s| s.0).collect();
    sas_summaries::merge_tree(erased, budget, &mut rng)
        .map(LoadedSummary)
        .map_err(|e| CliError(e.to_string()))
}

/// Renders the `sas info` report: build metadata from the erased summary
/// (kind, size on the paper's space axis, serialized bytes) plus the
/// on-disk size when the summary came from a file.
pub fn info_text(summary: &LoadedSummary, file_bytes: Option<u64>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kind: {}", summary.kind());
    let _ = writeln!(out, "keys: {}", summary.item_count());
    let _ = writeln!(out, "dims: {}", summary.dims());
    if let Some(tau) = summary.tau() {
        let _ = writeln!(out, "tau: {tau}");
    }
    let _ = writeln!(out, "total estimate: {}", summary.total_estimate());
    let _ = writeln!(
        out,
        "serialized bytes: {}",
        encode_summary(&**summary).len()
    );
    if let Some(n) = file_bytes {
        let _ = writeln!(out, "file bytes: {n}");
    }
    out
}

/// Renders the `sas info` summary of a store directory from its decoded
/// manifest: one block per dataset with its lifecycle policy (`default`
/// when none is installed), the window count per series level, and the
/// oldest/newest window span. Datasets that only have a policy (no
/// windows yet, or all expired) still get a block — the policy is state
/// worth seeing.
pub fn store_info_text(manifest: &sas_store::manifest::Manifest) -> String {
    use std::collections::BTreeMap;
    /// Per-series rollup: (window count, oldest start, newest end).
    type SeriesSpans = BTreeMap<(String, String), (u64, u64, u64)>;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "store: {} window{}, manifest sequence {}",
        manifest.entries.len(),
        if manifest.entries.len() == 1 { "" } else { "s" },
        manifest.sequence
    );
    let mut datasets: BTreeMap<&str, SeriesSpans> = BTreeMap::new();
    for e in &manifest.entries {
        let series = (e.key.kind.to_string(), e.key.level.to_string());
        let slot = datasets
            .entry(e.key.dataset.as_str())
            .or_default()
            .entry(series)
            .or_insert((0, u64::MAX, 0));
        slot.0 += 1;
        slot.1 = slot.1.min(e.key.start);
        slot.2 = slot.2.max(e.key.end());
    }
    for dataset in manifest.policies.keys() {
        datasets.entry(dataset.as_str()).or_default();
    }
    for (dataset, series) in &datasets {
        let _ = writeln!(out, "dataset {dataset}");
        let policy = manifest
            .policies
            .get(*dataset)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "default".into());
        let _ = writeln!(out, "  policy: {policy}");
        for ((kind, level), (count, oldest, newest)) in series {
            let _ = writeln!(
                out,
                "  {kind}@{level}: {count} window{}, span {oldest}..{newest}",
                if *count == 1 { "" } else { "s" }
            );
        }
    }
    out
}

/// Renders the `sas info` report for a v2 segment file: the parsed header
/// (format version, kind, CRC status, section table with ids, element
/// counts, and byte offsets) plus the summary metadata read through the
/// zero-copy view. A segment file *is* the queryable representation — it
/// is served in place, never re-encoded — so unlike [`info_text`] there is
/// no "serialized bytes" line.
pub fn segment_info_text(bytes: &[u8]) -> Result<String, CliError> {
    let view = sas_codec::segment::SegmentView::parse(bytes)
        .map_err(|e| CliError(format!("bad segment: {e}")))?;
    let summary = SegmentSummary::from_vec(bytes.to_vec())
        .map_err(|e| CliError(format!("bad segment: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "format: segment v{}",
        sas_codec::segment::SEGMENT_VERSION
    );
    let _ = writeln!(out, "kind: {}", summary.kind());
    let _ = writeln!(out, "keys: {}", summary.item_count());
    let _ = writeln!(out, "dims: {}", summary.dims());
    if let Some(tau) = summary.tau() {
        let _ = writeln!(out, "tau: {tau}");
    }
    let _ = writeln!(out, "total estimate: {}", summary.total_estimate());
    let _ = writeln!(out, "file bytes: {}", view.file_len());
    // SegmentView::parse checks the CRC-32 trailer before anything else;
    // reaching this line certifies it.
    let _ = writeln!(out, "crc: ok");
    let _ = writeln!(out, "sections: {}", view.sections().len());
    let _ = writeln!(out, "  id\telements\toffset\tbytes");
    for s in view.sections() {
        let _ = writeln!(out, "  {}\t{}\t{}\t{}", s.id, s.count, s.offset, s.len);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONE_D: &str = "# key weight\n1\t5.0\n2\t3.0\n9\t1.5\n";
    const TWO_D: &str = "10\t20\t5.0\n30\t40\t2.0\n50\t60\t8.0\n";

    #[test]
    fn parse_one_dim() {
        let d = parse_dataset(ONE_D).unwrap();
        match d {
            Dataset::OneDim(rows) => {
                assert_eq!(rows.len(), 3);
                assert_eq!(rows[0].key, 1);
                assert_eq!(rows[2].weight, 1.5);
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn parse_two_dim() {
        let d = parse_dataset(TWO_D).unwrap();
        match d {
            Dataset::TwoDim(s) => {
                assert_eq!(s.len(), 3);
                assert_eq!(s.total_weight(), 15.0);
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn parse_rejects_mixed_columns() {
        assert!(parse_dataset("1\t2\n1\t2\t3\n").is_err());
        assert!(parse_dataset("").is_err());
        assert!(parse_dataset("1\t-3\n").is_err());
        assert!(parse_dataset("1\tx\n").is_err());
    }

    #[test]
    fn summary_roundtrip_one_dim() {
        let d = parse_dataset(ONE_D).unwrap();
        let (sample, dims) = summarize(&d, 3, 7).unwrap();
        assert_eq!(dims, 1);
        assert_eq!(sample.len(), 3);
        let text = write_summary(&sample, &d);
        let loaded = read_summary(&text).unwrap();
        assert_eq!(loaded.dims(), 1);
        assert_eq!(loaded.item_count(), 3);
        assert_eq!(loaded.kind(), SummaryKind::Sample);
        // Full summary: estimates exact.
        let r = parse_range("0..100", 1).unwrap();
        assert!((query(&loaded, &r) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn summary_roundtrip_two_dim() {
        let d = parse_dataset(TWO_D).unwrap();
        let (sample, dims) = summarize(&d, 3, 7).unwrap();
        assert_eq!(dims, 2);
        let text = write_summary(&sample, &d);
        let loaded = read_summary(&text).unwrap();
        assert_eq!(loaded.dims(), 2);
        let r = parse_range("0..39,0..59", 2).unwrap();
        // Contains points (10,20) and (30,40): weight 7.
        assert!((query(&loaded, &r) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn binary_roundtrip_matches_tsv_queries() {
        let d = parse_dataset(ONE_D).unwrap();
        let erased = build_summary(&d, 3, 7, 1, SummaryKind::Sample).unwrap();
        let bytes = encode_summary(erased.as_ref());
        let loaded = load_summary(&bytes).unwrap();
        assert_eq!(loaded.kind(), SummaryKind::Sample);
        let r = parse_range("0..100", 1).unwrap();
        assert_eq!(query(&loaded, &r).to_bits(), erased.range_sum(&r).to_bits());
    }

    #[test]
    fn build_summary_covers_every_kind() {
        let d1 = parse_dataset(ONE_D).unwrap();
        let d2 = parse_dataset(TWO_D).unwrap();
        for kind in SummaryKind::all() {
            let data = match kind {
                SummaryKind::Sample | SummaryKind::VarOptReservoir => &d1,
                _ => &d2,
            };
            let s = build_summary(data, 3, 7, 1, kind).unwrap();
            assert_eq!(s.kind(), kind, "{kind}");
            // Total weight is 9.5 (1-D) / 15.0 (2-D); every kind's full-
            // domain estimate recovers it (sketch: within noise, but the
            // budget here far exceeds the data).
            let truth = if s.dims() == 1 { 9.5 } else { 15.0 };
            let full: Vec<(u64, u64)> = vec![(0, u64::MAX); s.dims()];
            assert!(
                (s.range_sum(&full) - truth).abs() < 1e-6,
                "{kind}: {} vs {truth}",
                s.range_sum(&full)
            );
            // And the binary round trip is queried identically.
            let loaded = load_summary(&encode_summary(s.as_ref())).unwrap();
            assert_eq!(
                loaded.range_sum(&full).to_bits(),
                s.range_sum(&full).to_bits(),
                "{kind}"
            );
        }
    }

    #[test]
    fn build_summary_rejects_shape_mismatches() {
        let d1 = parse_dataset(ONE_D).unwrap();
        let d2 = parse_dataset(TWO_D).unwrap();
        assert!(build_summary(&d2, 3, 0, 1, SummaryKind::VarOptReservoir).is_err());
        for kind in [
            SummaryKind::QDigest,
            SummaryKind::Wavelet,
            SummaryKind::CountSketch,
        ] {
            assert!(build_summary(&d1, 3, 0, 1, kind).is_err(), "{kind}");
            assert!(build_summary(&d2, 3, 0, 2, kind).is_err(), "{kind} sharded");
        }
    }

    #[test]
    fn merge_summaries_concatenates_and_respects_budget() {
        let (a, b): (Vec<WeightedKey>, Vec<WeightedKey>) = (
            (0..40u64)
                .map(|k| WeightedKey::new(k, 1.0 + k as f64))
                .collect(),
            (40..80u64)
                .map(|k| WeightedKey::new(k, 1.0 + k as f64))
                .collect(),
        );
        let truth: f64 = (0..80u64).map(|k| 1.0 + k as f64).sum();
        let build = |rows: &Vec<WeightedKey>, seed| {
            build_summary(
                &Dataset::OneDim(rows.clone()),
                20,
                seed,
                1,
                SummaryKind::Sample,
            )
            .map(LoadedSummary)
            .unwrap()
        };
        // Unbudgeted: concatenation, 40 entries.
        let merged = merge_summaries(vec![build(&a, 1), build(&b, 2)], None, 3).unwrap();
        assert_eq!(merged.item_count(), 40);
        assert!((merged.total_estimate() - truth).abs() / truth < 1e-9);
        // Budgeted: re-subsampled down to 25, total still conserved.
        let merged = merge_summaries(vec![build(&a, 1), build(&b, 2)], Some(25), 3).unwrap();
        assert_eq!(merged.item_count(), 25);
        assert!((merged.total_estimate() - truth).abs() / truth < 1e-9);
    }

    #[test]
    fn merge_summaries_rejects_kind_mismatch() {
        let d1 = parse_dataset(ONE_D).unwrap();
        let a = LoadedSummary(build_summary(&d1, 3, 0, 1, SummaryKind::Sample).unwrap());
        let b = LoadedSummary(build_summary(&d1, 3, 0, 1, SummaryKind::VarOptReservoir).unwrap());
        assert!(merge_summaries(vec![a, b], None, 0).is_err());
        assert!(merge_summaries(vec![], None, 0).is_err());
    }

    #[test]
    fn info_reports_kind_and_sizes() {
        let d = parse_dataset(ONE_D).unwrap();
        let loaded = LoadedSummary(build_summary(&d, 3, 7, 1, SummaryKind::Sample).unwrap());
        let encoded = encode_summary(&*loaded).len();
        let info = info_text(&loaded, Some(999));
        assert!(info.contains("kind: sample"), "{info}");
        assert!(info.contains("keys: 3"), "{info}");
        assert!(
            info.contains(&format!("serialized bytes: {encoded}")),
            "{info}"
        );
        assert!(info.contains("file bytes: 999"), "{info}");
        // Without a file, the on-disk line is omitted.
        assert!(!info_text(&loaded, None).contains("file bytes"));
    }

    #[test]
    fn segment_info_reports_header_not_serialized_bytes() {
        let d = parse_dataset(ONE_D).unwrap();
        let s = build_summary(&d, 3, 7, 1, SummaryKind::Sample).unwrap();
        let seg = sas_summaries::encode_segment(s.as_ref()).unwrap();
        let info = segment_info_text(&seg).unwrap();
        assert!(info.contains("format: segment v2"), "{info}");
        assert!(info.contains("kind: sample"), "{info}");
        assert!(info.contains("keys: 3"), "{info}");
        assert!(info.contains("crc: ok"), "{info}");
        assert!(
            info.contains(&format!("file bytes: {}", seg.len())),
            "{info}"
        );
        // The section table lists every column with its offset.
        assert!(info.contains("sections: "), "{info}");
        assert!(info.contains("  id\telements\toffset\tbytes"), "{info}");
        // Segments are served in place; the v1 re-encode size is not shown.
        assert!(!info.contains("serialized bytes"), "{info}");
        // A flipped CRC byte is a clear error, not a panic.
        let mut bad = seg.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        let msg = segment_info_text(&bad).unwrap_err().to_string();
        assert!(msg.contains("bad segment"), "{msg}");
        // A v1 frame is rejected by the segment path.
        assert!(segment_info_text(&encode_summary(s.as_ref())).is_err());
    }

    #[test]
    fn load_summary_hydrates_segments_for_query_and_merge() {
        let d = parse_dataset(ONE_D).unwrap();
        let s = build_summary(&d, 3, 7, 1, SummaryKind::Sample).unwrap();
        let seg = sas_summaries::encode_segment(s.as_ref()).unwrap();
        let loaded = load_summary(&seg).unwrap();
        let r = parse_range("0..100", 1).unwrap();
        assert_eq!(query(&loaded, &r).to_bits(), s.range_sum(&r).to_bits());
        // Hydration is total: the loaded summary re-encodes to the exact v1
        // frame, and merging (which raw segments refuse) just works.
        assert_eq!(encode_summary(&*loaded), encode_summary(s.as_ref()));
        let other = LoadedSummary(build_summary(&d, 3, 9, 1, SummaryKind::Sample).unwrap());
        let merged = merge_summaries(vec![loaded, other], None, 1).unwrap();
        assert_eq!(merged.kind(), SummaryKind::Sample);
    }

    #[test]
    fn sharded_summarize_matches_budget_and_total() {
        use std::fmt::Write as _;
        let mut text = String::new();
        let mut truth = 0.0;
        for i in 0..4000u64 {
            let w = 0.25 + (i % 13) as f64;
            truth += w;
            let _ = writeln!(text, "{i}\t{w}");
        }
        let d = parse_dataset(&text).unwrap();
        let (sample, dims) = summarize_sharded(&d, 200, 5, 4).unwrap();
        assert_eq!(dims, 1);
        assert_eq!(sample.len(), 200);
        assert!((sample.total_estimate() - truth).abs() / truth < 1e-9);
        // Same seed + shards → identical summary.
        let (again, _) = summarize_sharded(&d, 200, 5, 4).unwrap();
        let a: Vec<_> = sample.keys().collect();
        let b: Vec<_> = again.keys().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn per_shard_samples_merge_back_to_sharded_result() {
        use std::fmt::Write as _;
        let mut text = String::new();
        for i in 0..3000u64 {
            let w = 0.5 + (i % 11) as f64;
            let _ = writeln!(text, "{i}\t{w}");
        }
        let d = parse_dataset(&text).unwrap();
        let shards = summarize_per_shard(&d, 100, 7, 4).unwrap();
        assert_eq!(shards.len(), 4);
        for s in &shards {
            assert_eq!(s.len(), 100);
        }
        // 2-D data is rejected.
        let d2 = parse_dataset(TWO_D).unwrap();
        assert!(summarize_per_shard(&d2, 10, 7, 2).is_err());
    }

    #[test]
    fn sharded_rejects_bad_configs() {
        let d1 = parse_dataset(ONE_D).unwrap();
        assert!(summarize_sharded(&d1, 3, 0, 0).is_err());
        let d2 = parse_dataset(TWO_D).unwrap();
        assert!(summarize_sharded(&d2, 3, 0, 2).is_err());
        assert!(summarize_sharded(&d2, 3, 0, 1).is_ok());
    }

    #[test]
    fn range_parse_errors() {
        assert!(parse_range("5..3", 1).is_err());
        assert!(parse_range("1..2", 2).is_err());
        assert!(parse_range("a..b", 1).is_err());
        assert_eq!(parse_range("1..2,3..4", 2).unwrap(), vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn range_parse_open_endpoints_clamp_to_domain() {
        assert_eq!(parse_range("..100", 1).unwrap(), vec![(0, 100)]);
        assert_eq!(parse_range("50..", 1).unwrap(), vec![(50, u64::MAX)]);
        assert_eq!(
            parse_range(":100,50:", 2).unwrap(),
            vec![(0, 100), (50, u64::MAX)]
        );
        assert_eq!(parse_range(":", 1).unwrap(), vec![(0, u64::MAX)]);
        assert_eq!(parse_range("7:9", 1).unwrap(), vec![(7, 9)]);
        // Reversed bounds are a clear error, not a silent empty range.
        let msg = parse_range("9:3", 1).unwrap_err().to_string();
        assert!(msg.contains("reversed"), "{msg}");
        let msg = parse_range("5..3", 1).unwrap_err().to_string();
        assert!(msg.contains("reversed"), "{msg}");
    }

    #[test]
    fn query_specs_parse_every_kind() {
        assert_eq!(parse_query("total", 1).unwrap(), Query::Total);
        assert_eq!(parse_query("point 42", 1).unwrap(), Query::Point(vec![42]));
        assert_eq!(
            parse_query("point 3,7", 2).unwrap(),
            Query::Point(vec![3, 7])
        );
        assert_eq!(
            parse_query("node 4/3", 1).unwrap(),
            Query::HierarchyNode { level: 4, index: 3 }
        );
        assert_eq!(
            parse_query("10..19", 1).unwrap(),
            Query::BoxRange(vec![(10, 19)])
        );
        assert_eq!(
            parse_query("0..9;20..29", 1).unwrap(),
            Query::MultiRange(vec![vec![(0, 9)], vec![(20, 29)]])
        );
        // Errors: wrong arity, overlapping multi-range, bad node.
        assert!(parse_query("point 1,2", 1).is_err());
        assert!(parse_query("0..10;5..20", 1).is_err());
        assert!(parse_query("node 99", 1).is_err());
    }

    #[test]
    fn answers_carry_bounds_and_match_plain_query() {
        use std::fmt::Write as _;
        let mut text = String::new();
        for i in 0..2000u64 {
            let w = 0.5 + (i % 7) as f64;
            let _ = writeln!(text, "{i}\t{w}");
        }
        let d = parse_dataset(&text).unwrap();
        let loaded = LoadedSummary(build_summary(&d, 120, 3, 1, SummaryKind::Sample).unwrap());
        let queries = vec![
            parse_query("100..999", 1).unwrap(),
            parse_query("0..99;1500..1999", 1).unwrap(),
            parse_query("total", 1).unwrap(),
            parse_query("point 17", 1).unwrap(),
            parse_query("node 8/2", 1).unwrap(),
        ];
        let estimates = answer_queries(&loaded, &queries, 0.9).unwrap();
        assert_eq!(estimates.len(), queries.len());
        for (q, e) in queries.iter().zip(&estimates) {
            assert!(e.lower <= e.value && e.value <= e.upper, "{q}: {e:?}");
        }
        // The box answer's value is bit-identical to the plain query path.
        let r = parse_range("100..999", 1).unwrap();
        assert_eq!(estimates[0].value.to_bits(), query(&loaded, &r).to_bits());
        // The exact total is inside the Total query's interval.
        let truth: f64 = (0..2000u64).map(|i| 0.5 + (i % 7) as f64).sum();
        assert!(
            estimates[2].lower <= truth && truth <= estimates[2].upper,
            "total {truth} outside [{}, {}]",
            estimates[2].lower,
            estimates[2].upper
        );
    }

    #[test]
    fn estimate_formats_render() {
        let queries = vec![Query::interval(0, 9), Query::Total];
        let estimates = vec![
            Estimate {
                value: 10.0,
                variance: 4.0,
                lower: 7.0,
                upper: 15.0,
                confidence: 0.9,
            },
            Estimate::exact(40.0),
        ];
        let bounds = format_estimates(&queries, &estimates, OutputFormat::Bounds);
        assert!(bounds.contains("10 ±4 [7, 15] @0.9"), "{bounds}");
        let tsv = format_estimates(&queries, &estimates, OutputFormat::Tsv);
        assert!(tsv.starts_with("#query\tvalue"), "{tsv}");
        assert!(tsv.contains("0..9\t10\t7\t15\t4\t0.9"), "{tsv}");
        assert!(tsv.contains("total\t40\t40\t40\t0\t1"), "{tsv}");
        let json = format_estimates(&queries, &estimates, OutputFormat::Json);
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(
            json.contains("\"query\": \"0..9\", \"value\": 10"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), 2, "{json}");
        assert!(OutputFormat::from_name("bogus").is_err());
        assert_eq!(OutputFormat::from_name("json").unwrap(), OutputFormat::Json);
    }

    #[test]
    fn read_summary_rejects_garbage() {
        assert!(read_summary("").is_err());
        assert!(read_summary("not a header\n1\t2\t3\n").is_err());
        assert!(read_summary("#sas-summary tau=1.0 dims=7\n").is_err());
        assert!(read_summary("#sas-summary tau=1.0 dims=1\n1\t2\n").is_err());
        // Corrupted binary is an error, not a panic.
        assert!(load_summary(b"SASF garbage").is_err());
        assert!(load_summary(&[0xFF, 0xFE, 0x00]).is_err());
    }

    #[test]
    fn large_roundtrip_estimates_track_truth() {
        use std::fmt::Write as _;
        let mut text = String::new();
        for i in 0..5000u64 {
            let w = 0.5 + (i % 17) as f64;
            let _ = writeln!(text, "{i}\t{w}");
        }
        let d = parse_dataset(&text).unwrap();
        let (sample, _) = summarize(&d, 300, 42).unwrap();
        let loaded = read_summary(&write_summary(&sample, &d)).unwrap();
        let r = parse_range("1000..3999", 1).unwrap();
        let est = query(&loaded, &r);
        let truth: f64 = (1000..4000u64).map(|i| 0.5 + (i % 17) as f64).sum();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est {est} vs truth {truth}"
        );
    }
}
