//! Library backing the `sas` command-line summarizer.
//!
//! Formats (all plain TSV, `#`-comments ignored):
//!
//! * **input data** — `key<TAB>weight` (1-D / order structure) or
//!   `x<TAB>y<TAB>weight` (2-D product structure; the key is the row index);
//! * **summary** — header line `#sas-summary tau=<τ> dims=<d>` followed by
//!   `key<TAB>weight<TAB>adjusted_weight[<TAB>x<TAB>y]` rows.
//!
//! The summary file is self-contained: queries are answered from it alone.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_core::estimate::{Sample, SampleEntry};
use sas_core::WeightedKey;
use sas_sampling::product::SpatialData;
use sas_structures::product::{BoxRange, Point};

/// Parsed input data: 1-D weighted keys or 2-D located keys.
#[derive(Debug, Clone)]
pub enum Dataset {
    /// `key weight` rows.
    OneDim(Vec<WeightedKey>),
    /// `x y weight` rows (keys are row indices).
    TwoDim(SpatialData),
}

/// Errors surfaced to the CLI user.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parses input TSV into a [`Dataset`]; column count decides the shape.
pub fn parse_dataset(text: &str) -> Result<Dataset, CliError> {
    let mut one: Vec<WeightedKey> = Vec::new();
    let mut two: Vec<(u64, u64, f64)> = Vec::new();
    let mut cols: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match cols {
            None => cols = Some(fields.len()),
            Some(c) if c != fields.len() => {
                return err(format!(
                    "line {}: expected {} columns, found {}",
                    lineno + 1,
                    c,
                    fields.len()
                ))
            }
            _ => {}
        }
        let parse_u = |s: &str| -> Result<u64, CliError> {
            s.parse()
                .map_err(|_| CliError(format!("line {}: bad integer '{s}'", lineno + 1)))
        };
        let parse_f = |s: &str| -> Result<f64, CliError> {
            let v: f64 = s
                .parse()
                .map_err(|_| CliError(format!("line {}: bad number '{s}'", lineno + 1)))?;
            if !v.is_finite() || v < 0.0 {
                return err(format!("line {}: weight must be >= 0", lineno + 1));
            }
            Ok(v)
        };
        match fields.len() {
            2 => one.push(WeightedKey::new(parse_u(fields[0])?, parse_f(fields[1])?)),
            3 => two.push((
                parse_u(fields[0])?,
                parse_u(fields[1])?,
                parse_f(fields[2])?,
            )),
            n => {
                return err(format!(
                    "line {}: expected 2 or 3 columns, found {n}",
                    lineno + 1
                ))
            }
        }
    }
    match cols {
        None => err("input is empty"),
        Some(2) => Ok(Dataset::OneDim(one)),
        Some(3) => Ok(Dataset::TwoDim(SpatialData::from_xyw(&two))),
        Some(n) => err(format!("unsupported column count {n}")),
    }
}

/// Builds a structure-aware summary of the data set (serial, one thread).
pub fn summarize(data: &Dataset, size: usize, seed: u64) -> Result<(Sample, usize), CliError> {
    summarize_sharded(data, size, seed, 1)
}

/// Builds a structure-aware summary using `shards` parallel workers.
///
/// With `shards == 1` this is the serial path. For 1-D data the input is
/// split into contiguous key ranges, each shard is summarized by the
/// order-structure sampler on its own thread, and the per-shard samples are
/// merged bottom-up with the structure-aware threshold merge (see
/// `sas_sampling::sharded`). 2-D data does not support sharding yet.
pub fn summarize_sharded(
    data: &Dataset,
    size: usize,
    seed: u64,
    shards: usize,
) -> Result<(Sample, usize), CliError> {
    if size == 0 {
        return err("summary size must be positive");
    }
    if shards == 0 {
        return err("--shards must be positive");
    }
    match data {
        Dataset::OneDim(rows) => {
            if rows.is_empty() {
                return err("no data rows");
            }
            if shards == 1 {
                let mut rng = StdRng::seed_from_u64(seed);
                Ok((sas_sampling::order::sample(rows, size, &mut rng), 1))
            } else {
                let cfg = sas_sampling::sharded::ShardedConfig::key_range(shards, seed);
                Ok((
                    sas_sampling::sharded::summarize_sharded(rows, size, &cfg),
                    1,
                ))
            }
        }
        Dataset::TwoDim(spatial) => {
            if spatial.is_empty() {
                return err("no data rows");
            }
            if shards > 1 {
                return err("--shards currently supports 1-D (key weight) data only");
            }
            let mut rng = StdRng::seed_from_u64(seed);
            Ok((
                sas_sampling::two_pass::sample_product(spatial, size, 5, &mut rng),
                2,
            ))
        }
    }
}

/// Serializes a summary (with locations for 2-D data).
pub fn write_summary(sample: &Sample, data: &Dataset) -> String {
    let dims = match data {
        Dataset::OneDim(_) => 1,
        Dataset::TwoDim(_) => 2,
    };
    let mut out = String::new();
    let _ = writeln!(out, "#sas-summary tau={} dims={}", sample.tau(), dims);
    for e in sample.iter() {
        match data {
            Dataset::OneDim(_) => {
                let _ = writeln!(out, "{}\t{}\t{}", e.key, e.weight, e.adjusted_weight);
            }
            Dataset::TwoDim(spatial) => {
                let p = spatial.point_of(e.key).expect("sampled key has a location");
                let _ = writeln!(
                    out,
                    "{}\t{}\t{}\t{}\t{}",
                    e.key,
                    e.weight,
                    e.adjusted_weight,
                    p.coord(0),
                    p.coord(1)
                );
            }
        }
    }
    out
}

/// A deserialized summary ready for querying.
#[derive(Debug, Clone)]
pub struct LoadedSummary {
    /// The sample entries.
    pub sample: Sample,
    /// Locations per key (empty for 1-D summaries, where keys are positions).
    pub points: std::collections::HashMap<u64, Point>,
    /// Dimensionality (1 or 2).
    pub dims: usize,
}

/// Parses a summary file produced by [`write_summary`].
pub fn read_summary(text: &str) -> Result<LoadedSummary, CliError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(CliError("empty summary".into()))?;
    if !header.starts_with("#sas-summary") {
        return err("missing #sas-summary header");
    }
    let mut tau = None;
    let mut dims = None;
    for tok in header.split_whitespace().skip(1) {
        if let Some(v) = tok.strip_prefix("tau=") {
            tau = v.parse::<f64>().ok();
        } else if let Some(v) = tok.strip_prefix("dims=") {
            dims = v.parse::<usize>().ok();
        }
    }
    let tau = tau.ok_or(CliError("header missing tau".into()))?;
    let dims = dims.ok_or(CliError("header missing dims".into()))?;
    if dims != 1 && dims != 2 {
        return err(format!("unsupported dims {dims}"));
    }
    let mut entries = Vec::new();
    let mut points = std::collections::HashMap::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let want = if dims == 1 { 3 } else { 5 };
        if f.len() != want {
            return err(format!("line {}: expected {want} fields", lineno + 2));
        }
        let key: u64 = f[0]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad key", lineno + 2)))?;
        let weight: f64 = f[1]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad weight", lineno + 2)))?;
        let adjusted: f64 = f[2]
            .parse()
            .map_err(|_| CliError(format!("line {}: bad adjusted weight", lineno + 2)))?;
        entries.push(SampleEntry {
            key,
            weight,
            adjusted_weight: adjusted,
        });
        if dims == 2 {
            let x: u64 = f[3]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad x", lineno + 2)))?;
            let y: u64 = f[4]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad y", lineno + 2)))?;
            points.insert(key, Point::xy(x, y));
        }
    }
    Ok(LoadedSummary {
        sample: Sample::from_entries(entries, tau),
        points,
        dims,
    })
}

/// Parses a range spec: `lo..hi` (1-D) or `x0..x1,y0..y1` (2-D).
pub fn parse_range(spec: &str, dims: usize) -> Result<Vec<(u64, u64)>, CliError> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != dims {
        return err(format!(
            "range must have {dims} axis spec(s), got {}",
            parts.len()
        ));
    }
    parts
        .iter()
        .map(|p| {
            let (lo, hi) = p
                .split_once("..")
                .ok_or(CliError(format!("bad range '{p}' (want lo..hi)")))?;
            let lo: u64 = lo
                .parse()
                .map_err(|_| CliError(format!("bad bound '{lo}'")))?;
            let hi: u64 = hi
                .parse()
                .map_err(|_| CliError(format!("bad bound '{hi}'")))?;
            if lo > hi {
                return err(format!("empty range {lo}..{hi}"));
            }
            Ok((lo, hi))
        })
        .collect()
}

/// Answers a range query from a loaded summary.
pub fn query(summary: &LoadedSummary, range: &[(u64, u64)]) -> f64 {
    match summary.dims {
        1 => {
            let (lo, hi) = range[0];
            summary.sample.subset_estimate(|k| k >= lo && k <= hi)
        }
        2 => {
            let b = BoxRange::xy(range[0].0, range[0].1, range[1].0, range[1].1);
            summary
                .sample
                .subset_estimate(|k| summary.points.get(&k).is_some_and(|p| b.contains(p)))
        }
        _ => unreachable!("dims validated at load"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONE_D: &str = "# key weight\n1\t5.0\n2\t3.0\n9\t1.5\n";
    const TWO_D: &str = "10\t20\t5.0\n30\t40\t2.0\n50\t60\t8.0\n";

    #[test]
    fn parse_one_dim() {
        let d = parse_dataset(ONE_D).unwrap();
        match d {
            Dataset::OneDim(rows) => {
                assert_eq!(rows.len(), 3);
                assert_eq!(rows[0].key, 1);
                assert_eq!(rows[2].weight, 1.5);
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn parse_two_dim() {
        let d = parse_dataset(TWO_D).unwrap();
        match d {
            Dataset::TwoDim(s) => {
                assert_eq!(s.len(), 3);
                assert_eq!(s.total_weight(), 15.0);
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn parse_rejects_mixed_columns() {
        assert!(parse_dataset("1\t2\n1\t2\t3\n").is_err());
        assert!(parse_dataset("").is_err());
        assert!(parse_dataset("1\t-3\n").is_err());
        assert!(parse_dataset("1\tx\n").is_err());
    }

    #[test]
    fn summary_roundtrip_one_dim() {
        let d = parse_dataset(ONE_D).unwrap();
        let (sample, dims) = summarize(&d, 3, 7).unwrap();
        assert_eq!(dims, 1);
        assert_eq!(sample.len(), 3);
        let text = write_summary(&sample, &d);
        let loaded = read_summary(&text).unwrap();
        assert_eq!(loaded.dims, 1);
        assert_eq!(loaded.sample.len(), 3);
        // Full summary: estimates exact.
        let r = parse_range("0..100", 1).unwrap();
        assert!((query(&loaded, &r) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn summary_roundtrip_two_dim() {
        let d = parse_dataset(TWO_D).unwrap();
        let (sample, dims) = summarize(&d, 3, 7).unwrap();
        assert_eq!(dims, 2);
        let text = write_summary(&sample, &d);
        let loaded = read_summary(&text).unwrap();
        assert_eq!(loaded.dims, 2);
        let r = parse_range("0..39,0..59", 2).unwrap();
        // Contains points (10,20) and (30,40): weight 7.
        assert!((query(&loaded, &r) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_summarize_matches_budget_and_total() {
        use std::fmt::Write as _;
        let mut text = String::new();
        let mut truth = 0.0;
        for i in 0..4000u64 {
            let w = 0.25 + (i % 13) as f64;
            truth += w;
            let _ = writeln!(text, "{i}\t{w}");
        }
        let d = parse_dataset(&text).unwrap();
        let (sample, dims) = summarize_sharded(&d, 200, 5, 4).unwrap();
        assert_eq!(dims, 1);
        assert_eq!(sample.len(), 200);
        assert!((sample.total_estimate() - truth).abs() / truth < 1e-9);
        // Same seed + shards → identical summary.
        let (again, _) = summarize_sharded(&d, 200, 5, 4).unwrap();
        let a: Vec<_> = sample.keys().collect();
        let b: Vec<_> = again.keys().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_rejects_bad_configs() {
        let d1 = parse_dataset(ONE_D).unwrap();
        assert!(summarize_sharded(&d1, 3, 0, 0).is_err());
        let d2 = parse_dataset(TWO_D).unwrap();
        assert!(summarize_sharded(&d2, 3, 0, 2).is_err());
        assert!(summarize_sharded(&d2, 3, 0, 1).is_ok());
    }

    #[test]
    fn range_parse_errors() {
        assert!(parse_range("5..3", 1).is_err());
        assert!(parse_range("1..2", 2).is_err());
        assert!(parse_range("a..b", 1).is_err());
        assert_eq!(parse_range("1..2,3..4", 2).unwrap(), vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn read_summary_rejects_garbage() {
        assert!(read_summary("").is_err());
        assert!(read_summary("not a header\n1\t2\t3\n").is_err());
        assert!(read_summary("#sas-summary tau=1.0 dims=7\n").is_err());
        assert!(read_summary("#sas-summary tau=1.0 dims=1\n1\t2\n").is_err());
    }

    #[test]
    fn large_roundtrip_estimates_track_truth() {
        use std::fmt::Write as _;
        let mut text = String::new();
        for i in 0..5000u64 {
            let w = 0.5 + (i % 17) as f64;
            let _ = writeln!(text, "{i}\t{w}");
        }
        let d = parse_dataset(&text).unwrap();
        let (sample, _) = summarize(&d, 300, 42).unwrap();
        let loaded = read_summary(&write_summary(&sample, &d)).unwrap();
        let r = parse_range("1000..3999", 1).unwrap();
        let est = query(&loaded, &r);
        let truth: f64 = (1000..4000u64).map(|i| 0.5 + (i % 17) as f64).sum();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est {est} vs truth {truth}"
        );
    }
}
