//! Weighted order statistics over (subsets of) a sample.
//!
//! Given a sample with HT adjusted weights, the `q`-quantile of the weight
//! distribution over any selected subset is estimated by sorting the
//! selected sampled keys by a value function and walking the adjusted-
//! weight prefix sums. Accuracy follows from the subset-sum tail bounds:
//! every prefix is a subset-sum, so rank estimates concentrate.

use sas_core::{KeyId, Sample};

/// Estimates the `q`-quantile of `value(key)` over the sampled keys
/// satisfying `pred`, weighting each key by its adjusted weight.
///
/// Returns `None` if no sampled key satisfies the predicate.
pub fn subset_quantile(
    sample: &Sample,
    q: f64,
    mut pred: impl FnMut(KeyId) -> bool,
    mut value: impl FnMut(KeyId) -> f64,
) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
    let mut rows: Vec<(f64, f64)> = sample
        .iter()
        .filter(|e| pred(e.key))
        .map(|e| (value(e.key), e.adjusted_weight))
        .collect();
    if rows.is_empty() {
        return None;
    }
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = rows.iter().map(|(_, w)| w).sum();
    let target = q * total;
    let mut acc = 0.0;
    for (v, w) in &rows {
        acc += w;
        if acc >= target {
            return Some(*v);
        }
    }
    rows.last().map(|(v, _)| *v)
}

/// Estimates the median of `value` over the whole sample.
pub fn median(sample: &Sample, value: impl FnMut(KeyId) -> f64) -> Option<f64> {
    subset_quantile(sample, 0.5, |_| true, value)
}

/// Estimates the weighted rank of `x` (fraction of subset weight with
/// `value(key) ≤ x`) over the selected subset.
pub fn subset_rank(
    sample: &Sample,
    x: f64,
    mut pred: impl FnMut(KeyId) -> bool,
    mut value: impl FnMut(KeyId) -> f64,
) -> Option<f64> {
    let mut below = 0.0;
    let mut total = 0.0;
    for e in sample.iter() {
        if !pred(e.key) {
            continue;
        }
        total += e.adjusted_weight;
        if value(e.key) <= x {
            below += e.adjusted_weight;
        }
    }
    (total > 0.0).then_some(below / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sas_core::WeightedKey;

    /// Uniform-weight data where value(k) = k: quantiles are predictable.
    fn uniform_data(n: u64) -> Vec<WeightedKey> {
        (0..n).map(|k| WeightedKey::new(k, 1.0)).collect()
    }

    #[test]
    fn full_sample_quantiles_exact() {
        // Sample = whole data: quantiles are exact weighted quantiles.
        let data = uniform_data(100);
        let mut rng = StdRng::seed_from_u64(1);
        let smp = sas_sampling::order::sample(&data, 100, &mut rng);
        let med = median(&smp, |k| k as f64).unwrap();
        assert!((med - 49.0).abs() <= 1.0, "median {med}");
        let q90 = subset_quantile(&smp, 0.9, |_| true, |k| k as f64).unwrap();
        assert!((q90 - 89.0).abs() <= 1.0, "q90 {q90}");
    }

    #[test]
    fn sampled_median_concentrates() {
        let data = uniform_data(2000);
        let mut errs = 0.0;
        let runs = 50;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            let smp = sas_sampling::order::sample(&data, 100, &mut rng);
            let med = median(&smp, |k| k as f64).unwrap();
            errs += (med - 1000.0).abs();
        }
        let mean_err = errs / runs as f64;
        // Rank error ~ total/√s = 2000/10 = 200; structure-aware samples do
        // far better on the prefix ranks (Δ<2 ⇒ rank error ≤ 2τ = 40).
        assert!(mean_err < 60.0, "mean median error {mean_err}");
    }

    #[test]
    fn subset_quantile_respects_predicate() {
        let data = uniform_data(100);
        let mut rng = StdRng::seed_from_u64(2);
        let smp = sas_sampling::order::sample(&data, 100, &mut rng);
        // Median of even keys ≈ 49/50-ish even value.
        let med = subset_quantile(&smp, 0.5, |k| k % 2 == 0, |k| k as f64).unwrap();
        assert_eq!(med as u64 % 2, 0);
        assert!((med - 48.0).abs() <= 2.0, "even median {med}");
    }

    #[test]
    fn empty_subset_is_none() {
        let data = uniform_data(10);
        let mut rng = StdRng::seed_from_u64(3);
        let smp = sas_sampling::order::sample(&data, 5, &mut rng);
        assert!(subset_quantile(&smp, 0.5, |_| false, |k| k as f64).is_none());
    }

    #[test]
    fn rank_basics() {
        let data = uniform_data(100);
        let mut rng = StdRng::seed_from_u64(4);
        let smp = sas_sampling::order::sample(&data, 100, &mut rng);
        let r = subset_rank(&smp, 24.5, |_| true, |k| k as f64).unwrap();
        assert!((r - 0.25).abs() < 0.02, "rank {r}");
        assert_eq!(subset_rank(&smp, -1.0, |_| true, |k| k as f64), Some(0.0));
        assert_eq!(subset_rank(&smp, 1e9, |_| true, |k| k as f64), Some(1.0));
    }

    #[test]
    fn quantile_monotone_in_q() {
        let data = uniform_data(500);
        let mut rng = StdRng::seed_from_u64(5);
        let smp = sas_sampling::order::sample(&data, 80, &mut rng);
        let mut last = f64::MIN;
        for i in 0..=10 {
            let v = subset_quantile(&smp, i as f64 / 10.0, |_| true, |k| k as f64).unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}
