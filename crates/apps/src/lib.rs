//! # sas-apps — higher-level analyses over sample summaries
//!
//! The paper's introduction motivates sampling by what can be built on top
//! of unbiased subset-sum primitives: "computing order statistics over
//! subsets of the data, heavy hitters detection, longitudinal studies of
//! trends and correlations". This crate implements those applications over
//! any [`sas_core::Sample`]:
//!
//! * [`heavy_hitters`] — (φ, ε)-heavy-hitter detection and *hierarchical*
//!   heavy hitters over a hierarchy structure (the paper's citations \[9\],
//!   \[29\] are HHH systems built on network data).
//! * [`quantiles`] — weighted order statistics over arbitrary selected
//!   subsets of the sampled keys.
//! * [`compare`] — longitudinal comparison of two samples taken from
//!   different periods/tables: per-subset difference estimates with
//!   conservative confidence intervals.
//!
//! None of these require touching the original data again — exactly the
//! workflow the paper's warehouse scenario (Section 1) describes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod heavy_hitters;
pub mod quantiles;
