//! Heavy hitters and hierarchical heavy hitters from a sample.
//!
//! A key is a *φ-heavy hitter* if its weight exceeds `φ·W`. From an IPPS
//! sample with threshold τ, every key with weight ≥ τ is present with its
//! exact weight, so all heavy hitters above max(φ·W, τ) are reported with
//! no false negatives; keys between τ and φ·W appear with adjusted weight
//! τ and are filtered by the φ·W cutoff.
//!
//! *Hierarchical* heavy hitters (HHH) generalize to a hierarchy: a node is
//! an HHH if its subtree weight — after discounting descendant HHHs —
//! exceeds φ·W. The estimates come from subset sums of the sample, so any
//! hierarchy can be queried after the fact, unbiasedly.

use std::collections::{HashMap, HashSet};

use sas_core::{KeyId, Sample};
use sas_structures::hierarchy::{Hierarchy, NodeId};

/// A detected heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The key.
    pub key: KeyId,
    /// Its estimated (adjusted) weight.
    pub estimate: f64,
}

/// Reports keys whose estimated weight exceeds `phi · total_estimate`.
///
/// Guarantees, inherited from IPPS sampling: every true heavy hitter with
/// weight ≥ max(φ·W, τ) is reported (its weight is exact in the sample);
/// reported estimates are unbiased.
pub fn heavy_hitters(sample: &Sample, phi: f64) -> Vec<HeavyHitter> {
    assert!(phi > 0.0 && phi < 1.0, "phi out of (0,1)");
    let total = sample.total_estimate();
    let cutoff = phi * total;
    let mut out: Vec<HeavyHitter> = sample
        .iter()
        .filter(|e| e.adjusted_weight >= cutoff)
        .map(|e| HeavyHitter {
            key: e.key,
            estimate: e.adjusted_weight,
        })
        .collect();
    out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate));
    out
}

/// A detected hierarchical heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalHeavyHitter {
    /// The hierarchy node.
    pub node: NodeId,
    /// Estimated subtree weight *after* discounting descendant HHHs.
    pub discounted_estimate: f64,
    /// Estimated raw subtree weight.
    pub subtree_estimate: f64,
}

/// Detects hierarchical heavy hitters: processes nodes bottom-up, reporting
/// a node when its subtree estimate minus already-reported descendant HHH
/// weight exceeds `phi · total`.
pub fn hierarchical_heavy_hitters(
    sample: &Sample,
    hierarchy: &Hierarchy,
    phi: f64,
) -> Vec<HierarchicalHeavyHitter> {
    assert!(phi > 0.0 && phi < 1.0, "phi out of (0,1)");
    let total = sample.total_estimate();
    let cutoff = phi * total;

    // Adjusted weight by leaf position.
    let key_weight: HashMap<KeyId, f64> =
        sample.iter().map(|e| (e.key, e.adjusted_weight)).collect();

    // Subtree estimates via leaf spans (contiguous positions).
    let leaf_weight: Vec<f64> = (0..hierarchy.leaf_count() as u64)
        .map(|pos| {
            let leaf = hierarchy.leaf_at(pos);
            hierarchy
                .key(leaf)
                .and_then(|k| key_weight.get(&k))
                .copied()
                .unwrap_or(0.0)
        })
        .collect();
    let mut prefix = vec![0.0; leaf_weight.len() + 1];
    for (i, w) in leaf_weight.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let subtree = |n: NodeId| -> f64 {
        let span = hierarchy.leaf_span(n);
        prefix[(span.hi + 1) as usize] - prefix[span.lo as usize]
    };

    // Bottom-up: nodes in decreasing depth; discount = sum of HHH weights
    // already claimed inside the subtree.
    let mut order: Vec<NodeId> = (0..hierarchy.node_count() as NodeId).collect();
    order.sort_by_key(|&n| std::cmp::Reverse(hierarchy.depth(n)));
    let mut claimed: HashMap<NodeId, f64> = HashMap::new(); // per node: weight claimed below
    let mut out = Vec::new();
    for n in order {
        let claimed_below = claimed.get(&n).copied().unwrap_or(0.0);
        let raw = subtree(n);
        let discounted = raw - claimed_below;
        let is_hhh = discounted >= cutoff;
        let claimed_here = if is_hhh {
            out.push(HierarchicalHeavyHitter {
                node: n,
                discounted_estimate: discounted,
                subtree_estimate: raw,
            });
            raw // everything below n is now claimed
        } else {
            claimed_below
        };
        if let Some(p) = hierarchy.parent(n) {
            *claimed.entry(p).or_insert(0.0) += claimed_here;
        }
    }
    out.sort_by(|a, b| b.discounted_estimate.total_cmp(&a.discounted_estimate));
    out
}

/// Sanity helper: the set of sample keys under a node.
pub fn sampled_keys_under(sample: &Sample, hierarchy: &Hierarchy, node: NodeId) -> HashSet<KeyId> {
    let under: HashSet<KeyId> = hierarchy.keys_under(node).collect();
    sample.keys().filter(|k| under.contains(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sas_core::WeightedKey;
    use sas_structures::hierarchy::HierarchyBuilder;

    fn skewed_data(n: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data: Vec<WeightedKey> = (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..1.0)))
            .collect();
        for &(k, w) in heavy {
            data[k as usize] = WeightedKey::new(k, w);
        }
        data
    }

    #[test]
    fn true_heavy_hitters_always_found() {
        let data = skewed_data(500, &[(7, 300.0), (123, 200.0)], 1);
        let total: f64 = data.iter().map(|wk| wk.weight).sum();
        let phi = 0.1; // cutoff ≈ 75 < both heavy weights
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let smp = sas_sampling::order::sample(&data, 30, &mut rng);
            let hh = heavy_hitters(&smp, phi);
            let keys: Vec<u64> = hh.iter().map(|h| h.key).collect();
            assert!(
                keys.contains(&7) && keys.contains(&123),
                "seed {seed}: {keys:?}"
            );
            // Estimates of heavy keys are exact.
            let e7 = hh.iter().find(|h| h.key == 7).unwrap().estimate;
            assert_eq!(e7, 300.0);
            let _ = total;
        }
    }

    #[test]
    fn no_spurious_massive_hitters() {
        // Light keys can be reported only with adjusted weight τ — which is
        // below any cutoff larger than τ/total.
        let data = skewed_data(300, &[], 2);
        let mut rng = StdRng::seed_from_u64(3);
        let smp = sas_sampling::order::sample(&data, 30, &mut rng);
        let hh = heavy_hitters(&smp, 0.2);
        assert!(
            hh.is_empty(),
            "uniform data has no 20% heavy hitters: {hh:?}"
        );
    }

    fn two_level_hierarchy(groups: u32, per: u32) -> (Hierarchy, u64) {
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        let mut key = 0;
        for _ in 0..groups {
            let g = b.add_internal(root);
            for _ in 0..per {
                b.add_leaf(g, key);
                key += 1;
            }
        }
        (b.build(), key)
    }

    #[test]
    fn hhh_detects_diffuse_group() {
        // No single key is heavy, but one group's total is: HHH must flag
        // the group node, not any leaf.
        let (h, n) = two_level_hierarchy(10, 20);
        let mut data = skewed_data(n, &[], 4);
        // Group 3 (keys 60..80) gets weight 10 each = 200 total.
        for k in 60..80 {
            data[k as usize] = WeightedKey::new(k, 10.0);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let smp = sas_sampling::hierarchy::sample(&data, &h, 60, &mut rng);
        let hhh = hierarchical_heavy_hitters(&smp, &h, 0.2);
        assert!(!hhh.is_empty(), "group HHH not detected");
        // The top HHH node's span covers exactly keys 60..80.
        let top = hhh[0].node;
        let keys: Vec<u64> = h.keys_under(top).collect();
        assert_eq!(keys, (60..80).collect::<Vec<_>>(), "wrong node: {keys:?}");
    }

    #[test]
    fn hhh_discounts_descendants() {
        // A group whose weight is entirely one heavy leaf: the leaf is the
        // HHH; the group's discounted weight falls below the cutoff.
        let (h, n) = two_level_hierarchy(5, 10);
        let mut data = skewed_data(n, &[], 6);
        data[12] = WeightedKey::new(12, 500.0);
        let mut rng = StdRng::seed_from_u64(7);
        let smp = sas_sampling::hierarchy::sample(&data, &h, 25, &mut rng);
        let hhh = hierarchical_heavy_hitters(&smp, &h, 0.3);
        // The leaf (or its singleton-span node) is reported.
        assert!(hhh
            .iter()
            .any(|x| h.keys_under(x.node).collect::<Vec<_>>() == vec![12]));
        // The group node containing key 12 (keys 10..20) is NOT reported
        // with double-counted weight.
        for x in &hhh {
            let keys: Vec<u64> = h.keys_under(x.node).collect();
            if keys == (10..20).collect::<Vec<_>>() {
                assert!(
                    x.discounted_estimate < 0.3 * smp.total_estimate(),
                    "group reported without discount"
                );
            }
        }
    }

    #[test]
    fn root_hhh_when_nothing_else() {
        // Uniform data: the only HHH at small phi thresholds below 1 but
        // above every group share is the root.
        let (h, n) = two_level_hierarchy(4, 5);
        let data = skewed_data(n, &[], 8);
        let mut rng = StdRng::seed_from_u64(9);
        let smp = sas_sampling::hierarchy::sample(&data, &h, 10, &mut rng);
        let hhh = hierarchical_heavy_hitters(&smp, &h, 0.9);
        assert_eq!(hhh.len(), 1);
        assert_eq!(hhh[0].node, h.root());
    }
}
