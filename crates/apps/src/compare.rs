//! Longitudinal comparison of two samples ("trends and correlations",
//! Section 1): estimate per-subset weight *differences* across two periods
//! from their summaries alone, with conservative confidence intervals.
//!
//! Because each sample's subset estimate is unbiased, the difference of
//! estimates is an unbiased estimate of the difference, and the tail
//! bounds of each side combine by a union bound.

use sas_core::{bounds, KeyId, Sample};

/// Result of comparing a subset across two samples.
#[derive(Debug, Clone, Copy)]
pub struct SubsetComparison {
    /// Estimate from the first (earlier) sample.
    pub before: f64,
    /// Estimate from the second (later) sample.
    pub after: f64,
    /// Estimated change `after − before`.
    pub delta: f64,
    /// Conservative `1 − delta_conf` CI for the change.
    pub ci: (f64, f64),
}

/// Compares a subset (given by `pred`) across two samples at confidence
/// `1 − delta_conf`.
pub fn compare_subset(
    before: &Sample,
    after: &Sample,
    mut pred: impl FnMut(KeyId) -> bool,
    delta_conf: f64,
) -> SubsetComparison {
    assert!(delta_conf > 0.0 && delta_conf < 1.0);
    let eb = before.subset_estimate(&mut pred);
    let ea = after.subset_estimate(&mut pred);
    // Union bound: each side gets delta/2.
    let half = delta_conf / 2.0;
    let (b_lo, b_hi) = interval_for(eb, before.tau(), half);
    let (a_lo, a_hi) = interval_for(ea, after.tau(), half);
    SubsetComparison {
        before: eb,
        after: ea,
        delta: ea - eb,
        ci: (a_lo - b_hi, a_hi - b_lo),
    }
}

fn interval_for(estimate: f64, tau: f64, delta: f64) -> (f64, f64) {
    if tau <= 0.0 {
        // Exact summary (everything kept): zero-width interval.
        (estimate, estimate)
    } else {
        bounds::weight_confidence_interval(estimate, tau, delta)
    }
}

/// Ratio-of-totals estimate: the subset's share of total weight in each
/// sample, useful for normalizing across periods with different volumes.
pub fn share_change(
    before: &Sample,
    after: &Sample,
    mut pred: impl FnMut(KeyId) -> bool,
) -> (f64, f64) {
    let sb = before.subset_estimate(&mut pred) / before.total_estimate().max(f64::MIN_POSITIVE);
    let sa = after.subset_estimate(&mut pred) / after.total_estimate().max(f64::MIN_POSITIVE);
    (sb, sa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sas_core::WeightedKey;

    fn period_data(n: u64, bump: f64, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let base = rng.gen_range(0.5..1.5);
                let w = if k < n / 4 { base * bump } else { base };
                WeightedKey::new(k, w)
            })
            .collect()
    }

    #[test]
    fn detects_a_real_increase() {
        // First quarter of keys triples between periods.
        let d1 = period_data(2000, 1.0, 1);
        let d2 = period_data(2000, 3.0, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let s1 = sas_sampling::order::sample(&d1, 400, &mut rng);
        let s2 = sas_sampling::order::sample(&d2, 400, &mut rng);
        let cmp = compare_subset(&s1, &s2, |k| k < 500, 0.05);
        let true_before: f64 = d1.iter().filter(|w| w.key < 500).map(|w| w.weight).sum();
        let true_after: f64 = d2.iter().filter(|w| w.key < 500).map(|w| w.weight).sum();
        let true_delta = true_after - true_before;
        assert!(
            cmp.delta > 0.5 * true_delta && cmp.delta < 1.5 * true_delta,
            "delta {} vs true {}",
            cmp.delta,
            true_delta
        );
        assert!(
            cmp.ci.0 <= true_delta && true_delta <= cmp.ci.1,
            "CI {:?} misses {}",
            cmp.ci,
            true_delta
        );
        // The increase is significant: CI excludes zero.
        assert!(cmp.ci.0 > 0.0, "CI {:?} includes 0 for a 3x bump", cmp.ci);
    }

    #[test]
    fn no_change_is_not_flagged() {
        let d1 = period_data(2000, 1.0, 4);
        let d2 = period_data(2000, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let s1 = sas_sampling::order::sample(&d1, 300, &mut rng);
        let s2 = sas_sampling::order::sample(&d2, 300, &mut rng);
        let cmp = compare_subset(&s1, &s2, |k| k < 500, 0.05);
        assert!(
            cmp.ci.0 <= 0.0 && 0.0 <= cmp.ci.1,
            "CI {:?} excludes 0 for unchanged data",
            cmp.ci
        );
    }

    #[test]
    fn share_change_normalizes() {
        let d1 = period_data(1000, 1.0, 7);
        // Double everything: absolute weights change, shares do not.
        let d2: Vec<WeightedKey> = d1
            .iter()
            .map(|wk| WeightedKey::new(wk.key, wk.weight * 2.0))
            .collect();
        let mut rng = StdRng::seed_from_u64(8);
        let s1 = sas_sampling::order::sample(&d1, 200, &mut rng);
        let s2 = sas_sampling::order::sample(&d2, 200, &mut rng);
        let (sb, sa) = share_change(&s1, &s2, |k| k < 250);
        assert!((sb - sa).abs() < 0.05, "shares {sb} vs {sa}");
    }

    #[test]
    fn exact_samples_zero_width_ci() {
        let d = period_data(50, 1.0, 9);
        let mut rng = StdRng::seed_from_u64(10);
        // s >= n: tau = 0, estimates exact.
        let s1 = sas_sampling::order::sample(&d, 50, &mut rng);
        let s2 = sas_sampling::order::sample(&d, 50, &mut rng);
        let cmp = compare_subset(&s1, &s2, |k| k < 25, 0.05);
        assert_eq!(cmp.delta, 0.0);
        assert_eq!(cmp.ci, (0.0, 0.0));
    }
}
