//! Product structures: d-dimensional points and axis-parallel box ranges.
//!
//! Keys are points in a product of per-axis domains; each axis carries an
//! order or a hierarchy structure (Section 4 of the paper). Hierarchy axes
//! are handled through their linearization — every hierarchy node maps to a
//! contiguous coordinate interval — so a box is always a product of
//! per-axis intervals.

use crate::order::Interval;

/// A point in a d-dimensional product domain. Dimension is the coordinate
/// vector length (kept small; typical d is 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Point {
    /// Per-axis coordinates.
    pub coords: Vec<u64>,
}

impl Point {
    /// Creates a point from coordinates.
    pub fn new(coords: Vec<u64>) -> Self {
        Self { coords }
    }

    /// Two-dimensional convenience constructor.
    pub fn xy(x: u64, y: u64) -> Self {
        Self { coords: vec![x, y] }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate on `axis`.
    pub fn coord(&self, axis: usize) -> u64 {
        self.coords[axis]
    }
}

/// An axis-parallel box: the product of one interval per axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoxRange {
    /// Per-axis closed intervals.
    pub sides: Vec<Interval>,
}

impl BoxRange {
    /// Creates a box from per-axis intervals.
    pub fn new(sides: Vec<Interval>) -> Self {
        Self { sides }
    }

    /// Two-dimensional convenience constructor `[x0,x1] × [y0,y1]`.
    pub fn xy(x0: u64, x1: u64, y0: u64, y1: u64) -> Self {
        Self {
            sides: vec![Interval::new(x0, x1), Interval::new(y0, y1)],
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.sides.len()
    }

    /// Whether the box contains the point.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn contains(&self, p: &Point) -> bool {
        assert_eq!(self.dim(), p.dim(), "dimension mismatch");
        self.sides
            .iter()
            .zip(&p.coords)
            .all(|(iv, &c)| iv.contains(c))
    }

    /// Whether the box is empty on any axis.
    pub fn is_empty(&self) -> bool {
        self.sides.iter().any(Interval::is_empty)
    }

    /// Intersection of two boxes (empty if disjoint on any axis).
    pub fn intersect(&self, other: &BoxRange) -> BoxRange {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        BoxRange {
            sides: self
                .sides
                .iter()
                .zip(&other.sides)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        }
    }

    /// Whether this box fully contains `other`.
    pub fn covers(&self, other: &BoxRange) -> bool {
        other.is_empty()
            || self
                .sides
                .iter()
                .zip(&other.sides)
                .all(|(a, b)| a.covers(b))
    }

    /// Whether the boxes overlap.
    pub fn overlaps(&self, other: &BoxRange) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Number of lattice points covered (saturating; useful for area-style
    /// diagnostics on small domains).
    pub fn volume(&self) -> u64 {
        self.sides
            .iter()
            .map(Interval::len)
            .fold(1u64, |acc, l| acc.saturating_mul(l))
    }
}

/// A multi-range query: a union of disjoint boxes. The paper's experiments
/// use queries of 1–100 rectangles.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRangeQuery {
    /// The disjoint boxes making up the query.
    pub boxes: Vec<BoxRange>,
}

impl MultiRangeQuery {
    /// Creates a multi-range query; boxes are expected to be disjoint.
    pub fn new(boxes: Vec<BoxRange>) -> Self {
        Self { boxes }
    }

    /// Number of ranges in the query.
    pub fn range_count(&self) -> usize {
        self.boxes.len()
    }

    /// Whether any box contains the point.
    pub fn contains(&self, p: &Point) -> bool {
        self.boxes.iter().any(|b| b.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_containment() {
        let b = BoxRange::xy(0, 10, 5, 15);
        assert!(b.contains(&Point::xy(0, 5)));
        assert!(b.contains(&Point::xy(10, 15)));
        assert!(!b.contains(&Point::xy(11, 10)));
        assert!(!b.contains(&Point::xy(5, 4)));
    }

    #[test]
    fn box_intersection_and_cover() {
        let a = BoxRange::xy(0, 10, 0, 10);
        let b = BoxRange::xy(5, 15, 5, 15);
        let i = a.intersect(&b);
        assert_eq!(i, BoxRange::xy(5, 10, 5, 10));
        assert!(a.overlaps(&b));
        assert!(a.covers(&i));
        assert!(!a.covers(&b));
        let disjoint = BoxRange::xy(11, 12, 0, 10);
        assert!(!a.overlaps(&disjoint));
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn volume() {
        assert_eq!(BoxRange::xy(0, 9, 0, 4).volume(), 50);
        assert_eq!(BoxRange::xy(3, 3, 7, 7).volume(), 1);
    }

    #[test]
    fn empty_box() {
        let e = BoxRange::xy(5, 3, 0, 10);
        assert!(e.is_empty());
        assert!(!e.contains(&Point::xy(4, 5)));
        assert!(BoxRange::xy(0, 100, 0, 100).covers(&e));
    }

    #[test]
    fn multi_range_query() {
        let q = MultiRangeQuery::new(vec![BoxRange::xy(0, 1, 0, 1), BoxRange::xy(5, 6, 5, 6)]);
        assert_eq!(q.range_count(), 2);
        assert!(q.contains(&Point::xy(0, 0)));
        assert!(q.contains(&Point::xy(6, 5)));
        assert!(!q.contains(&Point::xy(3, 3)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let b = BoxRange::xy(0, 1, 0, 1);
        b.contains(&Point::new(vec![0, 0, 0]));
    }
}
