//! Dyadic intervals over `[0, 2^bits)` and canonical interval decomposition.
//!
//! A dyadic interval at level `ℓ` is `[i·2^ℓ, (i+1)·2^ℓ)`. Every interval
//! `[a, b]` decomposes canonically into at most `2·bits` disjoint dyadic
//! intervals. This implicit binary hierarchy is the structure of IP-prefix
//! data (a `/p` prefix is the dyadic interval at level `32 − p`) and is what
//! the wavelet, q-digest and count-sketch baselines are built over.

/// A dyadic interval: `level` (0 = single point) and `index` within that
/// level, covering `[index·2^level, (index+1)·2^level)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DyadicInterval {
    /// Level: interval length is `2^level`.
    pub level: u32,
    /// Index of this interval within its level.
    pub index: u64,
}

impl DyadicInterval {
    /// The inclusive lower endpoint.
    pub fn lo(&self) -> u64 {
        self.index << self.level
    }

    /// The inclusive upper endpoint.
    pub fn hi(&self) -> u64 {
        self.lo() + ((1u64 << self.level) - 1)
    }

    /// Length `2^level`.
    pub fn len(&self) -> u64 {
        1u64 << self.level
    }

    /// Always `false`: a dyadic interval covers at least one point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the interval contains point `x`.
    pub fn contains(&self, x: u64) -> bool {
        (x >> self.level) == self.index
    }

    /// The parent dyadic interval (one level up).
    pub fn parent(&self) -> DyadicInterval {
        DyadicInterval {
            level: self.level + 1,
            index: self.index >> 1,
        }
    }

    /// The two children (None at level 0).
    pub fn children(&self) -> Option<(DyadicInterval, DyadicInterval)> {
        if self.level == 0 {
            return None;
        }
        Some((
            DyadicInterval {
                level: self.level - 1,
                index: self.index << 1,
            },
            DyadicInterval {
                level: self.level - 1,
                index: (self.index << 1) | 1,
            },
        ))
    }

    /// The dyadic ancestor of point `x` at `level`.
    pub fn ancestor_of(x: u64, level: u32) -> DyadicInterval {
        DyadicInterval {
            level,
            index: if level >= 64 { 0 } else { x >> level },
        }
    }
}

/// Canonical decomposition of the closed interval `[a, b] ⊆ [0, 2^bits)`
/// into at most `2·bits` disjoint maximal dyadic intervals.
///
/// # Panics
/// Panics if `a > b` or `b ≥ 2^bits` (for `bits < 64`).
pub fn decompose(a: u64, b: u64, bits: u32) -> Vec<DyadicInterval> {
    assert!(a <= b, "invalid interval [{a}, {b}]");
    if bits < 64 {
        assert!(b < (1u64 << bits), "interval exceeds domain of {bits} bits");
    }
    let mut out = Vec::new();
    let mut lo = a;
    loop {
        // Largest level with `lo` aligned and the block fitting in [lo, b].
        let align = if lo == 0 {
            bits
        } else {
            lo.trailing_zeros().min(bits)
        };
        let remaining = b - lo + 1;
        let fit = 63 - remaining.leading_zeros();
        let level = align.min(fit);
        out.push(DyadicInterval {
            level,
            index: lo >> level,
        });
        let step = 1u64 << level;
        if remaining == step {
            break;
        }
        lo += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let d = DyadicInterval { level: 3, index: 2 };
        assert_eq!(d.lo(), 16);
        assert_eq!(d.hi(), 23);
        assert_eq!(d.len(), 8);
        assert!(d.contains(16) && d.contains(23));
        assert!(!d.contains(15) && !d.contains(24));
    }

    #[test]
    fn parent_child_roundtrip() {
        let d = DyadicInterval { level: 2, index: 5 };
        let p = d.parent();
        assert_eq!(p.level, 3);
        assert_eq!(p.index, 2);
        let (l, r) = p.children().unwrap();
        assert!(l == d || r == d);
        assert!(DyadicInterval { level: 0, index: 7 }.children().is_none());
    }

    #[test]
    fn ancestor_of_point() {
        let a = DyadicInterval::ancestor_of(100, 4);
        assert!(a.contains(100));
        assert_eq!(a.len(), 16);
        assert_eq!(DyadicInterval::ancestor_of(5, 0).lo(), 5);
    }

    fn check_decomposition(a: u64, b: u64, bits: u32) {
        let parts = decompose(a, b, bits);
        // Parts are disjoint, sorted, and cover exactly [a, b].
        let mut expect = a;
        for d in &parts {
            assert_eq!(d.lo(), expect, "gap before {d:?} in [{a},{b}]");
            expect = d.hi() + 1;
        }
        assert_eq!(expect, b + 1, "cover ends early for [{a},{b}]");
        assert!(parts.len() as u32 <= 2 * bits.max(1), "too many parts");
    }

    #[test]
    fn decompose_small_exhaustive() {
        let bits = 5;
        let n = 1u64 << bits;
        for a in 0..n {
            for b in a..n {
                check_decomposition(a, b, bits);
            }
        }
    }

    #[test]
    fn decompose_aligned_is_single() {
        let parts = decompose(0, 1023, 10);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].level, 10);
        let parts = decompose(512, 1023, 10);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn decompose_single_point() {
        let parts = decompose(37, 37, 10);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].level, 0);
        assert_eq!(parts[0].lo(), 37);
    }

    #[test]
    fn decompose_large_domain() {
        // 32-bit IP-style domain.
        check_decomposition(1, (1u64 << 32) - 2, 32);
        check_decomposition(0, (1u64 << 32) - 1, 32);
    }

    #[test]
    #[should_panic(expected = "exceeds domain")]
    fn decompose_out_of_domain_panics() {
        decompose(0, 32, 5);
    }
}
