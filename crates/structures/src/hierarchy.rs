//! Hierarchy structures: keys at the leaves of a rooted tree.
//!
//! Ranges are the sets of keys under internal nodes (geographic areas, IP
//! prefixes, trouble-code subtrees, …). The hierarchy sampler of
//! `sas-sampling` guarantees that under *every* node the number of sampled
//! keys is the floor or ceiling of its expectation — maximum range
//! discrepancy Δ < 1 (Section 3 of the paper).
//!
//! The tree is stored as an arena. Leaves are assigned contiguous in-order
//! positions, so every node covers a contiguous *leaf span* — this is the
//! "linearization" the paper uses to reduce hierarchy axes to orders.

use crate::order::Interval;
use sas_core::KeyId;

/// Index of a node in a [`Hierarchy`] arena.
pub type NodeId = u32;

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Key stored at this node, if it is a leaf.
    key: Option<KeyId>,
    /// In-order span of leaf positions under this node: [lo, hi] inclusive.
    span: Interval,
    /// Depth from the root (root = 0).
    depth: u32,
}

/// A rooted tree whose leaves carry keys.
///
/// ```
/// use sas_structures::hierarchy::HierarchyBuilder;
///
/// // Build the tree of the paper's Figure 1: 10 leaves under a 3-level
/// // hierarchy.
/// let mut b = HierarchyBuilder::new();
/// let root = b.root();
/// let left = b.add_internal(root);
/// let l1 = b.add_internal(left);
/// b.add_leaf(l1, 1);
/// b.add_leaf(l1, 2);
/// let h = b.build();
/// assert_eq!(h.leaf_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    nodes: Vec<Node>,
    /// Leaf positions in in-order: `leaves[pos]` is the node id of the leaf
    /// at position `pos`.
    leaves: Vec<NodeId>,
}

impl Hierarchy {
    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Whether `n` is a leaf.
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.nodes[n as usize].children.is_empty()
    }

    /// The key stored at leaf `n` (None for internal nodes).
    pub fn key(&self, n: NodeId) -> Option<KeyId> {
        self.nodes[n as usize].key
    }

    /// Parent of `n` (None for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n as usize].parent
    }

    /// Children of `n`.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n as usize].children
    }

    /// Depth of `n` (root = 0).
    pub fn depth(&self, n: NodeId) -> u32 {
        self.nodes[n as usize].depth
    }

    /// Contiguous span of in-order leaf positions under `n`.
    pub fn leaf_span(&self, n: NodeId) -> Interval {
        self.nodes[n as usize].span
    }

    /// The leaf node at in-order position `pos`.
    pub fn leaf_at(&self, pos: u64) -> NodeId {
        self.leaves[pos as usize]
    }

    /// In-order position of leaf `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a leaf.
    pub fn leaf_position(&self, n: NodeId) -> u64 {
        assert!(self.is_leaf(n), "node {n} is not a leaf");
        self.nodes[n as usize].span.lo
    }

    /// Iterates over `(position, key)` of all leaves in order — the
    /// *linearization* of the hierarchy.
    pub fn linearize(&self) -> impl Iterator<Item = (u64, KeyId)> + '_ {
        self.leaves.iter().enumerate().map(|(pos, &n)| {
            (
                pos as u64,
                self.nodes[n as usize].key.expect("leaf has key"),
            )
        })
    }

    /// Keys under node `n` (the range this node represents).
    pub fn keys_under(&self, n: NodeId) -> impl Iterator<Item = KeyId> + '_ {
        let span = self.leaf_span(n);
        (span.lo..=span.hi)
            .filter(move |_| !span.is_empty())
            .map(move |pos| {
                let leaf = self.leaves[pos as usize];
                self.nodes[leaf as usize].key.expect("leaf has key")
            })
    }

    /// All node ids in DFS pre-order.
    pub fn dfs_preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n as usize].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All internal node ids (these are the ranges of the structure).
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as NodeId).filter(|&n| !self.is_leaf(n))
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, mut a: NodeId, mut b: NodeId) -> NodeId {
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node has parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node has parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root");
            b = self.parent(b).expect("non-root");
        }
        a
    }

    /// The ancestors of `n` from its parent up to the root.
    pub fn ancestors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.parent(n);
        std::iter::from_fn(move || {
            let out = cur?;
            cur = self.parent(out);
            Some(out)
        })
    }

    /// Builds the dyadic (binary-trie / IP-prefix) hierarchy induced by the
    /// given keys over a `2^bits` domain: internal nodes are the prefixes
    /// that have at least one present key below them, with single-child
    /// chains compressed away (a node is materialized only where the key
    /// set actually branches — the "tree induced by keys in the data set"
    /// of the paper's Figure 1 caption).
    ///
    /// # Panics
    /// Panics if `keys` is empty, contains duplicates, or a key exceeds
    /// the domain.
    pub fn dyadic_trie(keys: &[KeyId], bits: u32) -> Self {
        assert!(!keys.is_empty(), "hierarchy needs at least one leaf");
        let mut sorted: Vec<KeyId> = keys.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[0] != w[1], "duplicate key {}", w[0]);
        }
        if bits < 64 {
            assert!(
                *sorted.last().unwrap() < (1u64 << bits),
                "key outside 2^{bits} domain"
            );
        }
        let mut b = HierarchyBuilder::new();
        // Recursive construction over the sorted slice: split at the
        // highest bit where the slice's keys diverge.
        fn build(b: &mut HierarchyBuilder, parent: NodeId, keys: &[KeyId], bits: u32) {
            if keys.len() == 1 {
                b.add_leaf(parent, keys[0]);
                return;
            }
            let first = keys[0];
            let last = *keys.last().unwrap();
            // Highest differing bit between first and last.
            let diff = 63 - (first ^ last).leading_zeros();
            debug_assert!(diff < bits || bits == 64);
            // Partition at that bit: keys with bit clear precede keys with
            // bit set (keys are sorted and share all higher bits).
            let split = keys.partition_point(|&k| (k >> diff) & 1 == 0);
            let node = b.add_internal(parent);
            build(b, node, &keys[..split], bits);
            build(b, node, &keys[split..], bits);
        }
        let root = b.root();
        if sorted.len() == 1 {
            b.add_leaf(root, sorted[0]);
            return b.build();
        }
        // Top-level: attach the branching structure directly under the root.
        let first = sorted[0];
        let last = *sorted.last().unwrap();
        let diff = 63 - (first ^ last).leading_zeros();
        let split = sorted.partition_point(|&k| (k >> diff) & 1 == 0);
        build(&mut b, root, &sorted[..split], bits);
        build(&mut b, root, &sorted[split..], bits);
        b.build()
    }

    /// Builds a balanced binary hierarchy over `keys` in the given order.
    /// Useful as a default structure for ordered data.
    pub fn balanced_binary(keys: &[KeyId]) -> Self {
        assert!(!keys.is_empty(), "hierarchy needs at least one leaf");
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        fn rec(b: &mut HierarchyBuilder, parent: NodeId, keys: &[KeyId]) {
            if keys.len() == 1 {
                b.add_leaf(parent, keys[0]);
            } else {
                let mid = keys.len() / 2;
                let l = b.add_internal(parent);
                rec(b, l, &keys[..mid]);
                let r = b.add_internal(parent);
                rec(b, r, &keys[mid..]);
            }
        }
        if keys.len() == 1 {
            b.add_leaf(root, keys[0]);
        } else {
            let mid = keys.len() / 2;
            let l = b.add_internal(root);
            rec(&mut b, l, &keys[..mid]);
            let r = b.add_internal(root);
            rec(&mut b, r, &keys[mid..]);
        }
        b.build()
    }
}

/// Incremental builder for a [`Hierarchy`].
///
/// Add internal nodes and leaves top-down, then call [`HierarchyBuilder::build`]
/// to finalize spans and depths.
#[derive(Debug, Default)]
pub struct HierarchyBuilder {
    parents: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    keys: Vec<Option<KeyId>>,
}

impl HierarchyBuilder {
    /// Creates a builder with just a root node.
    pub fn new() -> Self {
        Self {
            parents: vec![None],
            children: vec![Vec::new()],
            keys: vec![None],
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        0
    }

    /// Adds an internal node under `parent`, returning its id.
    pub fn add_internal(&mut self, parent: NodeId) -> NodeId {
        self.add_node(parent, None)
    }

    /// Adds a leaf carrying `key` under `parent`, returning its id.
    pub fn add_leaf(&mut self, parent: NodeId, key: KeyId) -> NodeId {
        self.add_node(parent, Some(key))
    }

    fn add_node(&mut self, parent: NodeId, key: Option<KeyId>) -> NodeId {
        assert!(
            (parent as usize) < self.parents.len(),
            "unknown parent {parent}"
        );
        assert!(
            self.keys[parent as usize].is_none(),
            "cannot add children under a leaf"
        );
        let id = self.parents.len() as NodeId;
        self.parents.push(Some(parent));
        self.children.push(Vec::new());
        self.keys.push(key);
        self.children[parent as usize].push(id);
        id
    }

    /// Finalizes the hierarchy: computes depths, in-order leaf positions and
    /// node spans.
    ///
    /// # Panics
    /// Panics if any internal node (including the root) has no leaf
    /// descendants.
    pub fn build(self) -> Hierarchy {
        let n = self.parents.len();
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| Node {
                parent: self.parents[i],
                children: self.children[i].clone(),
                key: self.keys[i],
                span: Interval::new(1, 0), // empty until assigned
                depth: 0,
            })
            .collect();

        // Depths by BFS from the root.
        let mut queue = std::collections::VecDeque::from([0 as NodeId]);
        while let Some(u) = queue.pop_front() {
            let d = nodes[u as usize].depth;
            let kids = nodes[u as usize].children.clone();
            for c in kids {
                nodes[c as usize].depth = d + 1;
                queue.push_back(c);
            }
        }

        // In-order leaf positions by iterative DFS, then spans bottom-up.
        let mut leaves = Vec::new();
        let mut stack = vec![(0 as NodeId, false)];
        let mut post_order = Vec::with_capacity(n);
        while let Some((u, processed)) = stack.pop() {
            if processed {
                post_order.push(u);
                continue;
            }
            stack.push((u, true));
            if nodes[u as usize].children.is_empty() {
                if nodes[u as usize].key.is_some() {
                    let pos = leaves.len() as u64;
                    nodes[u as usize].span = Interval::new(pos, pos);
                    leaves.push(u);
                }
            } else {
                for &c in nodes[u as usize].children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        assert!(!leaves.is_empty(), "hierarchy has no leaves");
        for &u in &post_order {
            if !nodes[u as usize].children.is_empty() {
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                for &c in &nodes[u as usize].children {
                    let s = nodes[c as usize].span;
                    if !s.is_empty() {
                        lo = lo.min(s.lo);
                        hi = hi.max(s.hi);
                    }
                }
                assert!(lo != u64::MAX, "internal node {u} has no leaf descendants");
                nodes[u as usize].span = Interval::new(lo, hi);
            }
        }
        Hierarchy { nodes, leaves }
    }
}

/// Builds the paper's Figure 1 hierarchy: 10 leaves (keys 1–10) under the
/// depicted 3-level tree, used by tests and the walkthrough example.
///
/// Shape (from the figure): root has three children:
/// * A = {(1,2),(3,4)} — two internal pairs
/// * B = {5}           — a lone leaf under an internal node
/// * C = {(6,7),(8,9,10)} — a pair and a triple
pub fn figure1_hierarchy() -> Hierarchy {
    let mut b = HierarchyBuilder::new();
    let root = b.root();
    let a = b.add_internal(root);
    let a1 = b.add_internal(a);
    b.add_leaf(a1, 1);
    b.add_leaf(a1, 2);
    let a2 = b.add_internal(a);
    b.add_leaf(a2, 3);
    b.add_leaf(a2, 4);
    let m = b.add_internal(root);
    b.add_leaf(m, 5);
    let c = b.add_internal(root);
    let c1 = b.add_internal(c);
    b.add_leaf(c1, 6);
    b.add_leaf(c1, 7);
    let c2 = b.add_internal(c);
    b.add_leaf(c2, 8);
    b.add_leaf(c2, 9);
    b.add_leaf(c2, 10);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let h = figure1_hierarchy();
        assert_eq!(h.leaf_count(), 10);
        let keys: Vec<KeyId> = h.linearize().map(|(_, k)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.leaf_span(h.root()), Interval::new(0, 9));
    }

    #[test]
    fn spans_are_contiguous_and_nested() {
        let h = figure1_hierarchy();
        for n in 0..h.node_count() as NodeId {
            let span = h.leaf_span(n);
            assert!(!span.is_empty());
            if let Some(p) = h.parent(n) {
                assert!(h.leaf_span(p).covers(&span));
            }
        }
    }

    #[test]
    fn lca_basics() {
        let h = figure1_hierarchy();
        // Find leaves by key.
        let leaf = |k: KeyId| -> NodeId {
            (0..h.node_count() as NodeId)
                .find(|&n| h.key(n) == Some(k))
                .unwrap()
        };
        let l1 = leaf(1);
        let l2 = leaf(2);
        let l4 = leaf(4);
        let l10 = leaf(10);
        // Siblings: LCA is their shared parent.
        assert_eq!(h.lca(l1, l2), h.parent(l1).unwrap());
        // 1 and 4: LCA is node A (grandparent).
        assert_eq!(h.lca(l1, l4), h.parent(h.parent(l1).unwrap()).unwrap());
        // 1 and 10: LCA is the root.
        assert_eq!(h.lca(l1, l10), h.root());
        assert_eq!(h.lca(l1, l1), l1);
    }

    #[test]
    fn keys_under_nodes() {
        let h = figure1_hierarchy();
        let under_root: Vec<KeyId> = h.keys_under(h.root()).collect();
        assert_eq!(under_root.len(), 10);
        // Node A (first child of root) covers keys 1..=4.
        let a = h.children(h.root())[0];
        let under_a: Vec<KeyId> = h.keys_under(a).collect();
        assert_eq!(under_a, vec![1, 2, 3, 4]);
    }

    #[test]
    fn balanced_binary_structure() {
        let keys: Vec<KeyId> = (0..13).collect();
        let h = Hierarchy::balanced_binary(&keys);
        assert_eq!(h.leaf_count(), 13);
        let lin: Vec<KeyId> = h.linearize().map(|(_, k)| k).collect();
        assert_eq!(lin, keys);
        // Depth is logarithmic.
        for n in 0..h.node_count() as NodeId {
            assert!(h.depth(n) <= 5);
        }
    }

    #[test]
    fn single_leaf_hierarchy() {
        let h = Hierarchy::balanced_binary(&[42]);
        assert_eq!(h.leaf_count(), 1);
        assert_eq!(h.keys_under(h.root()).collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn ancestors_chain() {
        let h = figure1_hierarchy();
        let leaf = (0..h.node_count() as NodeId)
            .find(|&n| h.key(n) == Some(7))
            .unwrap();
        let anc: Vec<NodeId> = h.ancestors(leaf).collect();
        assert_eq!(anc.len() as u32, h.depth(leaf));
        assert_eq!(*anc.last().unwrap(), h.root());
    }

    #[test]
    #[should_panic(expected = "children under a leaf")]
    fn leaf_cannot_have_children() {
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        let leaf = b.add_leaf(root, 1);
        b.add_leaf(leaf, 2);
    }

    #[test]
    fn dyadic_trie_basic_shape() {
        // Keys 0,1 share prefix /31-equivalent; key 8 diverges at bit 3.
        let h = Hierarchy::dyadic_trie(&[0, 1, 8], 4);
        assert_eq!(h.leaf_count(), 3);
        let lin: Vec<KeyId> = h.linearize().map(|(_, k)| k).collect();
        assert_eq!(lin, vec![0, 1, 8]); // sorted order preserved
                                        // 0 and 1 must share a deeper LCA than 0 and 8.
        let leaf = |k: KeyId| -> NodeId {
            (0..h.node_count() as NodeId)
                .find(|&n| h.key(n) == Some(k))
                .unwrap()
        };
        let lca01 = h.lca(leaf(0), leaf(1));
        let lca08 = h.lca(leaf(0), leaf(8));
        assert!(h.depth(lca01) > h.depth(lca08));
    }

    #[test]
    fn dyadic_trie_subtrees_are_prefixes() {
        // Every internal node's leaf set shares a common binary prefix that
        // no outside leaf shares.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut keys: Vec<KeyId> = (0..64).map(|_| rng.gen_range(0..1u64 << 16)).collect();
        keys.sort_unstable();
        keys.dedup();
        let h = Hierarchy::dyadic_trie(&keys, 16);
        for n in h.internal_nodes() {
            let under: Vec<KeyId> = h.keys_under(n).collect();
            if under.len() == keys.len() {
                continue; // root
            }
            let lo = under[0];
            let hi = *under.last().unwrap();
            // Common prefix length of the subtree's extremes.
            let plen = (lo ^ hi).leading_zeros();
            for &k in &keys {
                let inside = under.contains(&k);
                let shares = (k ^ lo).leading_zeros() >= plen;
                assert_eq!(
                    inside, shares,
                    "node {n}: key {k:#x} (lo={lo:#x}, hi={hi:#x})"
                );
            }
        }
    }

    #[test]
    fn dyadic_trie_single_key() {
        let h = Hierarchy::dyadic_trie(&[42], 16);
        assert_eq!(h.leaf_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn dyadic_trie_rejects_duplicates() {
        Hierarchy::dyadic_trie(&[3, 3], 8);
    }

    #[test]
    fn dfs_preorder_visits_all() {
        let h = figure1_hierarchy();
        let order = h.dfs_preorder();
        assert_eq!(order.len(), h.node_count());
        assert_eq!(order[0], h.root());
    }

    #[test]
    fn internal_nodes_are_ranges() {
        let h = figure1_hierarchy();
        let count = h.internal_nodes().count();
        // root + A + A1 + A2 + M + C + C1 + C2 = 8 internal nodes.
        assert_eq!(count, 8);
    }
}
