//! Order structures: linearly ordered keys whose ranges are intervals.
//!
//! The paper's order structure has ranges `R` = all consecutive sets of keys
//! ("intervals"). A special case is the prefix structure (all prefixes of
//! the order), which is also the degenerate path-shaped hierarchy.

/// A closed interval `[lo, hi]` over key *positions* or coordinate values.
///
/// Intervals are inclusive on both ends; an interval with `lo > hi` is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower endpoint.
    pub lo: u64,
    /// Inclusive upper endpoint.
    pub hi: u64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    pub fn new(lo: u64, hi: u64) -> Self {
        Self { lo, hi }
    }

    /// The prefix interval `[0, hi]`.
    pub fn prefix(hi: u64) -> Self {
        Self { lo: 0, hi }
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: u64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether the interval is empty (`lo > hi`).
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Number of integer points covered (0 if empty).
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.hi - self.lo + 1
        }
    }

    /// Intersection with another interval (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Whether this interval fully contains `other`.
    pub fn covers(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Whether the two intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }
}

/// Enumerates all `O(n²)` intervals of positions `[0, n)` — used by the
/// exhaustive discrepancy tests for Theorem 1.
pub fn all_intervals(n: u64) -> impl Iterator<Item = Interval> {
    (0..n).flat_map(move |lo| (lo..n).map(move |hi| Interval::new(lo, hi)))
}

/// Enumerates all prefixes of positions `[0, n)`.
pub fn all_prefixes(n: u64) -> impl Iterator<Item = Interval> {
    (0..n).map(Interval::prefix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_and_len() {
        let iv = Interval::new(3, 7);
        assert!(iv.contains(3) && iv.contains(7) && iv.contains(5));
        assert!(!iv.contains(2) && !iv.contains(8));
        assert_eq!(iv.len(), 5);
    }

    #[test]
    fn empty_interval() {
        let e = Interval::new(5, 3);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(4));
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        let c = Interval::new(11, 15);
        assert!(a.intersect(&c).is_empty());
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn covers() {
        let a = Interval::new(0, 10);
        assert!(a.covers(&Interval::new(2, 5)));
        assert!(a.covers(&Interval::new(0, 10)));
        assert!(!a.covers(&Interval::new(5, 11)));
        assert!(a.covers(&Interval::new(7, 3))); // empty is covered
    }

    #[test]
    fn interval_enumeration_counts() {
        assert_eq!(all_intervals(5).count(), 15); // n(n+1)/2
        assert_eq!(all_prefixes(5).count(), 5);
        assert!(all_intervals(4).all(|iv| !iv.is_empty()));
    }
}
