//! # sas-structures — range structures for structure-aware sampling
//!
//! The paper's structures are *range spaces* `(K, R)`: a key domain plus a
//! family of ranges that queries are drawn from. This crate implements every
//! structure the paper considers:
//!
//! * [`order`] — keys with a linear order; ranges are intervals
//!   (`O(n²)` of them) or prefixes.
//! * [`hierarchy`] — keys at the leaves of a tree; ranges are the leaf sets
//!   under internal nodes (`O(n log n)` for balanced trees). Includes LCA,
//!   linearization, and builders for dyadic (IP-prefix style) and
//!   arbitrary-branching hierarchies.
//! * [`dyadic`] — dyadic intervals over `[0, 2^bits)` and the canonical
//!   decomposition of an arbitrary interval, used by the wavelet, q-digest
//!   and sketch baselines.
//! * [`product`] — d-dimensional points and axis-parallel boxes; each axis
//!   carries an order or hierarchy structure.
//! * [`kdtree`] — `KD-HIERARCHY` (the paper's Algorithm 2): a kd-tree over
//!   weighted keys splitting each axis at the probability-weighted median,
//!   producing cells of approximately equal probability mass.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dyadic;
pub mod hierarchy;
pub mod kdtree;
pub mod order;
pub mod product;

pub use hierarchy::{Hierarchy, NodeId};
pub use kdtree::{KdHierarchy, KdNodeId};
pub use order::Interval;
pub use product::{BoxRange, Point};
