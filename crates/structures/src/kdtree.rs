//! `KD-HIERARCHY` — the paper's **Algorithm 2**.
//!
//! Builds a kd-tree over weighted d-dimensional keys, splitting on each axis
//! in round-robin order at the *probability-weighted median*: the hyperplane
//! that divides the probability mass as equally as possible. Leaves then
//! hold approximately equal mass, which is what bounds the number of cells
//! any axis-parallel hyperplane can cut to `O(s^((d−1)/d))` (Lemma 6) and in
//! turn bounds box-query discrepancy.
//!
//! Hierarchy axes are handled through their linearization (children visited
//! in decreasing-mass order when linearizing, see `sas-structures::hierarchy`),
//! so a single weighted-median split rule covers both axis kinds; this
//! substitution is documented in `DESIGN.md`.
//!
//! Two stopping rules are supported:
//! * `max_leaf_mass = 0.0` — split all the way down to single keys
//!   (the main-memory algorithm of Section 4);
//! * `max_leaf_mass = 1.0` — stop at "s-leaves" of mass ≤ 1 (the partition
//!   used by the two-pass algorithm of Section 5 and by the analysis in
//!   Appendix E).

use crate::order::Interval;
use crate::product::{BoxRange, Point};
use sas_core::KeyId;

/// Index of a node in a [`KdHierarchy`] arena.
pub type KdNodeId = u32;

/// One item stored in the tree: a key, its location, and its IPPS
/// probability.
#[derive(Debug, Clone)]
pub struct KdItem {
    /// The key.
    pub key: KeyId,
    /// The key's location in the product domain.
    pub point: Point,
    /// The key's inclusion probability (must be in `(0, 1]`).
    pub prob: f64,
}

#[derive(Debug, Clone)]
enum KdNodeKind {
    Internal {
        axis: usize,
        /// Items with `coord(axis) <= split` go left.
        split: u64,
        left: KdNodeId,
        right: KdNodeId,
    },
    Leaf {
        /// Indices into the item array.
        items: Vec<u32>,
    },
}

#[derive(Debug, Clone)]
struct KdNode {
    kind: KdNodeKind,
    /// Total probability mass under this node.
    mass: f64,
    /// The cell (region of the domain) this node owns.
    cell: BoxRange,
    depth: u32,
}

/// A kd-tree over weighted keys with (approximately) mass-balanced splits.
#[derive(Debug, Clone)]
pub struct KdHierarchy {
    nodes: Vec<KdNode>,
    items: Vec<KdItem>,
    dim: usize,
}

impl KdHierarchy {
    /// Builds a kd-hierarchy over `items` (Algorithm 2).
    ///
    /// `max_leaf_mass` controls the stopping rule (see module docs). Items
    /// at identical points that cannot be separated are kept in one leaf
    /// regardless of mass.
    ///
    /// # Panics
    /// Panics if `items` is empty, dimensions are inconsistent, or any
    /// probability is outside `(0, 1]`.
    pub fn build(items: Vec<KdItem>, max_leaf_mass: f64) -> Self {
        assert!(!items.is_empty(), "kd-hierarchy needs at least one item");
        let dim = items[0].point.dim();
        assert!(dim >= 1, "dimension must be at least 1");
        for it in &items {
            assert_eq!(it.point.dim(), dim, "inconsistent dimensions");
            assert!(
                it.prob > 0.0 && it.prob <= 1.0,
                "probability {} out of (0,1]",
                it.prob
            );
        }
        let full_cell = BoxRange::new(vec![Interval::new(0, u64::MAX); dim]);
        let mut tree = Self {
            nodes: Vec::new(),
            items,
            dim,
        };
        let all: Vec<u32> = (0..tree.items.len() as u32).collect();
        tree.build_rec(all, 0, full_cell, max_leaf_mass);
        tree
    }

    /// Recursively builds the subtree for `idxs`, returning its node id.
    fn build_rec(
        &mut self,
        idxs: Vec<u32>,
        depth: u32,
        cell: BoxRange,
        max_leaf_mass: f64,
    ) -> KdNodeId {
        let mass: f64 = idxs.iter().map(|&i| self.items[i as usize].prob).sum();
        let make_leaf = idxs.len() == 1 || mass <= max_leaf_mass;
        if make_leaf {
            return self.push_node(KdNode {
                kind: KdNodeKind::Leaf { items: idxs },
                mass,
                cell,
                depth,
            });
        }
        // Try axes starting from depth % dim until one admits a split
        // (distinct coordinate values exist).
        for probe in 0..self.dim {
            let axis = (depth as usize + probe) % self.dim;
            if let Some((split, left_idx, right_idx)) = self.weighted_median_split(&idxs, axis) {
                let mut left_cell = cell.clone();
                left_cell.sides[axis] = Interval::new(cell.sides[axis].lo, split);
                let mut right_cell = cell.clone();
                right_cell.sides[axis] = Interval::new(split + 1, cell.sides[axis].hi);

                // Reserve this node's slot before recursing.
                let id = self.push_node(KdNode {
                    kind: KdNodeKind::Leaf { items: Vec::new() }, // placeholder
                    mass,
                    cell,
                    depth,
                });
                let left = self.build_rec(left_idx, depth + 1, left_cell, max_leaf_mass);
                let right = self.build_rec(right_idx, depth + 1, right_cell, max_leaf_mass);
                self.nodes[id as usize].kind = KdNodeKind::Internal {
                    axis,
                    split,
                    left,
                    right,
                };
                return id;
            }
        }
        // All points identical on every axis: forced leaf.
        self.push_node(KdNode {
            kind: KdNodeKind::Leaf { items: idxs },
            mass,
            cell,
            depth,
        })
    }

    /// Finds the probability-weighted median split of `idxs` on `axis`:
    /// the coordinate `m` minimizing `|mass(coord ≤ m) − mass(coord > m)|`
    /// over all splits that leave both sides non-empty.
    ///
    /// Returns `None` if all items share one coordinate value on this axis.
    fn weighted_median_split(
        &self,
        idxs: &[u32],
        axis: usize,
    ) -> Option<(u64, Vec<u32>, Vec<u32>)> {
        let mut sorted: Vec<u32> = idxs.to_vec();
        sorted.sort_unstable_by_key(|&i| self.items[i as usize].point.coord(axis));
        let first = self.items[sorted[0] as usize].point.coord(axis);
        let last = self.items[*sorted.last().unwrap() as usize]
            .point
            .coord(axis);
        if first == last {
            return None;
        }
        let total: f64 = sorted.iter().map(|&i| self.items[i as usize].prob).sum();
        // Walk distinct coordinate groups accumulating mass; choose the
        // boundary minimizing imbalance.
        let mut best: Option<(f64, u64, usize)> = None; // (imbalance, split coord, count_left)
        let mut acc = 0.0;
        let mut i = 0;
        while i < sorted.len() {
            let c = self.items[sorted[i] as usize].point.coord(axis);
            let mut j = i;
            while j < sorted.len() && self.items[sorted[j] as usize].point.coord(axis) == c {
                acc += self.items[sorted[j] as usize].prob;
                j += 1;
            }
            if j < sorted.len() {
                // split after this group: left mass = acc
                let imbalance = (total - 2.0 * acc).abs();
                if best.is_none_or(|(b, _, _)| imbalance < b) {
                    best = Some((imbalance, c, j));
                }
            }
            i = j;
        }
        let (_, split, count_left) = best?;
        let (l, r) = sorted.split_at(count_left);
        Some((split, l.to_vec(), r.to_vec()))
    }

    fn push_node(&mut self, node: KdNode) -> KdNodeId {
        let id = self.nodes.len() as KdNodeId;
        self.nodes.push(node);
        id
    }

    /// The root node id (always 0).
    pub fn root(&self) -> KdNodeId {
        0
    }

    /// Dimensionality of the domain.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The items the tree was built over.
    pub fn items(&self) -> &[KdItem] {
        &self.items
    }

    /// Whether `n` is a leaf.
    pub fn is_leaf(&self, n: KdNodeId) -> bool {
        matches!(self.nodes[n as usize].kind, KdNodeKind::Leaf { .. })
    }

    /// Children of an internal node.
    pub fn children(&self, n: KdNodeId) -> Option<(KdNodeId, KdNodeId)> {
        match self.nodes[n as usize].kind {
            KdNodeKind::Internal { left, right, .. } => Some((left, right)),
            KdNodeKind::Leaf { .. } => None,
        }
    }

    /// Probability mass under node `n`.
    pub fn mass(&self, n: KdNodeId) -> f64 {
        self.nodes[n as usize].mass
    }

    /// The domain cell owned by node `n`.
    pub fn cell(&self, n: KdNodeId) -> &BoxRange {
        &self.nodes[n as usize].cell
    }

    /// Depth of node `n`.
    pub fn depth(&self, n: KdNodeId) -> u32 {
        self.nodes[n as usize].depth
    }

    /// Item indices stored at leaf `n` (empty for internal nodes).
    pub fn leaf_items(&self, n: KdNodeId) -> &[u32] {
        match &self.nodes[n as usize].kind {
            KdNodeKind::Leaf { items } => items,
            KdNodeKind::Internal { .. } => &[],
        }
    }

    /// All leaf node ids.
    pub fn leaves(&self) -> Vec<KdNodeId> {
        (0..self.nodes.len() as KdNodeId)
            .filter(|&n| self.is_leaf(n))
            .collect()
    }

    /// Locates the leaf cell containing an arbitrary point of the domain
    /// (not necessarily one of the build items) — used by the second pass of
    /// the I/O-efficient algorithm.
    pub fn locate(&self, p: &Point) -> KdNodeId {
        assert_eq!(p.dim(), self.dim, "dimension mismatch");
        let mut n = self.root();
        loop {
            match self.nodes[n as usize].kind {
                KdNodeKind::Leaf { .. } => return n,
                KdNodeKind::Internal {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    n = if p.coord(axis) <= split { left } else { right };
                }
            }
        }
    }

    /// The "s-leaves" of Appendix E: minimum-depth nodes of mass ≤ `limit`.
    pub fn s_leaves(&self, limit: f64) -> Vec<KdNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            if self.mass(n) <= limit || self.is_leaf(n) {
                out.push(n);
            } else if let Some((l, r)) = self.children(n) {
                stack.push(l);
                stack.push(r);
            }
        }
        out
    }

    /// Counts the s-leaves whose cells intersect (but are not contained in)
    /// the query box — the boundary set `B(R)` of Appendix E.
    pub fn boundary_cells(&self, query: &BoxRange, limit: f64) -> usize {
        self.s_leaves(limit)
            .into_iter()
            .filter(|&n| {
                let cell = self.cell(n);
                query.overlaps(cell) && !query.covers(cell)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(side: u64, prob: f64) -> Vec<KdItem> {
        let mut items = Vec::new();
        for x in 0..side {
            for y in 0..side {
                items.push(KdItem {
                    key: x * side + y,
                    point: Point::xy(x, y),
                    prob,
                });
            }
        }
        items
    }

    #[test]
    fn single_item_tree() {
        let t = KdHierarchy::build(
            vec![KdItem {
                key: 1,
                point: Point::xy(3, 4),
                prob: 0.5,
            }],
            0.0,
        );
        assert_eq!(t.node_count(), 1);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.locate(&Point::xy(100, 100)), t.root());
    }

    #[test]
    fn splits_to_single_keys() {
        let t = KdHierarchy::build(grid_items(4, 0.3), 0.0);
        for &leaf in &t.leaves() {
            assert_eq!(t.leaf_items(leaf).len(), 1);
        }
        assert_eq!(t.leaves().len(), 16);
    }

    #[test]
    fn mass_is_preserved_down_the_tree() {
        let t = KdHierarchy::build(grid_items(8, 0.25), 0.0);
        let mut stack = vec![t.root()];
        while let Some(n) = stack.pop() {
            if let Some((l, r)) = t.children(n) {
                let sum = t.mass(l) + t.mass(r);
                assert!((t.mass(n) - sum).abs() < 1e-9);
                stack.push(l);
                stack.push(r);
            }
        }
        assert!((t.mass(t.root()) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn splits_are_balanced_on_uniform_grid() {
        let t = KdHierarchy::build(grid_items(8, 0.25), 0.0);
        // Root split of 16.0 total mass should be 8 / 8.
        let (l, r) = t.children(t.root()).unwrap();
        assert!((t.mass(l) - 8.0).abs() < 1e-9);
        assert!((t.mass(r) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn locate_agrees_with_build_items() {
        let items = grid_items(5, 0.2);
        let t = KdHierarchy::build(items.clone(), 0.0);
        for (i, it) in items.iter().enumerate() {
            let leaf = t.locate(&it.point);
            assert!(
                t.leaf_items(leaf).contains(&(i as u32)),
                "item {i} not in its located leaf"
            );
            assert!(t.cell(leaf).contains(&it.point));
        }
    }

    #[test]
    fn cells_partition_the_domain() {
        let t = KdHierarchy::build(grid_items(4, 0.5), 0.0);
        // Every grid point (including unoccupied ones nearby) falls in
        // exactly one leaf cell.
        for x in 0..10u64 {
            for y in 0..10u64 {
                let p = Point::xy(x, y);
                let covering: Vec<_> = t
                    .leaves()
                    .into_iter()
                    .filter(|&n| t.cell(n).contains(&p))
                    .collect();
                assert_eq!(covering.len(), 1, "point ({x},{y}) in {covering:?}");
                assert_eq!(covering[0], t.locate(&p));
            }
        }
    }

    #[test]
    fn unit_mass_stopping_rule() {
        let t = KdHierarchy::build(grid_items(8, 0.25), 1.0);
        for &leaf in &t.leaves() {
            // Mass ≤ 1 unless an unsplittable identical-point group.
            assert!(t.mass(leaf) <= 1.0 + 1e-9);
        }
        let total: f64 = t.leaves().iter().map(|&l| t.mass(l)).sum();
        assert!((total - 16.0).abs() < 1e-9);
    }

    #[test]
    fn identical_points_forced_leaf() {
        let items = vec![
            KdItem {
                key: 1,
                point: Point::xy(5, 5),
                prob: 0.9,
            },
            KdItem {
                key: 2,
                point: Point::xy(5, 5),
                prob: 0.9,
            },
        ];
        let t = KdHierarchy::build(items, 0.0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaf_items(t.root()).len(), 2);
    }

    #[test]
    fn skewed_mass_split() {
        // One heavy-probability item vs many light: split should isolate it
        // near-evenly by mass, not by count.
        let mut items = vec![KdItem {
            key: 0,
            point: Point::xy(0, 0),
            prob: 0.99,
        }];
        for i in 1..100 {
            items.push(KdItem {
                key: i,
                point: Point::xy(i, 0),
                prob: 0.01,
            });
        }
        let t = KdHierarchy::build(items, 0.0);
        let (l, r) = t.children(t.root()).unwrap();
        let diff = (t.mass(l) - t.mass(r)).abs();
        assert!(diff < 1.0, "imbalance {diff}");
    }

    #[test]
    fn hyperplane_cut_bound_on_uniform_grid() {
        // Lemma 6: an axis-parallel line cuts O(s^((d-1)/d)) = O(√s) s-leaf
        // cells. On a 16×16 uniform grid with mass 64 (p=0.25), s-leaves
        // have mass ~1 (64 of them); a vertical line should cut ~8, not 64.
        let t = KdHierarchy::build(grid_items(16, 0.25), 1.0);
        let line = BoxRange::xy(7, 7, 0, u64::MAX);
        let cut = t
            .s_leaves(1.0)
            .into_iter()
            .filter(|&n| t.cell(n).overlaps(&line))
            .count();
        let s_leaf_count = t.s_leaves(1.0).len();
        assert!(
            s_leaf_count >= 32,
            "expected ~64 s-leaves, got {s_leaf_count}"
        );
        assert!(
            cut <= 2 * (s_leaf_count as f64).sqrt() as usize + 2,
            "line cuts {cut} of {s_leaf_count} cells"
        );
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_build_panics() {
        KdHierarchy::build(Vec::new(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn bad_probability_panics() {
        KdHierarchy::build(
            vec![KdItem {
                key: 1,
                point: Point::xy(0, 0),
                prob: 1.5,
            }],
            0.0,
        );
    }
}
