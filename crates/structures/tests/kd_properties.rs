//! Property tests for the kd-hierarchy (Algorithm 2): the invariants the
//! discrepancy analysis of Appendix E relies on.

use proptest::prelude::*;
use sas_structures::kdtree::{KdHierarchy, KdItem};
use sas_structures::product::{BoxRange, Point};

fn items_strategy() -> impl Strategy<Value = Vec<KdItem>> {
    prop::collection::vec((0u64..1000, 0u64..1000, 0.01f64..1.0), 1..150).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (x, y, p))| KdItem {
                key: i as u64,
                point: Point::xy(x, y),
                prob: p,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mass_conserved_and_children_partition(items in items_strategy()) {
        let total: f64 = items.iter().map(|i| i.prob).sum();
        let tree = KdHierarchy::build(items, 0.0);
        prop_assert!((tree.mass(tree.root()) - total).abs() < 1e-9);
        for n in 0..tree.node_count() as u32 {
            if let Some((l, r)) = tree.children(n) {
                prop_assert!((tree.mass(n) - tree.mass(l) - tree.mass(r)).abs() < 1e-9);
                // Child cells are disjoint and inside the parent cell.
                prop_assert!(!tree.cell(l).overlaps(tree.cell(r)));
                prop_assert!(tree.cell(n).covers(tree.cell(l)));
                prop_assert!(tree.cell(n).covers(tree.cell(r)));
            }
        }
    }

    #[test]
    fn locate_is_consistent_with_cells(items in items_strategy(), px in 0u64..1200, py in 0u64..1200) {
        let tree = KdHierarchy::build(items, 0.0);
        let p = Point::xy(px, py);
        let leaf = tree.locate(&p);
        prop_assert!(tree.is_leaf(leaf));
        prop_assert!(tree.cell(leaf).contains(&p));
    }

    #[test]
    fn every_item_lands_in_its_leaf(items in items_strategy()) {
        let tree = KdHierarchy::build(items.clone(), 0.0);
        for (i, it) in items.iter().enumerate() {
            let leaf = tree.locate(&it.point);
            prop_assert!(
                tree.leaf_items(leaf).contains(&(i as u32)),
                "item {} missing from located leaf", i
            );
        }
    }

    #[test]
    fn s_leaves_cover_all_mass(items in items_strategy()) {
        let total: f64 = items.iter().map(|i| i.prob).sum();
        let tree = KdHierarchy::build(items, 1.0);
        let sum: f64 = tree.s_leaves(1.0).iter().map(|&n| tree.mass(n)).sum();
        prop_assert!((sum - total).abs() < 1e-9);
    }

    #[test]
    fn splits_are_balanced_within_max_item(items in items_strategy()) {
        // A weighted-median split can be off by at most the largest single
        // item probability (plus co-located groups).
        let tree = KdHierarchy::build(items.clone(), 0.0);
        if let Some((l, r)) = tree.children(tree.root()) {
            // The split groups items by their coordinate on the chosen
            // axis (round-robin, so axis 0 at the root when splittable):
            // the minimal imbalance is bounded by the largest same-
            // coordinate group mass on that axis.
            let group_max = |axis: usize| -> f64 {
                let mut by_coord: std::collections::HashMap<u64, f64> =
                    std::collections::HashMap::new();
                for it in &items {
                    *by_coord.entry(it.point.coord(axis)).or_insert(0.0) += it.prob;
                }
                by_coord.values().cloned().fold(0.0, f64::max)
            };
            let x_splittable = {
                let first = items[0].point.coord(0);
                items.iter().any(|it| it.point.coord(0) != first)
            };
            let bound = if x_splittable { group_max(0) } else { group_max(1) };
            let imbalance = (tree.mass(l) - tree.mass(r)).abs();
            prop_assert!(
                imbalance <= bound + 1e-9,
                "imbalance {} > max axis-group mass {}",
                imbalance,
                bound
            );
        }
    }
}

#[test]
fn boundary_cell_scaling_matches_lemma6() {
    // On an n×n uniform grid, a box boundary cuts O(√s) s-leaves: verify
    // the constant stays small as s grows (the Lemma 6 scaling).
    for side in [8u64, 16, 32] {
        let items: Vec<KdItem> = (0..side * side)
            .map(|i| KdItem {
                key: i,
                point: Point::xy(i % side, i / side),
                prob: 0.5,
            })
            .collect();
        let tree = KdHierarchy::build(items, 1.0);
        let s = tree.s_leaves(1.0).len() as f64;
        let q = BoxRange::xy(side / 4, 3 * side / 4, side / 4, 3 * side / 4);
        let boundary = tree.boundary_cells(&q, 1.0) as f64;
        assert!(
            boundary <= 8.0 * s.sqrt() + 4.0,
            "side {side}: boundary {boundary} vs 8·√{s}"
        );
    }
}
