//! Load shedding and backpressure: connections beyond `max_conns` get an
//! explicit BUSY (never a silent drop), per-dataset admission control
//! sheds excess in-flight requests, and a peer that refuses to read its
//! responses cannot grow the server's memory past the write budget.

mod util;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use sas_codec::proto;
use sas_store::client::{Client, ClientError};
use sas_store::server::ServerConfig;
use sas_store::wire::{Request, Response};

use util::{batch_frame, message, recv_message, recv_response, start, wait_metrics, Recv};

#[test]
fn connections_beyond_the_limit_get_explicit_busy() {
    let (_dir, _store, server) = start(
        "shed-conns",
        ServerConfig {
            max_conns: 2,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // Third arrival: an explicit, parseable BUSY frame, then a clean close
    // — deterministically, not sometimes.
    for round in 0..3 {
        let mut shed = TcpStream::connect(addr).unwrap();
        match recv_message(&mut shed) {
            Recv::Message(frame) => {
                match sas_store::wire::decode_response(&frame, proto::REQ_PING) {
                    Ok(Response::Busy(msg)) => {
                        assert!(msg.contains("connection limit"), "round {round}: {msg}")
                    }
                    other => panic!("round {round}: expected Busy, got {other:?}"),
                }
            }
            other => panic!("round {round}: expected a BUSY frame, got {other:?}"),
        }
        // After the frame: EOF at a message boundary.
        assert!(matches!(recv_message(&mut shed), Recv::Eof));
    }
    wait_metrics(&server, "shed count", |m| m.shed_conns >= 3);

    // The blocking client maps the same refusal onto ClientError::Busy.
    let mut c = Client::connect(addr).unwrap();
    match c.ping() {
        Err(ClientError::Busy(msg)) => assert!(msg.contains("connection limit"), "{msg}"),
        other => panic!("expected ClientError::Busy, got {other:?}"),
    }

    // Releasing a slot readmits new arrivals.
    drop(a);
    wait_metrics(&server, "slot release", |m| m.active_conns <= 1);
    let mut d = Client::connect(addr).unwrap();
    d.ping().unwrap();
    b.ping().unwrap(); // survivor unaffected throughout
    server.shutdown();
    server.wait();
}

#[test]
fn dataset_admission_control_sheds_excess_in_flight_requests() {
    let (_dir, _store, server) = start(
        "shed-requests",
        ServerConfig {
            threads: 4,
            dataset_inflight: 1,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Eight pipelined ingests against one dataset in a single write: the
    // loop dispatches them in one batch, so at most one is admitted before
    // the rest see the dataset at its limit.
    const N: usize = 8;
    let mut burst = Vec::new();
    for i in 0..N as u64 {
        burst.extend_from_slice(&message(&Request::Ingest {
            dataset: "hot".into(),
            ts: 61,
            frame: batch_frame(i * 50, 40, i),
        }));
    }
    stream.write_all(&burst).unwrap();
    let mut ok = 0;
    let mut busy = 0;
    for i in 0..N {
        match recv_response(&mut stream, proto::REQ_INGEST) {
            Response::Ingest { .. } => ok += 1,
            Response::Busy(msg) => {
                assert!(msg.contains("hot"), "response {i}: {msg}");
                busy += 1;
            }
            other => panic!("response {i}: {other:?}"),
        }
    }
    assert!(ok >= 1, "at least one ingest must be admitted");
    assert!(busy >= 1, "the burst must trip the admission limit");
    assert_eq!(ok + busy, N);
    let m = server.metrics();
    assert_eq!(m.shed_requests, busy as u64);

    // The limit is per-in-flight, not a ban: with the burst done, the
    // dataset accepts work again.
    stream
        .write_all(&message(&Request::Ingest {
            dataset: "hot".into(),
            ts: 121,
            frame: batch_frame(900, 40, 99),
        }))
        .unwrap();
    assert!(matches!(
        recv_response(&mut stream, proto::REQ_INGEST),
        Response::Ingest { .. }
    ));
    server.shutdown();
    server.wait();
}

#[test]
fn admission_control_is_per_dataset_not_global() {
    let (_dir, _store, server) = start(
        "shed-isolated",
        ServerConfig {
            threads: 4,
            dataset_inflight: 1,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Alternating datasets, one in-flight allowed each: every dataset's
    // first request is admitted regardless of the other's backlog.
    let mut burst = Vec::new();
    for i in 0..4u64 {
        for ds in ["red", "blue"] {
            burst.extend_from_slice(&message(&Request::Ingest {
                dataset: ds.into(),
                ts: 61,
                frame: batch_frame(i * 50, 30, i),
            }));
        }
    }
    stream.write_all(&burst).unwrap();
    let mut ok = [0usize; 2];
    for _ in 0..8 {
        match recv_response(&mut stream, proto::REQ_INGEST) {
            Response::Ingest { .. } => ok[0] += 1,
            Response::Busy(_) => ok[1] += 1,
            other => panic!("{other:?}"),
        }
    }
    assert!(ok[0] >= 2, "each dataset must admit at least its first");
    server.shutdown();
    server.wait();
}

#[test]
fn non_draining_reader_cannot_grow_server_memory_past_the_budget() {
    const BUDGET: usize = 4096;
    const PIPELINE: usize = 4;
    let (_dir, store, server) = start(
        "backpressure",
        ServerConfig {
            threads: 2,
            write_budget: BUDGET,
            max_pipeline: PIPELINE,
            ..ServerConfig::default()
        },
    );
    // 64 windows make each List response a few KiB — the total response
    // volume (megabytes) dwarfs every kernel buffer on the path, so the
    // outbox must actually absorb backpressure, not just the sndbuf.
    for i in 0..64u64 {
        store
            .ingest("web", 61 + i * 60, util::batch(i * 64, 64, i))
            .unwrap();
    }
    // Measure one response's wire size for the slack computation below.
    let resp_len = {
        let mut probe = TcpStream::connect(server.local_addr()).unwrap();
        probe.write_all(&message(&Request::List)).unwrap();
        match recv_message(&mut probe) {
            Recv::Message(m) => 4 + m.len(),
            other => panic!("probe list failed: {other:?}"),
        }
    };
    assert!(
        resp_len > BUDGET / 4,
        "responses must be sizeable: {resp_len}"
    );

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    const N: usize = 2000;
    let mut burst = Vec::new();
    for _ in 0..N {
        burst.extend_from_slice(&message(&Request::List));
    }
    stream.write_all(&burst).unwrap();
    // The server answers until the outbox passes the budget, then stops
    // reading; the rest of the backlog stays in kernel buffers, not
    // server memory.
    wait_metrics(&server, "backpressure engages", |m| {
        m.max_queued_bytes >= BUDGET as u64
    });
    std::thread::sleep(Duration::from_millis(300));
    let m = server.metrics();
    // Slack: the budget check happens between whole responses, and up to
    // max_pipeline worker responses can still land after reads pause.
    let cap = (BUDGET + 2 * PIPELINE * resp_len) as u64;
    assert!(
        m.max_queued_bytes <= cap,
        "outbox grew to {} > cap {cap} (unbounded would be megabytes)",
        m.max_queued_bytes
    );

    // Backpressure, not loss: draining now yields every single response.
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    for i in 0..N {
        match recv_response(&mut stream, proto::REQ_LIST) {
            Response::List(rows) => assert_eq!(rows.len(), 64, "response {i}"),
            other => panic!("response {i}: {other:?}"),
        }
    }
    server.shutdown();
    server.wait();
}

#[test]
fn metrics_count_accepts_and_requests() {
    let (_dir, _store, server) = start("metrics", ServerConfig::default());
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    a.stats().unwrap();
    b.list().unwrap();
    a.ping().unwrap(); // inline: not a worker request
    wait_metrics(&server, "accept count", |m| m.accepted == 2);
    wait_metrics(&server, "request count", |m| m.requests == 2);
    wait_metrics(&server, "active count", |m| m.active_conns == 2);
    drop(a);
    drop(b);
    wait_metrics(&server, "disconnect count", |m| m.active_conns == 0);
    server.shutdown();
    server.wait();
}
