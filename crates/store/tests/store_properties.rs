//! System-level properties of the summary store: persistence and restart
//! recovery, compaction-vs-rebuild bit-identity, snapshot consistency
//! under concurrent ingest + query, and the TCP daemon round trip.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_core::WeightedKey;
use sas_store::client::{Client, ClientError};
use sas_store::server::Server;
use sas_store::window::{Level, WindowKey};
use sas_store::{frame_path, rebuild_parent, Store, StoreConfig, StoreError};
use sas_summaries::{decode_summary, encode_summary, Query, StoredSample, Summary, SummaryKind};

/// A unique store directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sas-store-test-{}-{id}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// An *exact* 1-D sample batch: budget ≥ rows, so every key survives with
/// its original weight and range sums are exact — which is what lets the
/// tests assert equality rather than tolerances.
fn batch(lo: u64, n: u64, seed: u64) -> Box<dyn Summary> {
    let rows: Vec<WeightedKey> = (lo..lo + n)
        .map(|k| WeightedKey::new(k, 1.0 + (k % 7) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    Box::new(StoredSample::one_dim(sas_sampling::order::sample(
        &rows,
        rows.len(),
        &mut rng,
    )))
}

fn exact_total(lo: u64, n: u64) -> f64 {
    (lo..lo + n).map(|k| 1.0 + (k % 7) as f64).sum()
}

const FULL: &[(u64, u64)] = &[(0, u64::MAX)];

#[test]
fn ingest_persists_and_recovers_bit_identically() {
    let dir = TempDir::new("recover");
    let ranges: Vec<Vec<(u64, u64)>> = vec![vec![(0, u64::MAX)], vec![(0, 120)], vec![(40, 90)]];
    let (answers, rows) = {
        let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
        store.ingest("web", 5, batch(0, 100, 1)).unwrap();
        store.ingest("web", 65, batch(100, 50, 2)).unwrap();
        store.ingest("web", 70, batch(150, 50, 3)).unwrap(); // same window as 65
        store.ingest("api", 5, batch(0, 30, 4)).unwrap();
        let answers: Vec<f64> = ranges
            .iter()
            .map(|r| store.query("web", SummaryKind::Sample, r, None).value)
            .collect();
        assert_eq!(
            store.query("web", SummaryKind::Sample, FULL, None).value,
            exact_total(0, 200)
        );
        // Two minute windows for web (65 and 70 share one), one for api.
        assert_eq!(store.list().len(), 3);
        (answers, store.list())
    };
    // A fresh process recovers the catalog purely from disk.
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    assert_eq!(store.list(), rows);
    for (r, expect) in ranges.iter().zip(&answers) {
        let got = store.query("web", SummaryKind::Sample, r, None).value;
        assert_eq!(got.to_bits(), expect.to_bits(), "range {r:?}");
    }
    // Time filtering selects windows by span.
    assert_eq!(
        store
            .query("web", SummaryKind::Sample, FULL, Some((0, 59)))
            .value,
        exact_total(0, 100)
    );
    assert_eq!(
        store
            .query("web", SummaryKind::Sample, FULL, Some((60, 119)))
            .value,
        exact_total(100, 100)
    );
}

#[test]
fn budgeted_compaction_with_shared_arena_matches_fresh_rebuild() {
    // Budgeted roll-ups re-subsample through the arena-backed merge path,
    // and one compaction pass threads a single arena through every
    // roll-up — dirty from the second hour on. Each hour frame must still
    // equal the offline `rebuild_parent` (which allocates a fresh arena)
    // byte for byte, across many store layouts.
    for seed in 0..30u64 {
        let dir = TempDir::new("compact-arena");
        let store = Store::open(
            dir.path(),
            StoreConfig {
                budget: Some(25),
                cache_capacity: 16,
            },
        )
        .unwrap();
        // Three minutes in hour 0, two in hour 1, one sealer in hour 2.
        for (i, ts) in [0u64, 60, 120, 3600, 3660, 7200].into_iter().enumerate() {
            store
                .ingest(
                    "web",
                    ts,
                    batch(seed * 6000 + i as u64 * 1000, 80, seed * 10 + i as u64),
                )
                .unwrap();
        }
        let minute_frames: Vec<(WindowKey, Vec<u8>)> = store
            .list()
            .iter()
            .map(|r| {
                let path = frame_path(dir.path(), &r.key);
                (r.key.clone(), fs::read(path).unwrap())
            })
            .collect();
        assert_eq!(store.compact_once().unwrap(), 2);
        for hour_start in [0u64, 3600] {
            let hour_key = WindowKey {
                dataset: "web".into(),
                kind: SummaryKind::Sample,
                level: Level::Hour,
                start: hour_start,
            };
            let children: Vec<Box<dyn Summary>> = minute_frames
                .iter()
                .filter(|(k, _)| k.parent().unwrap() == hour_key)
                .map(|(_, bytes)| decode_summary(bytes).unwrap())
                .collect();
            let rebuilt = rebuild_parent(&hour_key, children, Some(25)).unwrap();
            let on_disk = fs::read(frame_path(dir.path(), &hour_key)).unwrap();
            assert_eq!(
                on_disk,
                encode_summary(rebuilt.as_ref()),
                "seed {seed}, hour {hour_start}: shared-arena compaction must \
                 equal the fresh-arena rebuild byte-for-byte"
            );
        }
    }
}

#[test]
fn compaction_is_bit_identical_to_offline_rebuild() {
    let dir = TempDir::new("compact");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    // Three minutes in hour 0, two in hour 1, one in hour 2 (the sealer).
    for (i, ts) in [0u64, 60, 120, 3600, 3660, 7200].into_iter().enumerate() {
        store
            .ingest("web", ts, batch(i as u64 * 1000, 80, i as u64))
            .unwrap();
    }
    let total_before = store.query("web", SummaryKind::Sample, FULL, None).value;

    // Capture the minute frames compaction will consume.
    let minute_frames: Vec<(WindowKey, Vec<u8>)> = store
        .list()
        .iter()
        .map(|r| {
            let path = frame_path(dir.path(), &r.key);
            (r.key.clone(), fs::read(path).unwrap())
        })
        .collect();

    // Hours 0 and 1 are sealed (watermark = 7260); hour 2 is still open.
    assert_eq!(store.compact_once().unwrap(), 2);
    let list = store.list();
    let levels: Vec<Level> = list.iter().map(|r| r.key.level).collect();
    assert_eq!(levels, vec![Level::Minute, Level::Hour, Level::Hour]);

    for hour_start in [0u64, 3600] {
        let hour_key = WindowKey {
            dataset: "web".into(),
            kind: SummaryKind::Sample,
            level: Level::Hour,
            start: hour_start,
        };
        let children: Vec<Box<dyn Summary>> = minute_frames
            .iter()
            .filter(|(k, _)| k.parent().unwrap() == hour_key)
            .map(|(_, bytes)| decode_summary(bytes).unwrap())
            .collect();
        assert!(!children.is_empty());
        let rebuilt = rebuild_parent(&hour_key, children, None).unwrap();
        let on_disk = fs::read(frame_path(dir.path(), &hour_key)).unwrap();
        assert_eq!(
            on_disk,
            encode_summary(rebuilt.as_ref()),
            "hour {hour_start}: compaction must equal the offline rebuild byte-for-byte"
        );
        // The consumed minute frames are gone from disk.
        for (k, _) in minute_frames
            .iter()
            .filter(|(k, _)| k.level == Level::Minute)
        {
            if k.parent().unwrap() == hour_key {
                assert!(!frame_path(dir.path(), k).exists());
            }
        }
    }

    // The answers survive the roll-up (same data, re-associated sum).
    let total_after = store.query("web", SummaryKind::Sample, FULL, None).value;
    assert!((total_after - total_before).abs() / total_before < 1e-12);

    // History below the compaction floor is immutable.
    match store.ingest("web", 30, batch(0, 5, 9)) {
        Err(StoreError::Stale { floor, .. }) => assert_eq!(floor, 7200),
        other => panic!("expected Stale, got {other:?}"),
    }

    // An ingest past the day boundary seals everything: the leftover
    // minute cascades into its hour and the hours into the day, in one
    // pass.
    store.ingest("web", 86_460, batch(9000, 40, 7)).unwrap();
    assert_eq!(store.compact_once().unwrap(), 2);
    let levels: Vec<Level> = store.list().iter().map(|r| r.key.level).collect();
    assert_eq!(levels, vec![Level::Minute, Level::Day]);
    let total_final = store.query("web", SummaryKind::Sample, FULL, None).value;
    let truth = total_before + exact_total(9000, 40);
    assert!((total_final - truth).abs() / truth < 1e-12);

    // Restart after compaction recovers the same catalog and answers.
    let answer = store
        .query("web", SummaryKind::Sample, &[(0, 5000)], None)
        .value;
    drop(store);
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    assert_eq!(
        store
            .query("web", SummaryKind::Sample, &[(0, 5000)], None)
            .value
            .to_bits(),
        answer.to_bits()
    );
    // And a compacted store still refuses stale writes after restart.
    assert!(matches!(
        store.ingest("web", 30, batch(0, 5, 9)),
        Err(StoreError::Stale { .. })
    ));
}

#[test]
fn budgeted_windows_stay_bounded_and_conserve_totals() {
    let dir = TempDir::new("budget");
    let store = Store::open(
        dir.path(),
        StoreConfig {
            budget: Some(64),
            ..StoreConfig::default()
        },
    )
    .unwrap();
    for i in 0..12u64 {
        store.ingest("web", 7, batch(i * 500, 300, i)).unwrap();
    }
    let rows = store.list();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].items <= 64, "window capped by the merge budget");
    let truth: f64 = (0..12u64).map(|i| exact_total(i * 500, 300)).sum();
    let est = store.query("web", SummaryKind::Sample, FULL, None).value;
    // The threshold merge conserves the total exactly.
    assert!((est - truth).abs() / truth < 1e-9, "{est} vs {truth}");
}

#[test]
fn concurrent_ingest_and_queries_see_consistent_snapshots() {
    let dir = TempDir::new("concurrent");
    let store = Arc::new(Store::open(dir.path(), StoreConfig::default()).unwrap());
    let done = Arc::new(AtomicBool::new(false));
    const BATCHES: u64 = 40;

    // Two writers on separate datasets ingesting in parallel.
    let writers: Vec<_> = ["web", "api"]
        .into_iter()
        .enumerate()
        .map(|(w, dataset)| {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..BATCHES {
                    let ts = i * 45; // crosses minute windows
                    store
                        .ingest(dataset, ts, batch(i * 200, 100, w as u64 * 1000 + i))
                        .unwrap();
                }
            })
        })
        .collect();

    // Four readers issuing full-range queries throughout. Monotonicity is
    // the consistency property: ingest only appends weight, so for an
    // unbudgeted sample store both the snapshot version and the
    // full-domain estimate must never decrease.
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let store = store.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let dataset = if r % 2 == 0 { "web" } else { "api" };
                let mut last_version = 0;
                let mut last_value = 0.0f64;
                let mut observed = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let ans = store.query(dataset, SummaryKind::Sample, FULL, None);
                    assert!(
                        ans.version >= last_version,
                        "snapshot versions must be monotone"
                    );
                    assert!(
                        ans.value >= last_value,
                        "{dataset}: estimate went backwards: {} after {}",
                        ans.value,
                        last_value
                    );
                    last_version = ans.version;
                    last_value = ans.value;
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must have run");
    }

    // Quiesced: the served answers equal an offline recompute from the
    // persisted frames, summed in catalog order — bit for bit.
    for dataset in ["web", "api"] {
        let offline: f64 = store
            .list()
            .iter()
            .filter(|r| r.key.dataset == dataset)
            .map(|r| {
                let bytes = fs::read(frame_path(dir.path(), &r.key)).unwrap();
                decode_summary(&bytes).unwrap().range_sum(FULL)
            })
            .sum();
        let served = store.query(dataset, SummaryKind::Sample, FULL, None).value;
        assert_eq!(served.to_bits(), offline.to_bits(), "{dataset}");
        let truth: f64 = (0..BATCHES).map(|i| exact_total(i * 200, 100)).sum();
        assert!((served - truth).abs() / truth < 1e-9);
    }
}

#[test]
fn daemon_round_trip_over_tcp() {
    let dir = TempDir::new("daemon");
    let store = Arc::new(Store::open(dir.path(), StoreConfig::default()).unwrap());
    let server = Server::start(store.clone(), "127.0.0.1:0", 4).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let ack = client
        .ingest("web", 61, encode_summary(batch(0, 120, 1).as_ref()))
        .unwrap();
    assert_eq!((ack.level, ack.start, ack.items), (Level::Minute, 60, 120));

    let remote = client
        .query("web", SummaryKind::Sample, FULL, None)
        .unwrap();
    let local = store.query("web", SummaryKind::Sample, FULL, None);
    assert_eq!(remote.value.to_bits(), local.value.to_bits());
    assert_eq!(remote.windows, 1);
    // Same query again: served from the LRU cache.
    let again = client
        .query("web", SummaryKind::Sample, FULL, None)
        .unwrap();
    assert!(again.cached);
    assert_eq!(again.value.to_bits(), remote.value.to_bits());

    let rows = client.list().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].key.dataset, "web");
    let stats = client.stats().unwrap();
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
    };
    assert_eq!(get("windows"), 1);
    assert_eq!(get("ingested_batches"), 1);
    assert!(get("cache_hits") >= 1);

    // Server-side errors arrive as messages, not hangups: the connection
    // keeps working afterwards.
    match client.ingest("bad/name", 0, encode_summary(batch(0, 5, 2).as_ref())) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("dataset"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    match client.ingest("web", 0, b"SASF not really".to_vec()) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("bad batch frame"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    assert!(client.query("web", SummaryKind::Sample, FULL, None).is_ok());

    // Parallel clients hammer queries while another client ingests.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut last = 0.0f64;
                for _ in 0..50 {
                    let ans = c.query("web", SummaryKind::Sample, FULL, None).unwrap();
                    assert!(ans.value >= last);
                    last = ans.value;
                }
            })
        })
        .collect();
    for i in 0..10u64 {
        client
            .ingest(
                "web",
                61,
                encode_summary(batch(1000 + i * 50, 50, i).as_ref()),
            )
            .unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }

    // An idle client holding its connection open must not keep the daemon
    // alive: shutdown closes parked connections (regression: wait() used
    // to hang forever here).
    let _idle = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    server.wait();
    // The daemon is gone; a fresh exchange cannot complete.
    let mut dead = match Client::connect(addr) {
        Err(_) => return,
        Ok(c) => c,
    };
    assert!(dead.query("web", SummaryKind::Sample, FULL, None).is_err());
}

#[test]
fn background_compactor_rolls_up_sealed_windows() {
    let dir = TempDir::new("compactor");
    let store = Arc::new(Store::open(dir.path(), StoreConfig::default()).unwrap());
    for ts in [0u64, 60, 120] {
        store.ingest("web", ts, batch(ts, 50, ts)).unwrap();
    }
    // Seal hour 0 by moving the watermark past it.
    store.ingest("web", 3600, batch(9000, 10, 9)).unwrap();
    let compactor = sas_store::Compactor::start(store.clone(), std::time::Duration::from_millis(5));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let hours = store
            .list()
            .iter()
            .filter(|r| r.key.level == Level::Hour)
            .count();
        if hours == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "compactor never rolled up: {:?}",
            store.list()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    compactor.stop();
    // Ingest keeps working after the compactor is gone.
    store.ingest("web", 3660, batch(500, 10, 10)).unwrap();
}

#[test]
fn crash_debris_and_orphans_are_swept_on_open() {
    let dir = TempDir::new("debris");
    {
        let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
        store.ingest("web", 5, batch(0, 60, 1)).unwrap();
    }
    // Simulate a crash mid-write (truncated temp never renamed) and a
    // frame orphaned by an interrupted compaction.
    let window_dir = dir.path().join("web/sample/minute");
    fs::write(window_dir.join("0.sas.tmp-12345-0"), b"torn").unwrap();
    fs::write(
        window_dir.join("999960.sas"),
        encode_summary(batch(0, 10, 2).as_ref()),
    )
    .unwrap();

    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    assert_eq!(store.list().len(), 1, "orphan not resurrected");
    assert_eq!(
        store.query("web", SummaryKind::Sample, FULL, None).value,
        exact_total(0, 60)
    );
    let stats = store.stats();
    let get = |name: &str| stats.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(get("temp_files_swept"), 1);
    assert_eq!(get("orphans_removed"), 1);
    assert!(!window_dir.join("999960.sas").exists());

    // A corrupted manifest is an error, not a panic or a silent reset.
    fs::write(dir.path().join("MANIFEST.sas"), b"SASF junk").unwrap();
    assert!(Store::open(dir.path(), StoreConfig::default()).is_err());
}

#[test]
fn cache_serves_repeats_and_never_goes_stale() {
    let dir = TempDir::new("cache");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.ingest("web", 5, batch(0, 50, 1)).unwrap();
    let r = [(0u64, 30u64)];
    let first = store.query("web", SummaryKind::Sample, &r, None);
    assert!(!first.cached);
    let second = store.query("web", SummaryKind::Sample, &r, None);
    assert!(second.cached);
    assert_eq!(second.value.to_bits(), first.value.to_bits());
    // Ingest bumps the snapshot version: the cache may not answer with
    // the old value.
    store.ingest("web", 7, batch(10_000, 20, 2)).unwrap();
    let third = store.query("web", SummaryKind::Sample, &r, None);
    assert!(!third.cached, "version bump must invalidate");
    assert_eq!(third.value.to_bits(), first.value.to_bits()); // keys 10000.. outside range
    let fourth = store.query("web", SummaryKind::Sample, FULL, None);
    assert_eq!(fourth.value, exact_total(0, 50) + exact_total(10_000, 20));
}

#[test]
fn estimates_carry_bounds_and_match_the_legacy_value_path() {
    let dir = TempDir::new("estimate");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    // Budgeted (non-exact) batches so the intervals are non-degenerate.
    for (i, ts) in [5u64, 65, 125].iter().enumerate() {
        let rows: Vec<WeightedKey> = (0..400u64)
            .map(|k| WeightedKey::new(i as u64 * 400 + k, 0.5 + (k % 9) as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(*ts);
        let sampled = sas_sampling::order::sample(&rows, 60, &mut rng);
        store
            .ingest("web", *ts, Box::new(StoredSample::one_dim(sampled)))
            .unwrap();
    }
    let queries = [
        Query::interval(0, 599),
        Query::Total,
        Query::MultiRange(vec![vec![(0, 99)], vec![(800, 1199)]]),
        Query::HierarchyNode { level: 8, index: 1 },
        Query::Point(vec![42]),
    ];
    for q in &queries {
        let ans = store
            .estimate("web", SummaryKind::Sample, q, 0.95, None)
            .unwrap();
        let e = ans.estimate;
        assert!(e.lower <= e.value && e.value <= e.upper, "{q}: {e:?}");
        assert_eq!(ans.windows, 3, "{q}");
        // Probabilistic answers report the requested confidence; an answer
        // that happened to be exact in every window (e.g. a point query on
        // a never-sampled or always-heavy key) reports certainty.
        assert!(
            e.confidence == 0.95 || (e.confidence == 1.0 && e.lower == e.upper),
            "{q}: {e:?}"
        );
    }
    // The estimate's value is bit-identical to the legacy value path for
    // box queries — old-tag and new-tag clients must agree.
    let r = [(0u64, 599u64)];
    let old = store.query("web", SummaryKind::Sample, &r, None);
    let new = store
        .estimate("web", SummaryKind::Sample, &queries[0], 0.95, None)
        .unwrap();
    assert_eq!(old.value.to_bits(), new.estimate.value.to_bits());
    // The exact total lies inside the Total estimate's interval (union
    // bound across the three windows).
    let truth: f64 = (0..3)
        .flat_map(|_| (0..400u64).map(|k| 0.5 + (k % 9) as f64))
        .sum();
    let total = store
        .estimate("web", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap()
        .estimate;
    assert!(
        total.lower <= truth && truth <= total.upper,
        "total {truth} outside [{}, {}]",
        total.lower,
        total.upper
    );
    // Unknown series: exact zero over zero windows.
    let ghost = store
        .estimate("ghost", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();
    assert_eq!(ghost.windows, 0);
    assert_eq!(ghost.estimate.value, 0.0);
    assert_eq!(ghost.estimate.confidence, 1.0);
    // Malformed queries surface as BadRequest, not a panic.
    let bad = store.estimate(
        "web",
        SummaryKind::Sample,
        &Query::BoxRange(vec![(9, 3)]),
        0.95,
        None,
    );
    assert!(matches!(bad, Err(StoreError::BadRequest(_))));
}

#[test]
fn estimate_cache_keys_on_canonical_queries() {
    let dir = TempDir::new("estimate-cache");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.ingest("web", 5, batch(0, 50, 1)).unwrap();
    // Equivalent spellings share one cache line…
    let first = store
        .estimate(
            "web",
            SummaryKind::Sample,
            &Query::BoxRange(vec![(0, u64::MAX)]),
            0.9,
            None,
        )
        .unwrap();
    assert!(!first.cached);
    for spelling in [
        Query::Total,
        Query::HierarchyNode {
            level: 64,
            index: 0,
        },
        Query::BoxRange(vec![(0, u64::MAX)]),
    ] {
        let again = store
            .estimate("web", SummaryKind::Sample, &spelling, 0.9, None)
            .unwrap();
        assert!(again.cached, "{spelling} should hit the canonical cache");
        assert_eq!(again.estimate, first.estimate);
    }
    // …but a different confidence is a different answer…
    let other = store
        .estimate("web", SummaryKind::Sample, &Query::Total, 0.5, None)
        .unwrap();
    assert!(!other.cached);
    // …and the legacy value path never collides with estimates.
    let plain = store.query("web", SummaryKind::Sample, FULL, None);
    assert_eq!(plain.value.to_bits(), first.estimate.value.to_bits());
    // Ingest bumps the version: estimates recompute.
    store.ingest("web", 70, batch(1000, 10, 2)).unwrap();
    let after = store
        .estimate("web", SummaryKind::Sample, &Query::Total, 0.9, None)
        .unwrap();
    assert!(!after.cached, "version bump must invalidate");
}

#[test]
fn mixed_kinds_coexist_and_mismatches_fail_cleanly() {
    let dir = TempDir::new("kinds");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.ingest("web", 5, batch(0, 40, 1)).unwrap();
    // A varopt series for the same dataset lives alongside the samples.
    let mut rng = StdRng::seed_from_u64(3);
    let mut varopt = sas_core::varopt::VarOptSampler::new(16);
    for k in 0..200u64 {
        varopt.push(k, 1.0 + (k % 5) as f64, &mut rng);
    }
    store.ingest("web", 5, Box::new(varopt)).unwrap();
    assert_eq!(store.list().len(), 2);
    let sample_ans = store.query("web", SummaryKind::Sample, FULL, None);
    let varopt_ans = store.query("web", SummaryKind::VarOptReservoir, FULL, None);
    assert_eq!(sample_ans.windows, 1);
    assert_eq!(varopt_ans.windows, 1);
    assert!(varopt_ans.value > 0.0);
    // Unknown series: zero windows, zero estimate — not an error.
    let missing = store.query("nope", SummaryKind::Sample, FULL, None);
    assert_eq!((missing.value, missing.windows), (0.0, 0));
}
