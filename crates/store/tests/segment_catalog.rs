//! Cold-catalog properties: converting stored-sample windows to v2
//! segments must change *where the bytes live* and nothing else — every
//! query answer, merge result, and compaction roll-up stays bit-identical
//! to the frame-backed store, across restarts.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::Ordering;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_core::WeightedKey;
use sas_store::{frame_path, StorageFormat, Store, StoreConfig};
use sas_summaries::{Query, StoredSample, Summary, SummaryKind};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sas-segcat-test-{}-{id}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn batch(lo: u64, n: u64, seed: u64) -> Box<dyn Summary> {
    let rows: Vec<WeightedKey> = (lo..lo + n)
        .map(|k| WeightedKey::new(k, 1.0 + (k % 7) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Budget below the row count so the sample is genuinely probabilistic
    // (non-zero tau) and estimates carry real intervals.
    Box::new(StoredSample::one_dim(sas_sampling::order::sample(
        &rows,
        (n as usize) / 2,
        &mut rng,
    )))
}

fn probe_queries() -> Vec<Query> {
    vec![
        Query::Total,
        Query::interval(0, 120),
        Query::interval(40, 90),
        Query::MultiRange(vec![vec![(0, 20)], vec![(60, 200)]]),
    ]
}

fn seeded_store(dir: &TempDir) -> Store {
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.ingest("web", 5, batch(0, 100, 1)).unwrap();
    store.ingest("web", 65, batch(100, 80, 2)).unwrap();
    store.ingest("api", 5, batch(0, 60, 3)).unwrap();
    store
}

fn estimates(store: &Store) -> Vec<(u64, u64, f64, f64, f64)> {
    probe_queries()
        .iter()
        .map(|q| {
            let a = store
                .estimate("web", SummaryKind::Sample, q, 0.95, None)
                .unwrap();
            (
                a.windows,
                a.estimate.value.to_bits(),
                a.estimate.lower,
                a.estimate.upper,
                a.estimate.variance,
            )
        })
        .collect()
}

#[test]
fn converting_to_segments_preserves_every_answer() {
    let dir = TempDir::new("convert");
    let store = seeded_store(&dir);
    let before = estimates(&store);
    let rows = store.list();

    let converted = store.convert(StorageFormat::SegmentV2).unwrap();
    assert_eq!(converted, 3);
    // Idempotent: a second pass finds nothing to do.
    assert_eq!(store.convert(StorageFormat::SegmentV2).unwrap(), 0);

    assert_eq!(estimates(&store), before);
    // Same windows and item counts; only the on-disk byte size moved.
    let cold_rows = store.list();
    assert_eq!(cold_rows.len(), rows.len());
    for (a, b) in rows.iter().zip(&cold_rows) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.items, b.items);
        assert_eq!(a.batches, b.batches);
    }
}

#[test]
fn cold_catalog_survives_restart_mapped() {
    let dir = TempDir::new("restart");
    let before = {
        let store = seeded_store(&dir);
        store.convert(StorageFormat::SegmentV2).unwrap();
        estimates(&store)
    };
    // Fresh process: recovery must sniff the segment files and serve them
    // in place, bit-identically.
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    assert_eq!(estimates(&store), before);
    // The files on disk really are segments.
    for row in store.list() {
        let bytes = fs::read(frame_path(dir.path(), &row.key)).unwrap();
        assert!(sas_codec::segment::is_segment(&bytes));
    }
}

#[test]
fn converting_back_to_frames_restores_v1_bytes() {
    let frames_of = |store: &Store, dir: &TempDir| -> Vec<Vec<u8>> {
        store
            .list()
            .iter()
            .map(|row| fs::read(frame_path(dir.path(), &row.key)).unwrap())
            .collect()
    };
    let dir = TempDir::new("roundtrip");
    let store = seeded_store(&dir);
    let v1 = frames_of(&store, &dir);
    store.convert(StorageFormat::SegmentV2).unwrap();
    assert_eq!(store.convert(StorageFormat::FrameV1).unwrap(), 3);
    assert_eq!(frames_of(&store, &dir), v1);
}

#[test]
fn ingest_into_cold_window_matches_warm_store() {
    // Two stores ingest the same sequence; one converts to segments midway.
    // The segment detour must not change a single merge outcome.
    let warm_dir = TempDir::new("warm");
    let cold_dir = TempDir::new("cold");
    let warm = seeded_store(&warm_dir);
    let cold = seeded_store(&cold_dir);
    cold.convert(StorageFormat::SegmentV2).unwrap();

    for (ts, lo, seed) in [(6u64, 300u64, 10u64), (66, 400, 11), (7, 500, 12)] {
        warm.ingest("web", ts, batch(lo, 50, seed)).unwrap();
        cold.ingest("web", ts, batch(lo, 50, seed)).unwrap();
    }
    assert_eq!(estimates(&warm), estimates(&cold));
    // The re-ingested windows were hydrated and rewritten as v1 frames;
    // the untouched "api" window is still a segment.
    for row in cold.list() {
        let bytes = fs::read(frame_path(cold_dir.path(), &row.key)).unwrap();
        let expect_segment = row.key.dataset == "api";
        assert_eq!(sas_codec::segment::is_segment(&bytes), expect_segment);
    }
}

#[test]
fn compaction_over_cold_windows_matches_warm_store() {
    let warm_dir = TempDir::new("warm-compact");
    let cold_dir = TempDir::new("cold-compact");
    let warm = Store::open(warm_dir.path(), StoreConfig::default()).unwrap();
    let cold = Store::open(cold_dir.path(), StoreConfig::default()).unwrap();
    // Fill one hour's worth of minute windows, then one more ingest past
    // the hour so the watermark seals it.
    for store in [&warm, &cold] {
        for m in 0..5u64 {
            store.ingest("web", m * 60, batch(m * 100, 60, m)).unwrap();
        }
    }
    cold.convert(StorageFormat::SegmentV2).unwrap();
    for store in [&warm, &cold] {
        store.ingest("web", 3600, batch(900, 30, 99)).unwrap();
        assert!(store.compact_once().unwrap() > 0);
    }
    assert_eq!(estimates(&warm), estimates(&cold));
    let warm_rows = warm.list();
    let cold_rows = cold.list();
    assert_eq!(warm_rows.len(), cold_rows.len());
    // The rolled-up hour frame is byte-identical across the two stores.
    for (w, c) in warm_rows.iter().zip(&cold_rows) {
        assert_eq!(w.key, c.key);
        assert_eq!(
            fs::read(frame_path(warm_dir.path(), &w.key)).unwrap(),
            fs::read(frame_path(cold_dir.path(), &c.key)).unwrap(),
            "{}",
            w.key
        );
    }
}
