//! Fault injection against the daemon's event loop: slow-loris trickles,
//! torn length prefixes, mid-frame half-closes, oversized declared
//! lengths, and garbage payloads. The invariant throughout: the server
//! times out or rejects without hanging a worker, and always releases the
//! connection slot.

mod util;

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use sas_codec::proto;
use sas_store::client::Client;
use sas_store::server::ServerConfig;
use sas_store::wire::{Request, Response};

use util::{message, recv_response, start, wait_closed, wait_metrics};

/// Tuning that makes timeout tests fast without being racy.
fn quick() -> ServerConfig {
    ServerConfig {
        threads: 2,
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

#[test]
fn slow_loris_trickle_is_cut_off() {
    let (_dir, _store, server) = start("loris", quick());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Declare a 100-byte message, then trickle one byte at a time — the
    // deadline anchors at the first byte, so progress must not extend it.
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        if stream.write_all(&[0x5a]).is_err() {
            break; // server already cut us off
        }
    }
    wait_closed(&mut stream, "slow-loris connection");
    wait_metrics(&server, "read timeout", |m| m.read_timeouts >= 1);
    wait_metrics(&server, "slot release", |m| m.active_conns == 0);
    server.shutdown();
    server.wait();
}

#[test]
fn torn_length_prefix_times_out() {
    let (_dir, _store, server) = start("torn-prefix", quick());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Two of the four prefix bytes, then silence.
    stream.write_all(&[7, 0]).unwrap();
    wait_closed(&mut stream, "torn-prefix connection");
    wait_metrics(&server, "read timeout", |m| m.read_timeouts >= 1);
    wait_metrics(&server, "slot release", |m| m.active_conns == 0);
    server.shutdown();
    server.wait();
}

#[test]
fn mid_frame_half_close_is_dropped_promptly() {
    // A long read timeout proves the close comes from the half-close
    // handling, not the timer: a message that can never complete must not
    // hold the slot.
    let (_dir, _store, server) = start(
        "half-close",
        ServerConfig {
            read_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    stream.write_all(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    wait_closed(&mut stream, "half-closed connection");
    wait_metrics(&server, "slot release", |m| m.active_conns == 0);
    server.shutdown();
    server.wait();
}

#[test]
fn oversized_declared_length_is_rejected() {
    let (_dir, _store, server) = start("oversized", quick());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let huge = proto::MAX_MESSAGE_LEN + 1;
    stream.write_all(&huge.to_le_bytes()).unwrap();
    wait_closed(&mut stream, "oversized-length connection");
    wait_metrics(&server, "protocol error", |m| m.protocol_errors >= 1);
    wait_metrics(&server, "slot release", |m| m.active_conns == 0);
    server.shutdown();
    server.wait();
}

#[test]
fn garbage_before_frame_answers_err_and_survives() {
    let (_dir, _store, server) = start("garbage", quick());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Soundly framed garbage: a 4-byte "message" that is not a SASF frame,
    // followed by a valid ping. The server answers the garbage with an
    // error message and keeps serving the same connection.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&4u32.to_le_bytes());
    bytes.extend_from_slice(b"junk");
    bytes.extend_from_slice(&message(&Request::Ping));
    stream.write_all(&bytes).unwrap();
    match recv_response(&mut stream, proto::REQ_PING) {
        Response::Err(msg) => assert!(msg.contains("bad request"), "{msg}"),
        other => panic!("expected Err for garbage, got {other:?}"),
    }
    assert!(matches!(
        recv_response(&mut stream, proto::REQ_PING),
        Response::Pong
    ));
    server.shutdown();
    server.wait();
}

#[test]
fn empty_message_answers_err_and_survives() {
    let (_dir, _store, server) = start("empty", quick());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&0u32.to_le_bytes()).unwrap();
    stream.write_all(&message(&Request::Ping)).unwrap();
    match recv_response(&mut stream, proto::REQ_PING) {
        Response::Err(msg) => assert!(msg.contains("bad request"), "{msg}"),
        other => panic!("expected Err for empty message, got {other:?}"),
    }
    assert!(matches!(
        recv_response(&mut stream, proto::REQ_PING),
        Response::Pong
    ));
    server.shutdown();
    server.wait();
}

#[test]
fn faulted_connection_releases_its_slot_for_new_arrivals() {
    let (_dir, _store, server) = start(
        "slot-release",
        ServerConfig {
            max_conns: 1,
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    // The lone slot goes to a slow-loris…
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(&[9]).unwrap();
    wait_closed(&mut loris, "loris holding the only slot");
    wait_metrics(&server, "slot release", |m| m.active_conns == 0);
    // …and after the timeout a well-behaved client gets it.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn idle_timeout_reaps_quiet_connections() {
    let (_dir, _store, server) = start(
        "idle",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    wait_closed(&mut stream, "idle connection");
    wait_metrics(&server, "idle timeout", |m| m.idle_timeouts >= 1);
    server.shutdown();
    server.wait();
}
