//! Shared fixtures for the daemon integration suites: temp stores, exact
//! sample batches, raw-socket framing helpers, and metric polling.

#![allow(dead_code)] // each suite uses its own subset

use std::fs;
use std::io::Read;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_core::WeightedKey;
use sas_store::server::{Server, ServerConfig, ServerMetrics};
use sas_store::wire::{decode_response, encode_request, Request, Response};
use sas_store::{Store, StoreConfig};
use sas_summaries::{encode_summary, StoredSample, Summary};

/// A unique store directory, removed on drop.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(name: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sas-serve-test-{}-{id}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// An *exact* 1-D sample batch (budget ≥ rows) so range sums are exact and
/// responses are deterministic.
pub fn batch(lo: u64, n: u64, seed: u64) -> Box<dyn Summary> {
    let rows: Vec<WeightedKey> = (lo..lo + n)
        .map(|k| WeightedKey::new(k, 1.0 + (k % 7) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    Box::new(StoredSample::one_dim(sas_sampling::order::sample(
        &rows,
        rows.len(),
        &mut rng,
    )))
}

/// The batch as the wire's ingest payload.
pub fn batch_frame(lo: u64, n: u64, seed: u64) -> Vec<u8> {
    encode_summary(batch(lo, n, seed).as_ref())
}

/// Opens a fresh store in a temp dir and starts a daemon on an ephemeral
/// port with the given tuning.
pub fn start(name: &str, config: ServerConfig) -> (TempDir, Arc<Store>, Server) {
    let dir = TempDir::new(name);
    let store = Arc::new(Store::open(dir.path(), StoreConfig::default()).unwrap());
    let server = Server::start_with(store.clone(), "127.0.0.1:0", config).unwrap();
    (dir, store, server)
}

/// Encodes a request as a complete wire message (length prefix + frame).
pub fn message(req: &Request) -> Vec<u8> {
    let frame = encode_request(req);
    let mut m = Vec::with_capacity(4 + frame.len());
    m.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    m.extend_from_slice(&frame);
    m
}

/// How reading one message off the socket can end.
#[derive(Debug)]
pub enum Recv {
    /// A complete message.
    Message(Vec<u8>),
    /// Clean close at a message boundary.
    Eof,
    /// Close in the middle of a message — a torn frame.
    Torn,
}

/// Reads exactly one length-prefixed message. `Torn` means the peer closed
/// (EOF or reset) with a message underway — the thing the daemon promises
/// never to do.
pub fn recv_message(stream: &mut TcpStream) -> Recv {
    let mut prefix = [0u8; 4];
    match read_full(stream, &mut prefix) {
        Full::Eof => return Recv::Eof,
        Full::Torn => return Recv::Torn,
        Full::Ok => {}
    }
    let len = u32::from_le_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    match read_full(stream, &mut body) {
        Full::Ok => Recv::Message(body),
        Full::Eof | Full::Torn => Recv::Torn,
    }
}

enum Full {
    Ok,
    /// EOF before the first byte.
    Eof,
    /// EOF or reset partway through.
    Torn,
}

fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> Full {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return if got == 0 { Full::Eof } else { Full::Torn },
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A reset with nothing read counts as a close; mid-message it
            // is torn.
            Err(_) => return if got == 0 { Full::Eof } else { Full::Torn },
        }
    }
    Full::Ok
}

/// Reads one message and decodes it under `request_tag`, panicking on
/// anything but a complete frame.
pub fn recv_response(stream: &mut TcpStream, request_tag: u16) -> Response {
    match recv_message(stream) {
        Recv::Message(frame) => decode_response(&frame, request_tag).expect("decodable response"),
        other => panic!("expected a response message, got {other:?}"),
    }
}

/// Polls `cond` on the server's metrics until it holds or `deadline`
/// passes (panics with the last snapshot).
pub fn wait_metrics(server: &Server, what: &str, cond: impl Fn(&ServerMetrics) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = server.metrics();
        if cond(&m) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Blocks until the peer closes the connection (EOF or reset), draining
/// anything it still sends; panics if it stays open past 10 s.
pub fn wait_closed(stream: &mut TcpStream, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {} // server still owed bytes (e.g. a BUSY frame)
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return, // reset counts as closed
        }
        assert!(
            Instant::now() < deadline,
            "connection not closed in time: {what}"
        );
    }
}
