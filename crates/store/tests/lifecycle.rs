//! The dataset lifecycle contract: retention drops expired windows and
//! seals them behind the ingest floor, coverage reports tell expired gaps
//! from never-ingested ones, policies survive recovery, compaction cadence
//! and budget clamps obey the per-dataset policy — and the whole pass
//! commutes with crash recovery bit-for-bit across 30 seeded histories.

mod util;

use std::collections::BTreeMap;
use std::path::Path;

use sas_store::policy::{Gap, Policy};
use sas_store::{Store, StoreConfig, StoreError};
use sas_summaries::{Query, SummaryKind};
use util::{batch, TempDir};

fn ttl(ticks: u64) -> Policy {
    Policy {
        retention_ttl: Some(ticks),
        ..Policy::default()
    }
}

/// Every file under `dir`, relative path → bytes: the store's entire
/// durable state, compared bit-for-bit by the commutativity test.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    out
}

#[test]
fn retention_drops_expired_windows_and_floor_rejects_reingest() {
    let dir = TempDir::new("retain-basic");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.set_policy("web", ttl(120)).unwrap();
    for start in [0u64, 60, 120, 180, 240] {
        store.ingest("web", start, batch(start, 10, start)).unwrap();
    }
    // Watermark 300: minutes ending at 60/120/180 are ≥120 ticks behind.
    assert_eq!(store.retain_once().unwrap(), 3);
    let rows = store.list();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.key.start >= 180));
    let expired = store
        .stats()
        .into_iter()
        .find(|(k, _)| k == "expired_windows")
        .unwrap()
        .1;
    assert_eq!(expired, 3);

    // The dropped span is sealed: re-ingesting an expired tick must fail,
    // otherwise retention order would be observable through resurrection.
    match store.ingest("web", 0, batch(0, 10, 0)) {
        Err(StoreError::Stale { floor, .. }) => assert_eq!(floor, 180),
        other => panic!("re-ingest below the floor: {other:?}"),
    }
    // A second pass is a no-op — retention is idempotent at a watermark.
    assert_eq!(store.retain_once().unwrap(), 0);
    // Ticks at or above the floor still ingest.
    store.ingest("web", 300, batch(300, 10, 300)).unwrap();
}

#[test]
fn coverage_tells_expired_gaps_from_missing_ones() {
    let dir = TempDir::new("coverage-gaps");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.set_policy("web", ttl(120)).unwrap();
    for start in [0u64, 60, 120, 180, 240] {
        store.ingest("web", start, batch(start, 10, start)).unwrap();
    }
    store.retain_once().unwrap();

    // Below the retention floor (180) the gap is *expired*; past the live
    // extent (300) it was simply never ingested.
    let (_, cov) = store
        .estimate_with_coverage(
            "web",
            SummaryKind::Sample,
            &Query::Total,
            0.95,
            Some((0, 419)),
        )
        .unwrap();
    assert_eq!(cov.requested, Some((0, 419)));
    assert_eq!(
        cov.gaps,
        vec![
            Gap {
                start: 0,
                end: 179,
                expired: true
            },
            Gap {
                start: 300,
                end: 419,
                expired: false
            },
        ]
    );

    // A span entirely inside the live windows is complete.
    let (answer, cov) = store
        .estimate_with_coverage(
            "web",
            SummaryKind::Sample,
            &Query::Total,
            0.95,
            Some((180, 299)),
        )
        .unwrap();
    assert!(cov.is_complete(), "live span reported gaps: {cov}");
    assert_eq!(answer.windows, 2);

    // The coverage-aware answer is the same estimate the plain path gives:
    // gap reporting must not perturb the value.
    let plain = store
        .estimate(
            "web",
            SummaryKind::Sample,
            &Query::Total,
            0.95,
            Some((180, 299)),
        )
        .unwrap();
    assert_eq!(plain.estimate, answer.estimate);
}

#[test]
fn policies_persist_across_reopen_and_empty_clears() {
    let dir = TempDir::new("policy-persist");
    let policy = Policy {
        compact_after: Some(60),
        retention_ttl: Some(3600),
        per_kind_budget: [(SummaryKind::Sample.tag(), 64)].into_iter().collect(),
    };
    {
        let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
        store.set_policy("web", policy.clone()).unwrap();
        store.set_policy("app", ttl(60)).unwrap();
    }
    {
        let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
        assert_eq!(store.policy("web"), Some(policy.clone()));
        assert_eq!(
            store.policies(),
            vec![("app".into(), ttl(60)), ("web".into(), policy)]
        );
        // An empty policy clears the entry rather than storing a no-op.
        store.set_policy("app", Policy::default()).unwrap();
    }
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    assert_eq!(store.policy("app"), None);
    assert_eq!(store.policies().len(), 1);
}

#[test]
fn bad_policies_are_refused_before_persisting() {
    let dir = TempDir::new("policy-invalid");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    let unknown_kind = Policy {
        per_kind_budget: [(250u16, 64)].into_iter().collect(),
        ..Policy::default()
    };
    assert!(store.set_policy("web", unknown_kind).is_err());
    let zero_budget = Policy {
        per_kind_budget: [(SummaryKind::Sample.tag(), 0)].into_iter().collect(),
        ..Policy::default()
    };
    assert!(store.set_policy("web", zero_budget).is_err());
    assert!(store.set_policy("no/slashes", ttl(60)).is_err());
    assert_eq!(store.policies(), vec![]);
}

#[test]
fn compact_after_delays_sealing_until_the_watermark_clears_it() {
    let dir = TempDir::new("compact-cadence");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store
        .set_policy(
            "web",
            Policy {
                compact_after: Some(3600),
                ..Policy::default()
            },
        )
        .unwrap();
    // A full hour of minutes plus two stragglers: watermark 3720. Without
    // the policy, hour 0 (end 3600) would seal now.
    for start in (0..3720).step_by(60) {
        store.ingest("web", start, batch(start, 4, start)).unwrap();
    }
    assert_eq!(store.compact_once().unwrap(), 0, "sealed inside the delay");
    // Advance the watermark to 7200 = hour 0 end + compact_after: now the
    // hour seals (and only that one — hour 1 is still open).
    store.ingest("web", 7140, batch(7140, 4, 7140)).unwrap();
    assert!(store.compact_once().unwrap() >= 1);
    assert!(store
        .list()
        .iter()
        .any(|r| r.key.level == sas_store::window::Level::Hour && r.key.start == 0));
}

#[test]
fn policy_budget_clamps_ingest_merges_per_kind() {
    let dir = TempDir::new("budget-clamp");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store
        .set_policy(
            "web",
            Policy {
                per_kind_budget: [(SummaryKind::Sample.tag(), 8)].into_iter().collect(),
                ..Policy::default()
            },
        )
        .unwrap();
    // Two 32-row batches into the same minute for each dataset: the merge
    // clamps "web" to its policy budget; "free" keeps every row.
    for ds in ["web", "free"] {
        store.ingest(ds, 0, batch(0, 32, 1)).unwrap();
        store.ingest(ds, 10, batch(100, 32, 2)).unwrap();
    }
    let items = |ds: &str| {
        store
            .list()
            .iter()
            .find(|r| r.key.dataset == ds)
            .unwrap()
            .items
    };
    assert_eq!(items("web"), 8);
    assert_eq!(items("free"), 64);
}

#[test]
fn lifecycle_tick_expires_before_it_seals() {
    let dir = TempDir::new("tick-order");
    let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
    store.set_policy("web", ttl(120)).unwrap();
    // Hour 0 complete plus minutes 3600 and 3660: watermark 3720. Every
    // minute ending ≤3600 is expired; a compaction-first tick would have
    // sealed them into an hour window instead.
    for start in (0..3720).step_by(60) {
        store.ingest("web", start, batch(start, 4, start)).unwrap();
    }
    let stats = store.lifecycle_tick().unwrap();
    assert_eq!(stats.expired, 60);
    assert_eq!(stats.rollups, 0, "expired minutes must not be sealed");
    let rows = store.list();
    assert_eq!(rows.len(), 2);
    assert!(rows
        .iter()
        .all(|r| r.key.level == sas_store::window::Level::Minute && r.key.start >= 3600));
}

/// Retention-then-recovery must equal recovery-then-retention, bit for bit,
/// across 30 seeded ingest histories: the pass is a pure function of the
/// persisted state (watermarks, floors, policies), never of process
/// lifetime. Compares the *entire* store directory — manifest and frames.
#[test]
fn retention_commutes_with_recovery_across_30_seeds() {
    for seed in 0u64..30 {
        let minutes = 3 + seed % 6;
        let ttl_ticks = 60 * (1 + seed % 3);
        let datasets: &[&str] = if seed % 2 == 0 {
            &["web"]
        } else {
            &["web", "app"]
        };
        let run = |retain_before_reopen: bool| -> BTreeMap<String, Vec<u8>> {
            let dir = TempDir::new(&format!("commute-{seed}-{retain_before_reopen}"));
            {
                let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
                for ds in datasets {
                    store.set_policy(ds, ttl(ttl_ticks)).unwrap();
                    for i in 0..minutes {
                        let start = i * 60;
                        store
                            .ingest(ds, start, batch(start, 5 + seed % 4, seed ^ start))
                            .unwrap();
                    }
                }
                if retain_before_reopen {
                    store.retain_once().unwrap();
                }
            }
            let store = Store::open(dir.path(), StoreConfig::default()).unwrap();
            if !retain_before_reopen {
                store.retain_once().unwrap();
            }
            // Queries after either order agree too (cheap sanity on top of
            // the byte compare).
            let _ = store.estimate("web", SummaryKind::Sample, &Query::Total, 0.95, None);
            dir_bytes(dir.path())
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(
            a.keys().collect::<Vec<_>>(),
            b.keys().collect::<Vec<_>>(),
            "seed {seed}: surviving files differ"
        );
        for (path, bytes) in &a {
            assert_eq!(
                bytes, &b[path],
                "seed {seed}: {path} differs between retention orders"
            );
        }
    }
}
