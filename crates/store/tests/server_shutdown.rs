//! Shutdown behaviour: a daemon asked to stop — over the wire or through
//! the API — answers what it owes, closes every connection at a frame
//! boundary (never mid-frame), and joins its threads. The torn-frame
//! detector in [`util::recv_message`] is what every test here leans on.

mod util;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use sas_codec::proto;
use sas_store::client::Client;
use sas_store::server::ServerConfig;
use sas_store::wire::{decode_response, Request, Response};

use util::{message, recv_message, recv_response, start, wait_closed, Recv};

#[test]
fn wire_shutdown_is_answered_then_closed_at_a_boundary() {
    let (_dir, _store, server) = start("shutdown-wire", ServerConfig::default());
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&message(&Request::Shutdown)).unwrap();
    // The requester gets its acknowledgement…
    assert!(matches!(
        recv_response(&mut stream, proto::REQ_SHUTDOWN),
        Response::Shutdown
    ));
    // …then a clean EOF: exactly at a message boundary, never torn.
    match recv_message(&mut stream) {
        Recv::Eof => {}
        other => panic!("expected clean EOF after shutdown ack, got {other:?}"),
    }
    server.wait();
    // The listener is gone with the loop: new connects are refused.
    assert!(TcpStream::connect(addr).is_err());
}

#[test]
fn blocking_client_shutdown_round_trips() {
    let (_dir, _store, server) = start("shutdown-client", ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn api_shutdown_closes_idle_connections_promptly() {
    let (_dir, _store, server) = start("shutdown-idle", ServerConfig::default());
    let addr = server.local_addr();
    let mut a = TcpStream::connect(addr).unwrap();
    let mut b = TcpStream::connect(addr).unwrap();
    // Both are registered before we pull the plug.
    a.write_all(&message(&Request::Ping)).unwrap();
    b.write_all(&message(&Request::Ping)).unwrap();
    assert!(matches!(
        recv_response(&mut a, proto::REQ_PING),
        Response::Pong
    ));
    assert!(matches!(
        recv_response(&mut b, proto::REQ_PING),
        Response::Pong
    ));
    server.shutdown();
    // Idle connections owe nothing: they close well inside the grace
    // period, not at its expiry.
    wait_closed(&mut a, "idle conn a");
    wait_closed(&mut b, "idle conn b");
    server.wait();
}

#[test]
fn shutdown_during_pipelined_burst_yields_only_whole_frames() {
    // The hard case: shutdown lands while a burst is mid-flight. The peer
    // may see fewer responses than requests — but every frame it does see
    // must be complete, and the close must land on a boundary.
    let (_dir, _store, server) = start(
        "shutdown-burst",
        ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    const N: usize = 64;
    let mut burst = Vec::new();
    for _ in 0..N {
        burst.extend_from_slice(&message(&Request::Stats));
    }
    stream.write_all(&burst).unwrap();
    // Let the burst get going, then pull the plug mid-stream.
    let first = match recv_message(&mut stream) {
        Recv::Message(m) => m,
        other => panic!("expected the first response, got {other:?}"),
    };
    assert!(matches!(
        decode_response(&first, proto::REQ_STATS),
        Ok(Response::Stats(_))
    ));
    server.shutdown();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut answered = 1;
    loop {
        match recv_message(&mut stream) {
            Recv::Message(frame) => {
                // Whole frames only, and each one decodes.
                assert!(matches!(
                    decode_response(&frame, proto::REQ_STATS),
                    Ok(Response::Stats(_))
                ));
                answered += 1;
            }
            Recv::Eof => break,
            Recv::Torn => panic!("shutdown tore a frame after {answered} responses"),
        }
    }
    assert!(
        answered <= N,
        "more responses ({answered}) than requests ({N})"
    );
    server.wait();
}

#[test]
fn shutdown_is_idempotent() {
    let (_dir, _store, server) = start("shutdown-twice", ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&message(&Request::Ping)).unwrap();
    assert!(matches!(
        recv_response(&mut stream, proto::REQ_PING),
        Response::Pong
    ));
    server.shutdown();
    server.shutdown(); // second ask is a no-op, not a panic
    wait_closed(&mut stream, "conn across double shutdown");
    server.wait();
}
