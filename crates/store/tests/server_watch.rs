//! Live watch subscriptions and lifecycle over the daemon protocol:
//! registrations answered with ids, every sealed ingest pushing an update
//! that matches what polling would have returned, the idle reaper sparing
//! subscriber connections (and only them), the per-connection watch cap,
//! policies round-tripping over the wire, and the event-loop timer driving
//! retention without any client asking for it.

mod util;

use std::net::TcpStream;
use std::time::Duration;

use sas_store::client::{Client, ClientError};
use sas_store::policy::Policy;
use sas_store::server::ServerConfig;
use sas_summaries::{Query, SummaryKind};
use util::{batch_frame, start, wait_closed, wait_metrics};

fn sample_ttl(ticks: u64) -> Policy {
    Policy {
        retention_ttl: Some(ticks),
        ..Policy::default()
    }
}

#[test]
fn every_ingest_pushes_an_update_matching_the_polled_answer() {
    let (_dir, _store, server) = start("watch-push", ServerConfig::default());
    let mut watcher = Client::connect(server.local_addr()).unwrap();
    let mut feeder = Client::connect(server.local_addr()).unwrap();

    let watch_id = watcher
        .watch("web", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();

    let mut versions = Vec::new();
    let mut last = None;
    for i in 0..3u64 {
        feeder
            .ingest("web", i * 60, batch_frame(i * 100, 20, i))
            .unwrap();
        let update = watcher.next_update().unwrap();
        assert_eq!(update.watch_id, watch_id);
        versions.push(update.version);
        last = Some(update);
    }
    assert!(
        versions.windows(2).all(|w| w[0] < w[1]),
        "push versions not increasing: {versions:?}"
    );

    // The final push must be bit-identical to polling the same canonical
    // query: same estimate, same window count, same coverage.
    let last = last.unwrap();
    let polled = feeder
        .estimate_cov("web", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();
    assert_eq!(last.estimate, polled.estimate);
    assert_eq!(last.windows, polled.windows);
    assert_eq!(last.coverage, polled.coverage);
}

#[test]
fn watching_an_empty_dataset_is_legal_and_wakes_on_first_ingest() {
    let (_dir, _store, server) = start("watch-empty", ServerConfig::default());
    let mut watcher = Client::connect(server.local_addr()).unwrap();
    watcher
        .watch("later", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();
    let mut feeder = Client::connect(server.local_addr()).unwrap();
    feeder.ingest("later", 0, batch_frame(0, 10, 7)).unwrap();
    let update = watcher.next_update().unwrap();
    assert!(update.estimate.value > 0.0);
}

#[test]
fn idle_reaper_spares_subscribers_but_still_reaps_plain_conns() {
    let (_dir, _store, server) = start(
        "watch-idle",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    );
    // A subscriber and a plain connection, both idle.
    let mut watcher = Client::connect(server.local_addr()).unwrap();
    watcher
        .watch("web", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();
    let mut plain = TcpStream::connect(server.local_addr()).unwrap();

    // Regression: the watch exemption must not leak to ordinary idle
    // connections — the reaper still closes the plain one.
    wait_metrics(&server, "idle timeout", |m| m.idle_timeouts >= 1);
    wait_closed(&mut plain, "idle plain connection");

    // The subscriber outlived many idle periods and still gets its push.
    std::thread::sleep(Duration::from_millis(400));
    let mut feeder = Client::connect(server.local_addr()).unwrap();
    feeder.ingest("web", 0, batch_frame(0, 10, 1)).unwrap();
    let update = watcher.next_update().expect("watch conn was reaped");
    assert!(update.windows >= 1);
}

#[test]
fn watch_cap_rejects_registrations_beyond_the_limit() {
    let (_dir, _store, server) = start(
        "watch-cap",
        ServerConfig {
            max_watches_per_conn: 2,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    let a = client
        .watch("web", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();
    let b = client
        .watch(
            "web",
            SummaryKind::Sample,
            &Query::interval(0, 100),
            0.95,
            None,
        )
        .unwrap();
    assert_ne!(a, b, "watch ids must be distinct");
    match client.watch("web", SummaryKind::Sample, &Query::Total, 0.9, None) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("watch limit"), "unexpected message: {msg}")
        }
        other => panic!("third watch should hit the cap: {other:?}"),
    }
    // The cap is per connection, not global.
    let mut other = Client::connect(server.local_addr()).unwrap();
    other
        .watch("web", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();
}

#[test]
fn watch_registration_validates_the_query() {
    let (_dir, _store, server) = start("watch-invalid", ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.watch("no/slashes", SummaryKind::Sample, &Query::Total, 0.95, None) {
        Err(ClientError::Server(_)) => {}
        other => panic!("invalid dataset should be refused: {other:?}"),
    }
    // The failed registration must not count against the cap or leave a
    // half-registered watch behind: a valid one still works.
    client
        .watch("web", SummaryKind::Sample, &Query::Total, 0.95, None)
        .unwrap();
}

#[test]
fn policies_round_trip_over_the_wire() {
    let (_dir, store, server) = start("watch-policy", ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let policy = Policy {
        compact_after: Some(60),
        retention_ttl: Some(7200),
        per_kind_budget: [(SummaryKind::Sample.tag(), 32)].into_iter().collect(),
    };
    client.set_policy("web", policy.clone()).unwrap();
    client.set_policy("app", sample_ttl(60)).unwrap();

    assert_eq!(
        client.policies(None).unwrap(),
        vec![
            ("app".into(), sample_ttl(60)),
            ("web".into(), policy.clone())
        ]
    );
    assert_eq!(
        client.policies(Some("web")).unwrap(),
        vec![("web".into(), policy.clone())]
    );
    assert_eq!(client.policies(Some("ghost")).unwrap(), vec![]);
    // The daemon persisted what it acknowledged.
    assert_eq!(store.policy("web"), Some(policy));

    // An empty policy clears the entry.
    client.set_policy("app", Policy::default()).unwrap();
    assert_eq!(client.policies(Some("app")).unwrap(), vec![]);
}

#[test]
fn lifecycle_timer_expires_windows_without_any_client_driving_it() {
    let (_dir, store, server) = start(
        "watch-lifecycle",
        ServerConfig {
            lifecycle_every: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_policy("web", sample_ttl(60)).unwrap();
    for i in 0..5u64 {
        client
            .ingest("web", i * 60, batch_frame(i * 10, 10, i))
            .unwrap();
    }
    // Watermark 300, TTL 60: minutes ending ≤240 expire. The timer alone
    // must get there — no retain/compact request exists in the protocol.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = store.stats();
        let get = |k: &str| stats.iter().find(|(n, _)| n == k).unwrap().1;
        if get("expired_windows") >= 4 && get("windows") == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "lifecycle timer never expired the windows: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(server);
}

#[test]
fn coverage_estimates_answer_over_the_wire() {
    let (_dir, _store, server) = start("watch-cov", ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ingest("web", 0, batch_frame(0, 10, 1)).unwrap();
    client.ingest("web", 120, batch_frame(100, 10, 2)).unwrap();
    let ans = client
        .estimate_cov(
            "web",
            SummaryKind::Sample,
            &Query::Total,
            0.95,
            Some((0, 179)),
        )
        .unwrap();
    assert_eq!(ans.windows, 2);
    // The hole between the two minutes is a missing (not expired) gap.
    assert_eq!(ans.coverage.gaps.len(), 1);
    let gap = &ans.coverage.gaps[0];
    assert_eq!((gap.start, gap.end, gap.expired), (60, 119, false));
    // The plain estimate agrees with the coverage-aware one.
    let plain = client
        .estimate(
            "web",
            SummaryKind::Sample,
            &Query::Total,
            0.95,
            Some((0, 179)),
        )
        .unwrap();
    assert_eq!(plain.estimate, ans.estimate);
}
