//! The zero-copy cached-estimate path: repeated identical estimates must
//! come back byte-identical (the shared message), flip to `cached = true`
//! after the first answer, and revert to fresh answers the moment an
//! ingest bumps the snapshot version.

mod util;

use std::io::Write;
use std::net::TcpStream;

use sas_store::client::Client;
use sas_store::server::ServerConfig;
use sas_summaries::{Query, SummaryKind};

use sas_store::wire::{Request, Response};
use util::{batch, batch_frame, message, recv_response, start};

fn estimate_req() -> Request {
    Request::Estimate {
        dataset: "web".into(),
        kind: SummaryKind::Sample,
        query: Query::interval(0, 500),
        confidence: 0.95,
        time: None,
    }
}

#[test]
fn repeated_estimates_share_one_cached_message() {
    let (_dir, store, server) = start("estimate-cache", ServerConfig::default());
    store.ingest("web", 5, batch(0, 100, 1)).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // First answer computes; every repeat is a cache hit and the responses
    // are byte-identical to each other (one shared encode).
    stream.write_all(&message(&estimate_req())).unwrap();
    let first = recv_response(&mut stream, sas_codec::proto::REQ_ESTIMATE);
    let Response::Estimate { cached: false, .. } = &first else {
        panic!("expected a fresh estimate, got {first:?}");
    };
    let mut repeats = Vec::new();
    for _ in 0..3 {
        stream.write_all(&message(&estimate_req())).unwrap();
        repeats.push(recv_response(&mut stream, sas_codec::proto::REQ_ESTIMATE));
    }
    for r in &repeats {
        let Response::Estimate {
            estimate,
            windows,
            cached,
        } = r
        else {
            panic!("expected an estimate, got {r:?}");
        };
        assert!(*cached, "repeat answers come from the cache");
        assert_eq!(*windows, 1);
        let Response::Estimate {
            estimate: fresh, ..
        } = &first
        else {
            unreachable!()
        };
        assert_eq!(estimate.value.to_bits(), fresh.value.to_bits());
        assert_eq!(estimate.lower.to_bits(), fresh.lower.to_bits());
        assert_eq!(estimate.upper.to_bits(), fresh.upper.to_bits());
    }
    server.shutdown();
    server.wait();
}

#[test]
fn ingest_invalidates_the_cached_message() {
    let (_dir, store, server) = start("estimate-invalidate", ServerConfig::default());
    store.ingest("web", 5, batch(0, 100, 1)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = Query::interval(0, 500);
    let a = client
        .estimate("web", SummaryKind::Sample, &q, 0.95, None)
        .unwrap();
    assert!(!a.cached);
    let b = client
        .estimate("web", SummaryKind::Sample, &q, 0.95, None)
        .unwrap();
    assert!(b.cached);
    assert_eq!(b.estimate.value.to_bits(), a.estimate.value.to_bits());
    // New data: the snapshot version bumps, so the shared message may not
    // be served again.
    client.ingest("web", 6, batch_frame(100, 50, 2)).unwrap();
    let c = client
        .estimate("web", SummaryKind::Sample, &q, 0.95, None)
        .unwrap();
    assert!(!c.cached, "version bump must invalidate");
    assert!(c.estimate.value > a.estimate.value);
    let d = client
        .estimate("web", SummaryKind::Sample, &q, 0.95, None)
        .unwrap();
    assert!(d.cached);
    assert_eq!(d.estimate.value.to_bits(), c.estimate.value.to_bits());
    server.shutdown();
    server.wait();
}

#[test]
fn distinct_queries_do_not_collide_in_the_message_cache() {
    let (_dir, store, server) = start("estimate-distinct", ServerConfig::default());
    store.ingest("web", 5, batch(0, 100, 1)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let narrow = Query::interval(0, 10);
    let wide = Query::interval(0, 500);
    // Warm both so both are served from the cache, then interleave.
    for q in [&narrow, &wide, &narrow, &wide] {
        client
            .estimate("web", SummaryKind::Sample, q, 0.95, None)
            .unwrap();
    }
    let n = client
        .estimate("web", SummaryKind::Sample, &narrow, 0.95, None)
        .unwrap();
    let w = client
        .estimate("web", SummaryKind::Sample, &wide, 0.95, None)
        .unwrap();
    assert!(n.cached && w.cached);
    assert!(
        n.estimate.value < w.estimate.value,
        "each query keeps its own cached message"
    );
    // Different confidence is a different cache entry too.
    let w99 = client
        .estimate("web", SummaryKind::Sample, &wide, 0.99, None)
        .unwrap();
    assert_eq!(w99.estimate.value.to_bits(), w.estimate.value.to_bits());
    server.shutdown();
    server.wait();
}
