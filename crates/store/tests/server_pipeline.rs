//! Pipelining conformance: many requests written before any response is
//! read must come back exactly in request order, and byte-identical to the
//! same requests issued one at a time.

mod util;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use sas_codec::proto;
use sas_store::server::ServerConfig;
use sas_store::wire::{decode_response, Request, Response};
use sas_summaries::{Query, SummaryKind};

use util::{batch_frame, message, recv_message, recv_response, start, Recv};

/// The mixed ingest/query/estimate/list/stats/ping workload both modes
/// run. Ingests use fixed seeds, so every response byte is deterministic.
fn workload() -> Vec<Request> {
    let mut reqs = Vec::new();
    for i in 0..4u64 {
        reqs.push(Request::Ingest {
            dataset: "web".into(),
            ts: 61 + i * 60,
            frame: batch_frame(i * 100, 50, i),
        });
        reqs.push(Request::Ping);
        reqs.push(Request::Query {
            dataset: "web".into(),
            kind: SummaryKind::Sample,
            range: vec![(0, u64::MAX)],
            time: None,
        });
        reqs.push(Request::Estimate {
            dataset: "web".into(),
            kind: SummaryKind::Sample,
            query: Query::Total,
            confidence: 0.95,
            time: None,
        });
    }
    reqs.push(Request::List);
    reqs.push(Request::Stats);
    reqs
}

/// One worker thread serializes execution in dispatch order, which is what
/// makes the two modes byte-comparable (counters, cache flags).
fn single_worker() -> ServerConfig {
    ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    }
}

fn recv_raw(stream: &mut TcpStream) -> Vec<u8> {
    match recv_message(stream) {
        Recv::Message(m) => m,
        other => panic!("expected a message, got {other:?}"),
    }
}

#[test]
fn pipelined_responses_match_sequential_byte_for_byte() {
    let reqs = workload();

    // Sequential: write one, read one.
    let (_dir_a, _store_a, seq_server) = start("pipeline-seq", single_worker());
    let mut seq_stream = TcpStream::connect(seq_server.local_addr()).unwrap();
    let mut sequential = Vec::new();
    for req in &reqs {
        seq_stream.write_all(&message(req)).unwrap();
        sequential.push(recv_raw(&mut seq_stream));
    }

    // Pipelined: write everything, then read everything.
    let (_dir_b, _store_b, pipe_server) = start("pipeline-burst", single_worker());
    let mut pipe_stream = TcpStream::connect(pipe_server.local_addr()).unwrap();
    let mut burst = Vec::new();
    for req in &reqs {
        burst.extend_from_slice(&message(req));
    }
    pipe_stream.write_all(&burst).unwrap();
    let pipelined: Vec<Vec<u8>> = reqs.iter().map(|_| recv_raw(&mut pipe_stream)).collect();

    assert_eq!(sequential.len(), pipelined.len());
    for (i, (s, p)) in sequential.iter().zip(&pipelined).enumerate() {
        assert_eq!(s, p, "response {i} ({:?}) differs between modes", reqs[i]);
    }

    seq_server.shutdown();
    seq_server.wait();
    pipe_server.shutdown();
    pipe_server.wait();
}

#[test]
fn responses_keep_request_order_across_worker_and_inline_paths() {
    // Four workers, and a workload alternating slow worker requests
    // (ingest) with instant inline ones (ping): an inline answer must
    // still wait its turn behind the ingest dispatched before it.
    let (_dir, _store, server) = start(
        "pipeline-order",
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut burst = Vec::new();
    let mut expect: Vec<&'static str> = Vec::new();
    for i in 0..16u64 {
        burst.extend_from_slice(&message(&Request::Ingest {
            dataset: "web".into(),
            ts: 61,
            frame: batch_frame(i * 50, 40, i),
        }));
        expect.push("ingest");
        burst.extend_from_slice(&message(&Request::Ping));
        expect.push("pong");
    }
    stream.write_all(&burst).unwrap();
    for (i, want) in expect.iter().enumerate() {
        // Ingest responses decode under REQ_INGEST; pongs under REQ_PING.
        let frame = recv_raw(&mut stream);
        let tag = if *want == "ingest" {
            proto::REQ_INGEST
        } else {
            proto::REQ_PING
        };
        match (decode_response(&frame, tag), *want) {
            (Ok(Response::Ingest { .. }), "ingest") => {}
            (Ok(Response::Pong), "pong") => {}
            (got, _) => panic!("response {i}: expected {want}, got {got:?}"),
        }
    }
    server.shutdown();
    server.wait();
}

#[test]
fn pipeline_depth_limit_parks_reads_without_losing_requests() {
    // A tiny in-flight cap: the loop stops reading the connection when
    // full, resumes as workers drain, and every request still gets its
    // answer in order.
    let (_dir, _store, server) = start(
        "pipeline-depth",
        ServerConfig {
            threads: 2,
            max_pipeline: 4,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    const N: usize = 64;
    let mut burst = Vec::new();
    for _ in 0..N {
        burst.extend_from_slice(&message(&Request::Stats));
    }
    stream.write_all(&burst).unwrap();
    for i in 0..N {
        match recv_response(&mut stream, proto::REQ_STATS) {
            Response::Stats(pairs) => assert!(!pairs.is_empty(), "response {i}"),
            other => panic!("response {i}: {other:?}"),
        }
    }
    server.shutdown();
    server.wait();
}

#[test]
fn interleaved_connections_do_not_cross_responses() {
    // Two pipelining connections against one daemon: each must see its own
    // responses, in its own order. Different ranges make any cross-wiring
    // visible in the values.
    let (_dir, _store, server) = start("pipeline-two-conns", single_worker());
    let addr = server.local_addr();
    let mut setup = TcpStream::connect(addr).unwrap();
    setup
        .write_all(&message(&Request::Ingest {
            dataset: "web".into(),
            ts: 61,
            frame: batch_frame(0, 100, 7),
        }))
        .unwrap();
    assert!(matches!(
        recv_response(&mut setup, proto::REQ_INGEST),
        Response::Ingest { .. }
    ));

    let queries: Vec<(u64, u64)> = vec![(0, 9), (10, 29), (30, 99), (0, u64::MAX)];
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut burst = Vec::new();
                for &(lo, hi) in &queries {
                    burst.extend_from_slice(&message(&Request::Query {
                        dataset: "web".into(),
                        kind: SummaryKind::Sample,
                        range: vec![(lo, hi)],
                        time: None,
                    }));
                }
                stream.write_all(&burst).unwrap();
                queries
                    .iter()
                    .map(|_| match recv_response(&mut stream, proto::REQ_QUERY) {
                        Response::Query { value, .. } => value,
                        other => panic!("{other:?}"),
                    })
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    let answers: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Exact batch: per-range truths are exact sums.
    let truth = |lo: u64, hi: u64| -> f64 { (lo..=hi.min(99)).map(|k| 1.0 + (k % 7) as f64).sum() };
    for (c, got) in answers.iter().enumerate() {
        for (i, (&(lo, hi), &v)) in queries.iter().zip(got).enumerate() {
            assert_eq!(v, truth(lo, hi), "conn {c} query {i} ({lo}..{hi})");
        }
    }
    server.shutdown();
    server.wait();
}

#[test]
fn burst_larger_than_one_read_quantum_survives() {
    // A single write far larger than the loop's 64 KiB per-event read
    // budget: fairness slicing must not drop or reorder anything.
    let (_dir, _store, server) = start("pipeline-quantum", single_worker());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Each ingest message carries a few KiB of frame, so ~200 of them far
    // exceed one quantum.
    const N: u64 = 200;
    let mut burst = Vec::new();
    for i in 0..N {
        burst.extend_from_slice(&message(&Request::Ingest {
            dataset: "web".into(),
            ts: 61 + (i % 5) * 60,
            frame: batch_frame(i * 64, 64, i),
        }));
    }
    assert!(burst.len() > 128 * 1024, "burst must exceed the quantum");
    // Write on one half, read on a clone: draining responses while the
    // burst is still going out avoids deadlocking on full buffers.
    let mut reader = stream.try_clone().unwrap();
    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let writer = std::thread::spawn(move || stream.write_all(&burst).unwrap());
    let mut items_last = 0;
    for i in 0..N {
        match recv_response(&mut reader, proto::REQ_INGEST) {
            Response::Ingest { items, .. } => items_last = items.max(items_last),
            other => panic!("response {i}: {other:?}"),
        }
    }
    writer.join().unwrap();
    assert!(items_last > 0);
    server.shutdown();
    server.wait();
}
