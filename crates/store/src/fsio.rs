//! Crash-safe file persistence: every frame (window, manifest, or CLI
//! `--out`) is written to a temp file in the destination directory and
//! atomically `rename`d into place, so a reader can never observe a torn
//! frame — it sees either the old bytes or the new bytes, completely.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Infix marking an in-flight temp file; anything containing it is garbage
/// left by a crash and is swept by [`remove_temp_files`].
pub const TEMP_INFIX: &str = ".tmp-";

/// Writes `bytes` to `path` atomically: temp file in the same directory
/// (rename is only atomic within a filesystem), flushed and fsync'd, then
/// renamed over the destination. Parent directories are created as needed.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    let mut temp_name = file_name;
    temp_name.push(format!("{TEMP_INFIX}{}-{id}", std::process::id()));
    let temp_path = path.with_file_name(temp_name);
    let result = (|| {
        let mut f = fs::File::create(&temp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&temp_path, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&temp_path);
    }
    result
}

/// Recursively removes leftover temp files under `dir` (crash debris).
/// Returns how many were swept.
pub fn remove_temp_files(dir: &Path) -> io::Result<u64> {
    let mut removed = 0;
    for path in walk_files(dir)? {
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains(TEMP_INFIX))
        {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// All regular files under `dir`, recursively, in sorted order (so every
/// directory scan in the store is deterministic).
pub fn walk_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sas-fsio-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_creates_parents_and_replaces() {
        let dir = temp_dir("basic");
        let path = dir.join("a/b/frame.sas");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        // No temp debris left behind.
        assert_eq!(remove_temp_files(&dir).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_debris_is_swept_and_never_tears_the_original() {
        let dir = temp_dir("debris");
        let path = dir.join("frame.sas");
        write_atomic(&path, b"intact").unwrap();
        // Simulate a crash mid-write: a truncated temp file next to the
        // destination, never renamed.
        let torn = dir.join(format!("frame.sas{TEMP_INFIX}999-0"));
        fs::write(&torn, b"in").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"intact", "original untouched");
        assert_eq!(remove_temp_files(&dir).unwrap(), 1);
        assert!(!torn.exists());
        assert_eq!(fs::read(&path).unwrap(), b"intact");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn walk_is_recursive_and_sorted() {
        let dir = temp_dir("walk");
        fs::create_dir_all(dir.join("z")).unwrap();
        fs::write(dir.join("z/2.sas"), b"x").unwrap();
        fs::write(dir.join("1.sas"), b"x").unwrap();
        let files = walk_files(&dir).unwrap();
        assert_eq!(
            files,
            vec![dir.join("1.sas"), dir.join("z/2.sas")],
            "sorted, recursive"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
