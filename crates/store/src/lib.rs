//! # sas-store — a concurrent, persistent catalog of summary windows
//!
//! The paper's summaries are mergeable and persistable (PR 2/PR 3); this
//! crate turns those two properties into a long-running system: a catalog
//! keyed by `(dataset, kind, time-window)` that ingests batches while
//! serving range queries from consistent snapshots, in the spirit of
//! continuously-aggregated sketch stores.
//!
//! ## Architecture
//!
//! * **Windowed ingest** — every batch is an erased
//!   [`Summary`](sas_summaries::Summary) that lands in the minute window
//!   containing its timestamp, merged through the same type-erased
//!   `merge_in_place` that `sas merge` uses.
//! * **Snapshot-swapped reads** — the whole catalog lives in one immutable
//!   [`Snapshot`] behind an `Arc`. Readers clone the `Arc` (a refcount
//!   bump under a briefly-held read lock) and then query entirely
//!   lock-free; writers build the next snapshot on the side and swap it in.
//!   An LRU [`QueryCache`](cache::QueryCache) keyed by snapshot version
//!   memoizes hot range queries and can never serve a stale answer.
//! * **Merge-tree compaction** — a background pass rolls sealed minute
//!   windows into hours and hours into days with
//!   [`sas_summaries::merge_tree`] under a per-window deterministic seed,
//!   so a compacted window is **bit-identical** to an offline rebuild of
//!   its children ([`rebuild_parent`]).
//! * **Crash-safe persistence** — every window is a `sas-codec` frame
//!   written via temp-file + `rename` ([`fsio::write_atomic`]), referenced
//!   by an atomically-rewritten [`Manifest`](manifest::Manifest). Restart
//!   recovery replays the manifest and sweeps crash debris.
//!
//! The TCP daemon (`sas serve`) and its client live in [`server`] and
//! [`client`]; the wire messages in [`wire`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod conn;
pub mod fsio;
pub mod manifest;
pub mod mapped;
pub mod policy;
pub mod poller;
pub mod server;
pub mod window;
pub mod wire;

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_obs::{
    slog, Counter as ObsCounter, Histogram as ObsHistogram, Level as LogLevel, Registry,
};

use sas_codec::segment::is_segment;
use sas_codec::CodecError;
use sas_summaries::{
    decode_summaries, encode_segment, encode_summary, merge_tree_with, Estimate, MergeArena, Query,
    QueryError, SegmentSummary, Summary, SummaryError, SummaryKind,
};

use cache::{CacheKey, CachedAnswer, QueryCache, PLAIN_CONFIDENCE};
use manifest::{Manifest, ManifestEntry};
use policy::{Coverage, Policy};
use window::{valid_dataset, window_seed, Level, WindowKey};

/// File name of the store manifest inside the store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.sas";

/// Tuning knobs for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Size budget applied to every window merge (ingest and compaction).
    /// Sample-based kinds re-subsample down to it; deterministic kinds
    /// ignore it. `None` lets windows grow by concatenation.
    pub budget: Option<usize>,
    /// Capacity of the LRU query cache (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            budget: None,
            cache_capacity: 1024,
        }
    }
}

/// Everything that can go wrong inside the store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure, annotated with the path involved.
    Io(PathBuf, io::Error),
    /// A frame or manifest failed to decode.
    Codec(CodecError),
    /// A summary merge was rejected.
    Summary(SummaryError),
    /// The caller's request is invalid (bad dataset name, kind mismatch…).
    BadRequest(String),
    /// An ingest landed below the compaction floor: its minute window was
    /// already rolled up and the roll-up is immutable.
    Stale {
        /// The minute window the batch would have landed in.
        key: WindowKey,
        /// First tick still accepting ingest for the series.
        floor: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            StoreError::Codec(e) => write!(f, "{e}"),
            StoreError::Summary(e) => write!(f, "{e}"),
            StoreError::BadRequest(msg) => write!(f, "{msg}"),
            StoreError::Stale { key, floor } => write!(
                f,
                "window {key} was already compacted (series accepts ticks >= {floor})"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<SummaryError> for StoreError {
    fn from(e: SummaryError) -> Self {
        StoreError::Summary(e)
    }
}

/// One immutable window: its coordinate, its summary, and its write state.
#[derive(Debug)]
pub struct WindowState {
    /// Catalog coordinate.
    pub key: WindowKey,
    /// The window's summary.
    pub summary: Box<dyn Summary>,
    /// Batches merged in so far.
    pub batches: u64,
    /// Size of the persisted frame in bytes.
    pub frame_bytes: u64,
}

/// An immutable, internally consistent view of the whole catalog. Cheap to
/// clone (`Arc` per window); readers hold it for as long as they like while
/// writers publish newer versions.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonic version, bumped by every mutation.
    pub version: u64,
    /// All windows in key order.
    pub windows: BTreeMap<WindowKey, Arc<WindowState>>,
    /// Retention floors per `(dataset, kind tag)` series: the largest
    /// window end retention has dropped. Lets gap-aware answers classify
    /// uncovered spans as *expired* (below the floor) vs *missing*.
    pub retention_floors: BTreeMap<(String, u16), u64>,
}

impl Snapshot {
    /// The windows a query over `(dataset, kind, time)` consults, in key
    /// order.
    pub fn matching(
        &self,
        dataset: &str,
        kind: SummaryKind,
        time: Option<(u64, u64)>,
    ) -> Vec<Arc<WindowState>> {
        self.windows
            .values()
            .filter(|w| {
                w.key.dataset == dataset
                    && w.key.kind == kind
                    && time.is_none_or(|(t0, t1)| w.key.overlaps(t0, t1))
            })
            .cloned()
            .collect()
    }

    /// Directly computes a range query against this snapshot (no cache):
    /// the sum of every matching window's estimate. Returns the value and
    /// the number of windows consulted.
    pub fn query(
        &self,
        dataset: &str,
        kind: SummaryKind,
        range: &[(u64, u64)],
        time: Option<(u64, u64)>,
    ) -> (f64, u64) {
        let windows = self.matching(dataset, kind, time);
        let value: f64 = windows.iter().map(|w| w.summary.range_sum(range)).sum();
        // f64's empty-sum identity is -0.0; serve a plain 0 instead.
        (value + 0.0, windows.len() as u64)
    }

    /// Directly computes a query estimate against this snapshot (no
    /// cache): values, variances, and bounds add across the matching
    /// windows (disjoint data). The requested failure probability is split
    /// across the windows (each answers at `1 − δ/k`), so by the union
    /// bound the summed interval holds at the requested confidence. The
    /// value accumulates in the same window order as [`Snapshot::query`],
    /// so old-tag and new-tag clients see bit-identical values.
    pub fn estimate(
        &self,
        dataset: &str,
        kind: SummaryKind,
        query: &Query,
        confidence: f64,
        time: Option<(u64, u64)>,
    ) -> Result<(Estimate, u64), QueryError> {
        let windows = self.matching(dataset, kind, time);
        if windows.is_empty() {
            return Ok((Estimate::exact(0.0), 0));
        }
        let per_window = 1.0 - (1.0 - confidence) / windows.len() as f64;
        let mut acc = Estimate::exact(0.0);
        for w in &windows {
            acc.merge_disjoint(&w.summary.answer(query, per_window)?);
        }
        if acc.confidence < 1.0 {
            // At least one window answered probabilistically; the union
            // bound over the δ/k splits certifies the requested level.
            acc.confidence = confidence;
        }
        Ok((acc, windows.len() as u64))
    }

    /// Gap report for a series over the query time filter: which stretches
    /// of the requested span no window covered, and whether each was
    /// expired by retention or simply never ingested. Computed against the
    /// same snapshot as the answer it accompanies, so the two can never
    /// disagree about which windows exist.
    pub fn coverage(&self, dataset: &str, kind: SummaryKind, time: Option<(u64, u64)>) -> Coverage {
        let spans: Vec<(u64, u64)> = self
            .windows
            .values()
            .filter(|w| w.key.dataset == dataset && w.key.kind == kind)
            .map(|w| (w.key.start, w.key.end()))
            .collect();
        let floor = self
            .retention_floors
            .get(&(dataset.to_string(), kind.tag()))
            .copied()
            .unwrap_or(0);
        Coverage::compute(&spans, time, floor)
    }
}

/// A range-query answer from [`Store::query`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// The estimate.
    pub value: f64,
    /// Windows consulted.
    pub windows: u64,
    /// Whether the value came from the LRU cache.
    pub cached: bool,
    /// Snapshot version answered against.
    pub version: u64,
}

/// A query answer with error bounds, from [`Store::estimate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateAnswer {
    /// The estimate with its bounds.
    pub estimate: Estimate,
    /// Windows consulted.
    pub windows: u64,
    /// Whether the answer came from the LRU cache.
    pub cached: bool,
    /// Snapshot version answered against.
    pub version: u64,
}

/// Per-series mutable writer state (watermarks drive compaction sealing,
/// floors reject writes into already-compacted history).
#[derive(Debug, Default)]
struct WriterState {
    /// Highest ingested tick's window end, per `(dataset, kind tag)`.
    watermarks: HashMap<(String, u16), u64>,
    /// First tick still accepting ingest, per `(dataset, kind tag)`.
    floors: HashMap<(String, u16), u64>,
    /// Installed lifecycle policies, persisted in the manifest.
    policies: BTreeMap<String, Policy>,
    /// Largest window end retention has dropped, per series. A subset of
    /// `floors` (retention bumps both); kept separately so coverage can
    /// tell *expired* history from merely compacted history, and persisted
    /// so recovery reproduces the watermark even when retention removed
    /// the newest windows.
    retention_floors: BTreeMap<(String, u16), u64>,
    manifest_sequence: u64,
}

#[derive(Debug, Default)]
struct Counters {
    ingested: AtomicU64,
    rollups: AtomicU64,
    compaction_passes: AtomicU64,
    retention_passes: AtomicU64,
    expired_windows: AtomicU64,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    recovered_windows: AtomicU64,
    orphans_removed: AtomicU64,
    temp_files_swept: AtomicU64,
}

/// The store's metric registry plus pre-resolved hot-path handles. Fixed
/// cells are resolved once at open; per-dataset cache counters arrive at
/// runtime, so they are memoized in a map and the query path pays one
/// `RwLock` read instead of a registry lock per request.
#[derive(Debug)]
struct StoreObs {
    registry: Arc<Registry>,
    compactions: Arc<ObsCounter>,
    compaction_ns: Arc<ObsHistogram>,
    segment_hydrations: Arc<ObsCounter>,
    retention_passes: Arc<ObsCounter>,
    expired_windows: Arc<ObsCounter>,
    datasets: RwLock<HashMap<String, CacheCells>>,
}

/// Per-dataset cache hit/miss counter handles.
#[derive(Debug, Clone)]
struct CacheCells {
    hits: Arc<ObsCounter>,
    misses: Arc<ObsCounter>,
}

impl StoreObs {
    fn new(registry: Arc<Registry>) -> StoreObs {
        StoreObs {
            compactions: registry.counter("sas_store_compactions_total"),
            compaction_ns: registry.histogram("sas_store_compaction_ns"),
            segment_hydrations: registry.counter("sas_store_segment_hydrations_total"),
            retention_passes: registry.counter("sas_store_retention_passes_total"),
            expired_windows: registry.counter("sas_store_expired_windows_total"),
            datasets: RwLock::new(HashMap::new()),
            registry,
        }
    }
}

/// The concurrent summary catalog. See the crate docs for the design.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    snapshot: RwLock<Arc<Snapshot>>,
    writer: Mutex<WriterState>,
    cache: QueryCache,
    counters: Counters,
    obs: StoreObs,
}

impl Store {
    /// Opens (or creates) a store directory, sweeping crash debris,
    /// replaying the manifest, and removing orphaned frames.
    pub fn open(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Store, StoreError> {
        let recovery_started = Instant::now();
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io(dir.clone(), e))?;
        let swept = fsio::remove_temp_files(&dir).map_err(|e| StoreError::Io(dir.clone(), e))?;

        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            let bytes =
                fs::read(&manifest_path).map_err(|e| StoreError::Io(manifest_path.clone(), e))?;
            Manifest::decode(&bytes)?
        } else {
            Manifest::default()
        };

        let mut windows = BTreeMap::new();
        let mut writer = WriterState {
            manifest_sequence: manifest.sequence,
            policies: manifest.policies.clone(),
            retention_floors: manifest.retention_floors.clone(),
            ..WriterState::default()
        };
        // Retention floors seed both the stale-ingest floor and the series
        // watermark: a dropped window proves the watermark had advanced at
        // least to its end, even when retention removed every window of
        // the series (nothing else on disk records that). This is what
        // makes retention and recovery commute bit-identically.
        for ((dataset, kind_tag), floor) in &manifest.retention_floors {
            bump_max(&mut writer.watermarks, (dataset.clone(), *kind_tag), *floor);
            bump_max(&mut writer.floors, (dataset.clone(), *kind_tag), *floor);
        }
        // Read every frame first, then batch-decode: recovery touches the
        // disk in one sequential sweep and the decode loop stays tight.
        // Segment files stay *mapped*: their validation pass walks the map
        // once (warming the page cache) and the window serves queries in
        // place with no heap copy until a merge hydrates it.
        enum Slot {
            Segment(Box<dyn Summary>, u64),
            Frame(usize),
        }
        let mut slots = Vec::with_capacity(manifest.entries.len());
        let mut frames = Vec::new();
        let mut mapped_windows = 0u64;
        for entry in &manifest.entries {
            let path = frame_path(&dir, &entry.key);
            let buf = mapped::Mapped::open(&path).map_err(|e| StoreError::Io(path, e))?;
            if is_segment(buf.as_ref()) {
                let len = buf.len() as u64;
                let seg = SegmentSummary::open(Arc::new(buf))?;
                slots.push(Slot::Segment(Box::new(seg), len));
                mapped_windows += 1;
            } else {
                frames.push(buf.as_ref().to_vec());
                slots.push(Slot::Frame(frames.len() - 1));
            }
        }
        let mut summaries = decode_summaries(&frames)?;
        // Drain v1 summaries back into entry order (reverse so the vec
        // pops match the ascending frame indices).
        let mut resolved: Vec<(Box<dyn Summary>, u64)> = Vec::with_capacity(slots.len());
        for slot in slots.into_iter().rev() {
            resolved.push(match slot {
                Slot::Segment(summary, len) => (summary, len),
                Slot::Frame(i) => {
                    let bytes = frames[i].len() as u64;
                    (summaries.pop().expect("one summary per frame"), bytes)
                }
            });
        }
        resolved.reverse();
        for (entry, (summary, bytes)) in manifest.entries.iter().zip(resolved) {
            if summary.kind() != entry.key.kind {
                return Err(StoreError::BadRequest(format!(
                    "manifest says {} holds a {} summary, file holds {}",
                    entry.key,
                    entry.key.kind,
                    summary.kind()
                )));
            }
            let series = series_of(&entry.key);
            let end = entry.key.end();
            bump_max(&mut writer.watermarks, series.clone(), end);
            if entry.key.level != Level::Minute {
                bump_max(&mut writer.floors, series, end);
            }
            windows.insert(
                entry.key.clone(),
                Arc::new(WindowState {
                    key: entry.key.clone(),
                    summary,
                    batches: entry.batches,
                    frame_bytes: bytes,
                }),
            );
        }

        // Orphans: frame files on disk the manifest does not name (debris
        // of a crash between a roll-up's frame writes and its child
        // deletions). The manifest is authoritative; sweep them.
        let expected: std::collections::HashSet<PathBuf> =
            windows.keys().map(|k| frame_path(&dir, k)).collect();
        let mut orphans = 0;
        for path in fsio::walk_files(&dir).map_err(|e| StoreError::Io(dir.clone(), e))? {
            if path == manifest_path || expected.contains(&path) {
                continue;
            }
            fs::remove_file(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
            orphans += 1;
        }

        let store = Store {
            dir,
            cache: QueryCache::new(config.cache_capacity),
            config,
            snapshot: RwLock::new(Arc::new(Snapshot {
                version: 1,
                windows,
                retention_floors: manifest.retention_floors.clone(),
            })),
            writer: Mutex::new(writer),
            counters: Counters::default(),
            obs: StoreObs::new(Arc::new(Registry::new())),
        };
        let recovered = manifest.entries.len() as u64;
        store
            .counters
            .recovered_windows
            .store(recovered, Ordering::Relaxed);
        store
            .counters
            .orphans_removed
            .store(orphans, Ordering::Relaxed);
        store
            .counters
            .temp_files_swept
            .store(swept, Ordering::Relaxed);
        let recovery_ns = recovery_started.elapsed().as_nanos() as u64;
        let obs = &store.obs.registry;
        obs.counter("sas_store_recovery_ns").record_max(recovery_ns);
        obs.counter("sas_store_recovered_windows").add(recovered);
        obs.counter("sas_store_recovered_windows_mapped")
            .add(mapped_windows);
        obs.counter("sas_store_recovered_windows_hydrated")
            .add(recovered - mapped_windows);
        slog!(
            LogLevel::Info,
            "store_opened",
            windows = recovered,
            mapped = mapped_windows,
            orphans_removed = orphans,
            temp_files_swept = swept,
            recovery_ms = recovery_ns / 1_000_000
        );
        Ok(store)
    }

    /// The store's metric registry. The daemon snapshots this for
    /// `REQ_METRICS` and registers its own connection/request metrics in
    /// it, so one report covers the whole process.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// Memoized per-dataset cache hit/miss counter handles. Unvalidated
    /// dataset strings (queries do not reject them) collapse into one
    /// `"_invalid"` label so hostile names cannot mint unbounded metrics
    /// or smuggle quotes into the exposition format.
    fn cache_cells(&self, dataset: &str) -> CacheCells {
        let dataset = if valid_dataset(dataset) {
            dataset
        } else {
            "_invalid"
        };
        if let Some(cells) = self.obs.datasets.read().expect("obs lock").get(dataset) {
            return cells.clone();
        }
        let cells = CacheCells {
            hits: self.obs.registry.counter(&format!(
                "sas_store_cache_hits_total{{dataset=\"{dataset}\"}}"
            )),
            misses: self.obs.registry.counter(&format!(
                "sas_store_cache_misses_total{{dataset=\"{dataset}\"}}"
            )),
        };
        self.obs
            .datasets
            .write()
            .expect("obs lock")
            .entry(dataset.to_string())
            .or_insert(cells)
            .clone()
    }

    /// [`hydrate_clone`] with the hydration counted when it actually
    /// transforms a mapped segment into its owned form.
    fn hydrate_counted(&self, summary: &dyn Summary) -> Box<dyn Summary> {
        if summary.as_any().downcast_ref::<SegmentSummary>().is_some() {
            self.obs.segment_hydrations.inc();
        }
        hydrate_clone(summary)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current catalog snapshot (lock-free to use; the read lock is
    /// held only for the `Arc` clone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshot.read().expect("snapshot lock").clone()
    }

    /// Merges a batch summary into the minute window containing `ts`,
    /// persists the window and manifest, and publishes a new snapshot.
    /// Returns the updated window.
    pub fn ingest(
        &self,
        dataset: &str,
        ts: u64,
        batch: Box<dyn Summary>,
    ) -> Result<Arc<WindowState>, StoreError> {
        if !valid_dataset(dataset) {
            return Err(StoreError::BadRequest(format!(
                "invalid dataset name '{dataset}' (want [A-Za-z0-9_-]+, at most 128 chars)"
            )));
        }
        let key = WindowKey::minute(dataset, batch.kind(), ts);
        let mut writer = self.writer.lock().expect("writer lock");
        let series = series_of(&key);
        let floor = writer.floors.get(&series).copied().unwrap_or(0);
        if key.start < floor {
            return Err(StoreError::Stale { key, floor });
        }

        let snap = self.snapshot();
        // Policy budget clamps apply to ingest-time merges: a per-kind
        // entry overrides the store-wide budget for this dataset. Roll-ups
        // keep the store budget so compaction stays bit-identical to the
        // offline rebuild.
        let budget = writer
            .policies
            .get(dataset)
            .and_then(|p| p.per_kind_budget.get(&key.kind.tag()))
            .map(|&b| b as usize)
            .or(self.config.budget);
        let (summary, batches) = match snap.windows.get(&key) {
            None => (batch, 1),
            Some(existing) => {
                let mut merged = self.hydrate_counted(existing.summary.as_ref());
                // Seed from the window plus its batch counter: replaying
                // the same ingest sequence reproduces the same window.
                let mut rng = StdRng::seed_from_u64(
                    window_seed(&key).wrapping_add(existing.batches.wrapping_mul(GOLDEN)),
                );
                merged.merge_in_place(batch, budget, &mut rng)?;
                (merged, existing.batches + 1)
            }
        };

        let bytes = encode_summary(summary.as_ref());
        let path = frame_path(&self.dir, &key);
        fsio::write_atomic(&path, &bytes).map_err(|e| StoreError::Io(path, e))?;

        let state = Arc::new(WindowState {
            key: key.clone(),
            summary,
            batches,
            frame_bytes: bytes.len() as u64,
        });
        let mut windows = snap.windows.clone();
        windows.insert(key.clone(), state.clone());
        // The watermark advances before the manifest write so the
        // persisted lifecycle state can never lag the windows it governs.
        bump_max(&mut writer.watermarks, series, key.end());
        self.persist_and_publish(&mut writer, windows, snap.version)?;
        self.counters.ingested.fetch_add(1, Ordering::Relaxed);
        Ok(state)
    }

    /// Answers a value-only range query from the current snapshot, through
    /// the LRU cache — the legacy `REQ_QUERY` path, kept bit-identical for
    /// old clients. New code should prefer [`Store::estimate`].
    pub fn query(
        &self,
        dataset: &str,
        kind: SummaryKind,
        range: &[(u64, u64)],
        time: Option<(u64, u64)>,
    ) -> QueryAnswer {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let snap = self.snapshot();
        // An unencodable range (reversed bounds) cannot be cached; answer
        // it directly (range_sum treats it as empty, preserving the old
        // behaviour).
        let cache_key = Query::BoxRange(range.to_vec())
            .canonical_bytes()
            .ok()
            .map(|query| CacheKey {
                version: snap.version,
                dataset: dataset.to_string(),
                kind_tag: kind.tag(),
                query,
                confidence_bits: PLAIN_CONFIDENCE,
                time,
            });
        if let Some(key) = &cache_key {
            if let Some(CachedAnswer::Plain(value, windows)) = self.cache.get(key) {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.cache_cells(dataset).hits.inc();
                return QueryAnswer {
                    value,
                    windows,
                    cached: true,
                    version: snap.version,
                };
            }
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.cache_cells(dataset).misses.inc();
        let (value, windows) = snap.query(dataset, kind, range, time);
        if let Some(key) = cache_key {
            self.cache.put(key, CachedAnswer::Plain(value, windows));
        }
        QueryAnswer {
            value,
            windows,
            cached: false,
            version: snap.version,
        }
    }

    /// Answers a query with error bounds from the current snapshot,
    /// through the LRU cache. The cache key is the query's **canonical**
    /// form, so equivalent spellings share one entry.
    pub fn estimate(
        &self,
        dataset: &str,
        kind: SummaryKind,
        query: &Query,
        confidence: f64,
        time: Option<(u64, u64)>,
    ) -> Result<EstimateAnswer, StoreError> {
        self.estimate_on(&self.snapshot(), dataset, kind, query, confidence, time)
    }

    /// [`Store::estimate`] plus a gap report, both computed against the
    /// *same* snapshot: the answer can never describe one catalog state
    /// and the coverage another. The estimate goes through the LRU cache
    /// exactly like the plain tag, so old and new clients polling the same
    /// canonical query read bit-identical values.
    pub fn estimate_with_coverage(
        &self,
        dataset: &str,
        kind: SummaryKind,
        query: &Query,
        confidence: f64,
        time: Option<(u64, u64)>,
    ) -> Result<(EstimateAnswer, Coverage), StoreError> {
        let snap = self.snapshot();
        let answer = self.estimate_on(&snap, dataset, kind, query, confidence, time)?;
        Ok((answer, snap.coverage(dataset, kind, time)))
    }

    /// The shared estimate path: cache lookup, snapshot answer, cache
    /// fill — against the snapshot the caller pinned.
    fn estimate_on(
        &self,
        snap: &Snapshot,
        dataset: &str,
        kind: SummaryKind,
        query: &Query,
        confidence: f64,
        time: Option<(u64, u64)>,
    ) -> Result<EstimateAnswer, StoreError> {
        let bad = |e: QueryError| StoreError::BadRequest(e.to_string());
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let cache_key = CacheKey {
            version: snap.version,
            dataset: dataset.to_string(),
            kind_tag: kind.tag(),
            query: query.canonical_bytes().map_err(bad)?,
            confidence_bits: confidence.to_bits(),
            time,
        };
        if let Some(CachedAnswer::Estimate(estimate, windows)) = self.cache.get(&cache_key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.cache_cells(dataset).hits.inc();
            return Ok(EstimateAnswer {
                estimate,
                windows,
                cached: true,
                version: snap.version,
            });
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.cache_cells(dataset).misses.inc();
        let (estimate, windows) = snap
            .estimate(dataset, kind, query, confidence, time)
            .map_err(bad)?;
        self.cache
            .put(cache_key, CachedAnswer::Estimate(estimate, windows));
        Ok(EstimateAnswer {
            estimate,
            windows,
            cached: false,
            version: snap.version,
        })
    }

    /// Lists the catalog's windows in key order.
    pub fn list(&self) -> Vec<wire::WindowRow> {
        self.snapshot()
            .windows
            .values()
            .map(|w| wire::WindowRow {
                key: w.key.clone(),
                items: w.summary.item_count() as u64,
                batches: w.batches,
                frame_bytes: w.frame_bytes,
            })
            .collect()
    }

    /// Store statistics as ordered name/value pairs (also the `stats`
    /// protocol response).
    pub fn stats(&self) -> Vec<(String, u64)> {
        let snap = self.snapshot();
        let per_level =
            |level: Level| snap.windows.keys().filter(|k| k.level == level).count() as u64;
        let items: u64 = snap
            .windows
            .values()
            .map(|w| w.summary.item_count() as u64)
            .sum();
        let bytes: u64 = snap.windows.values().map(|w| w.frame_bytes).sum();
        let level_bytes = |level: Level| -> u64 {
            snap.windows
                .values()
                .filter(|w| w.key.level == level)
                .map(|w| w.frame_bytes)
                .sum()
        };
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("windows".into(), snap.windows.len() as u64),
            ("minute_windows".into(), per_level(Level::Minute)),
            ("hour_windows".into(), per_level(Level::Hour)),
            ("day_windows".into(), per_level(Level::Day)),
            ("items".into(), items),
            ("frame_bytes".into(), bytes),
            ("minute_frame_bytes".into(), level_bytes(Level::Minute)),
            ("hour_frame_bytes".into(), level_bytes(Level::Hour)),
            ("day_frame_bytes".into(), level_bytes(Level::Day)),
            ("snapshot_version".into(), snap.version),
            ("ingested_batches".into(), get(&c.ingested)),
            ("rollups".into(), get(&c.rollups)),
            ("compaction_passes".into(), get(&c.compaction_passes)),
            ("retention_passes".into(), get(&c.retention_passes)),
            ("expired_windows".into(), get(&c.expired_windows)),
            ("queries".into(), get(&c.queries)),
            ("cache_hits".into(), get(&c.cache_hits)),
            ("cache_misses".into(), get(&c.cache_misses)),
            ("cache_entries".into(), self.cache.len() as u64),
            ("recovered_windows".into(), get(&c.recovered_windows)),
            ("orphans_removed".into(), get(&c.orphans_removed)),
            ("temp_files_swept".into(), get(&c.temp_files_swept)),
        ]
    }

    /// Runs one compaction pass: every sealed parent window (its span
    /// entirely below the series watermark) absorbs its children via the
    /// deterministic merge tree. Returns the number of roll-ups performed.
    pub fn compact_once(&self) -> Result<usize, StoreError> {
        let pass_started = Instant::now();
        let mut writer = self.writer.lock().expect("writer lock");
        self.counters
            .compaction_passes
            .fetch_add(1, Ordering::Relaxed);
        self.obs.compactions.inc();
        let snap = self.snapshot();
        let mut windows = snap.windows.clone();
        let mut doomed_paths: Vec<PathBuf> = Vec::new();
        let mut rollups = 0usize;
        // One arena serves every roll-up of the pass: the merge scratch is
        // allocated once, not once per merge (bit-identical either way).
        let mut arena = MergeArena::new();

        // Minute→hour first so freshly built hours can cascade into days
        // within the same pass.
        for level in [Level::Minute, Level::Hour] {
            let mut groups: BTreeMap<WindowKey, Vec<Arc<WindowState>>> = BTreeMap::new();
            for (key, state) in windows.iter().filter(|(k, _)| k.level == level) {
                let parent = key.parent().expect("minute/hour have parents");
                let watermark = writer.watermarks.get(&series_of(key)).copied().unwrap_or(0);
                // Policy cadence: the dataset may delay sealing until the
                // watermark has advanced `compact_after` ticks past the
                // parent's end (late batches keep landing in minutes).
                let delay = writer
                    .policies
                    .get(&key.dataset)
                    .and_then(|p| p.compact_after)
                    .unwrap_or(0);
                if parent.end().saturating_add(delay) <= watermark {
                    // BTreeMap iteration is key-ordered, so children arrive
                    // in ascending window-start order — the rebuild order.
                    groups.entry(parent).or_default().push(state.clone());
                }
            }
            for (parent_key, children) in groups {
                let batches: u64 = children.iter().map(|c| c.batches).sum();
                let merged = rebuild_parent_with(
                    &parent_key,
                    children
                        .iter()
                        .map(|c| self.hydrate_counted(c.summary.as_ref()))
                        .collect(),
                    self.config.budget,
                    &mut arena,
                )?;
                let bytes = encode_summary(merged.as_ref());
                let path = frame_path(&self.dir, &parent_key);
                fsio::write_atomic(&path, &bytes).map_err(|e| StoreError::Io(path, e))?;
                for child in &children {
                    windows.remove(&child.key);
                    doomed_paths.push(frame_path(&self.dir, &child.key));
                }
                bump_max(&mut writer.floors, series_of(&parent_key), parent_key.end());
                windows.insert(
                    parent_key.clone(),
                    Arc::new(WindowState {
                        key: parent_key.clone(),
                        summary: merged,
                        batches,
                        frame_bytes: bytes.len() as u64,
                    }),
                );
                rollups += 1;
            }
        }

        if rollups > 0 {
            self.persist_and_publish(&mut writer, windows, snap.version)?;
            // Child frames go last: if we crash before this point the
            // manifest no longer names them and open() sweeps them as
            // orphans.
            for path in doomed_paths {
                fs::remove_file(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
            }
            self.counters
                .rollups
                .fetch_add(rollups as u64, Ordering::Relaxed);
        }
        let elapsed = pass_started.elapsed();
        self.obs.compaction_ns.record_duration(elapsed);
        if rollups > 0 {
            slog!(
                LogLevel::Debug,
                "compaction_pass",
                rollups = rollups,
                us = elapsed.as_micros()
            );
        }
        Ok(rollups)
    }

    /// Runs one retention pass: every window whose span has fallen
    /// `retention_ttl` ticks behind its series watermark is dropped from
    /// the manifest and its frame deleted. "Now" is the watermark — the
    /// largest window end ever ingested — never the wall clock, so the
    /// pass is a pure function of the ingest history: replaying the same
    /// ingests and ticks reproduces the same store bit-for-bit.
    ///
    /// Ordering is the compaction crash contract in reverse: the manifest
    /// (no longer naming the expired windows, now carrying their retention
    /// floor) is written *first*, frame deletion second — a crash between
    /// the two leaves orphans that `open()` sweeps. Dropped spans also
    /// raise the series ingest floor, so an expired tick can never be
    /// re-ingested (which would make retention order observable).
    /// Returns the number of windows dropped.
    pub fn retain_once(&self) -> Result<usize, StoreError> {
        let mut writer = self.writer.lock().expect("writer lock");
        self.counters
            .retention_passes
            .fetch_add(1, Ordering::Relaxed);
        self.obs.retention_passes.inc();
        let snap = self.snapshot();
        let mut windows = snap.windows.clone();
        let mut doomed_paths: Vec<PathBuf> = Vec::new();
        let mut expired = 0usize;
        for key in snap.windows.keys() {
            let Some(ttl) = writer
                .policies
                .get(&key.dataset)
                .and_then(|p| p.retention_ttl)
            else {
                continue;
            };
            let series = series_of(key);
            let watermark = writer.watermarks.get(&series).copied().unwrap_or(0);
            if key.end().saturating_add(ttl) <= watermark {
                windows.remove(key);
                doomed_paths.push(frame_path(&self.dir, key));
                let floor = writer.retention_floors.entry(series.clone()).or_insert(0);
                *floor = (*floor).max(key.end());
                bump_max(&mut writer.floors, series, key.end());
                expired += 1;
            }
        }
        if expired > 0 {
            self.persist_and_publish(&mut writer, windows, snap.version)?;
            for path in doomed_paths {
                fs::remove_file(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
            }
            self.counters
                .expired_windows
                .fetch_add(expired as u64, Ordering::Relaxed);
            self.obs.expired_windows.add(expired as u64);
            slog!(LogLevel::Debug, "retention_pass", expired = expired);
        }
        Ok(expired)
    }

    /// One deterministic lifecycle tick: retention first (expired minutes
    /// must not be sealed into parents), then compaction. The daemon's
    /// event loop drives this on its timer; offline tools may call it
    /// directly — the result depends only on the store state, not on who
    /// ticks or when.
    pub fn lifecycle_tick(&self) -> Result<LifecycleStats, StoreError> {
        let expired = self.retain_once()?;
        let rollups = self.compact_once()?;
        Ok(LifecycleStats { expired, rollups })
    }

    /// Installs (or, for an empty policy, clears) a dataset's lifecycle
    /// policy and persists it in the manifest. Takes effect from the next
    /// ingest / lifecycle tick; nothing is retro-actively re-merged.
    pub fn set_policy(&self, dataset: &str, policy: Policy) -> Result<(), StoreError> {
        if !valid_dataset(dataset) {
            return Err(StoreError::BadRequest(format!(
                "invalid dataset name '{dataset}' (want [A-Za-z0-9_-]+, at most 128 chars)"
            )));
        }
        // The manifest decoder rejects unknown kinds and zero budgets;
        // refuse to persist what recovery could not read back.
        for (&tag, &budget) in &policy.per_kind_budget {
            if SummaryKind::from_tag(tag).is_none() {
                return Err(StoreError::BadRequest(format!(
                    "policy budget names unknown summary kind tag {tag}"
                )));
            }
            if budget == 0 {
                return Err(StoreError::BadRequest(
                    "policy budget must be at least 1".into(),
                ));
            }
        }
        let mut writer = self.writer.lock().expect("writer lock");
        let snap = self.snapshot();
        if policy.is_empty() {
            writer.policies.remove(dataset);
        } else {
            writer.policies.insert(dataset.to_string(), policy);
        }
        self.persist_and_publish(&mut writer, snap.windows.clone(), snap.version)
    }

    /// The installed policy for one dataset, if any.
    pub fn policy(&self, dataset: &str) -> Option<Policy> {
        self.writer
            .lock()
            .expect("writer lock")
            .policies
            .get(dataset)
            .cloned()
    }

    /// All installed policies, in dataset order.
    pub fn policies(&self) -> Vec<(String, Policy)> {
        self.writer
            .lock()
            .expect("writer lock")
            .policies
            .iter()
            .map(|(d, p)| (d.clone(), p.clone()))
            .collect()
    }

    /// Rewrites every stored-sample window's frame in the requested format
    /// and publishes the converted catalog. `SegmentV2` leaves each
    /// converted window **cold**: its summary becomes a mapped
    /// [`SegmentSummary`] served in place from the new file. `FrameV1`
    /// hydrates segments back to owned summaries and v1 frames. Windows
    /// whose kind has no segment layout (the deterministic summaries) are
    /// left untouched either way. Returns the number of windows rewritten.
    pub fn convert(&self, format: StorageFormat) -> Result<usize, StoreError> {
        let mut writer = self.writer.lock().expect("writer lock");
        let snap = self.snapshot();
        let mut windows = snap.windows.clone();
        let mut converted = 0usize;
        for (key, state) in &snap.windows {
            let is_seg = state
                .summary
                .as_any()
                .downcast_ref::<SegmentSummary>()
                .is_some();
            let (bytes, summary): (Vec<u8>, Box<dyn Summary>) = match format {
                StorageFormat::SegmentV2 => {
                    if is_seg {
                        continue;
                    }
                    let Some(bytes) = encode_segment(state.summary.as_ref()) else {
                        continue;
                    };
                    let path = frame_path(&self.dir, key);
                    fsio::write_atomic(&path, &bytes)
                        .map_err(|e| StoreError::Io(path.clone(), e))?;
                    let buf = mapped::Mapped::open(&path).map_err(|e| StoreError::Io(path, e))?;
                    let seg = SegmentSummary::open(Arc::new(buf))?;
                    (bytes, Box::new(seg))
                }
                StorageFormat::FrameV1 => {
                    if !is_seg {
                        continue;
                    }
                    let summary = self.hydrate_counted(state.summary.as_ref());
                    let bytes = encode_summary(summary.as_ref());
                    let path = frame_path(&self.dir, key);
                    fsio::write_atomic(&path, &bytes).map_err(|e| StoreError::Io(path, e))?;
                    (bytes, summary)
                }
            };
            windows.insert(
                key.clone(),
                Arc::new(WindowState {
                    key: key.clone(),
                    summary,
                    batches: state.batches,
                    frame_bytes: bytes.len() as u64,
                }),
            );
            converted += 1;
        }
        if converted > 0 {
            self.persist_and_publish(&mut writer, windows, snap.version)?;
        }
        Ok(converted)
    }

    /// Writes the manifest for `windows` and swaps in the new snapshot.
    /// Callers must hold the writer lock (enforced by the `&mut
    /// WriterState` borrow).
    fn persist_and_publish(
        &self,
        writer: &mut WriterState,
        windows: BTreeMap<WindowKey, Arc<WindowState>>,
        prev_version: u64,
    ) -> Result<(), StoreError> {
        writer.manifest_sequence += 1;
        let manifest = Manifest {
            sequence: writer.manifest_sequence,
            entries: windows
                .values()
                .map(|w| ManifestEntry {
                    key: w.key.clone(),
                    batches: w.batches,
                    frame_bytes: w.frame_bytes,
                })
                .collect(),
            policies: writer.policies.clone(),
            retention_floors: writer.retention_floors.clone(),
        };
        let path = self.dir.join(MANIFEST_FILE);
        fsio::write_atomic(&path, &manifest.encode()).map_err(|e| StoreError::Io(path, e))?;
        let next = Arc::new(Snapshot {
            version: prev_version + 1,
            windows,
            retention_floors: writer.retention_floors.clone(),
        });
        *self.snapshot.write().expect("snapshot lock") = next;
        Ok(())
    }
}

/// What one [`Store::lifecycle_tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Windows dropped by retention.
    pub expired: usize,
    /// Roll-ups performed by compaction.
    pub rollups: usize,
}

/// The multiplier spreading a window's batch counter into its merge seed.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// On-disk encoding for stored-sample windows, chosen by [`Store::convert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFormat {
    /// The original framed encoding (`sas-codec` v1 frames).
    FrameV1,
    /// The columnar segment encoding, queryable in place when mapped.
    SegmentV2,
}

/// Clones a window summary for mutation: mapped segments hydrate into
/// their owned form (a segment is immutable and cannot merge in place),
/// everything else is a plain `clone_box`. Hydration and a v1 decode of
/// the same data are bit-identical, so merge results do not depend on
/// which format the window happened to be stored in.
pub fn hydrate_clone(summary: &dyn Summary) -> Box<dyn Summary> {
    match summary.as_any().downcast_ref::<SegmentSummary>() {
        Some(seg) => seg.hydrate(),
        None => summary.clone_box(),
    }
}

/// Rebuilds a parent window from its children — the *definition* of what
/// compaction must produce: child summaries in ascending window order,
/// merged bottom-up by [`sas_summaries::merge_tree`] under the parent's
/// deterministic seed. Offline verification decodes persisted child frames
/// and calls this; the result is bit-identical to the store's own roll-up.
pub fn rebuild_parent(
    parent: &WindowKey,
    children: Vec<Box<dyn Summary>>,
    budget: Option<usize>,
) -> Result<Box<dyn Summary>, StoreError> {
    rebuild_parent_with(parent, children, budget, &mut MergeArena::new())
}

/// [`rebuild_parent`] with caller-provided merge scratch — bit-identical
/// to it for any arena state. The compaction loop threads one arena
/// through every roll-up of a pass.
pub fn rebuild_parent_with(
    parent: &WindowKey,
    children: Vec<Box<dyn Summary>>,
    budget: Option<usize>,
    arena: &mut MergeArena,
) -> Result<Box<dyn Summary>, StoreError> {
    let mut rng = StdRng::seed_from_u64(window_seed(parent));
    Ok(merge_tree_with(children, budget, &mut rng, arena)?)
}

/// On-disk location of a window's frame.
pub fn frame_path(dir: &Path, key: &WindowKey) -> PathBuf {
    dir.join(&key.dataset)
        .join(key.kind.name())
        .join(key.level.name())
        .join(format!("{}.sas", key.start))
}

fn series_of(key: &WindowKey) -> (String, u16) {
    (key.dataset.clone(), key.kind.tag())
}

fn bump_max(map: &mut HashMap<(String, u16), u64>, series: (String, u16), value: u64) {
    let slot = map.entry(series).or_insert(0);
    *slot = (*slot).max(value);
}

/// Handle to the background lifecycle thread; stops and joins on drop.
/// The daemon drives [`Store::lifecycle_tick`] from its event loop instead;
/// this thread serves embedded users of the store.
#[derive(Debug)]
pub struct Compactor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawns a thread running [`Store::lifecycle_tick`] every `interval`.
    pub fn start(store: Arc<Store>, interval: Duration) -> Compactor {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("sas-store-compactor".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut stopped = lock.lock().expect("compactor lock");
                loop {
                    let (guard, _) = cvar
                        .wait_timeout(stopped, interval)
                        .expect("compactor wait");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    // Lifecycle failures must not kill the thread; the
                    // next pass retries (the store itself stays valid —
                    // snapshots only swap after a full successful pass).
                    if let Err(e) = store.lifecycle_tick() {
                        slog!(LogLevel::Warn, "lifecycle_tick_failed", err = e);
                    }
                    stopped = lock.lock().expect("compactor lock");
                }
            })
            .expect("spawn compactor");
        Compactor {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("compactor lock") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}
