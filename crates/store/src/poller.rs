//! Readiness polling for the non-blocking daemon: a thin, std-only
//! abstraction over `epoll` (Linux) with a portable `poll(2)` fallback.
//!
//! The daemon needs exactly three operations — register a socket with an
//! interest set, wait for readiness, change interest — so this module
//! exposes exactly those, plus a [`Waker`] other threads use to interrupt a
//! wait. Both backends are level-triggered: an event repeats every wait
//! until the condition is consumed, so a handler that reads or writes less
//! than everything available is re-driven on the next tick instead of
//! hanging.
//!
//! No external crates: the `epoll`/`poll` entry points are declared here
//! against the libc that `std` already links. On non-Linux Unix only the
//! `poll` backend compiles; [`Poller::new`] picks the best backend for the
//! platform and [`Poller::new_poll`] forces the portable one (exercised in
//! tests on every platform so the fallback cannot rot).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A readiness event: the registered token plus what the fd is ready for.
///
/// `error` covers both error and hang-up conditions; the owner should try
/// the I/O (which reports the precise error) and drop the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// Ready for reading (or a peer close is pending).
    pub readable: bool,
    /// Ready for writing.
    pub writable: bool,
    /// Error or hang-up condition.
    pub error: bool,
}

/// The interest set for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report readable events.
    pub readable: bool,
    /// Report writable events.
    pub writable: bool,
}

impl Interest {
    /// No interest: only error/hang-up conditions are reported. Used for
    /// parked connections (pipeline full) so a level-triggered backlog of
    /// unread bytes cannot spin the loop.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// Which readiness backend a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// `epoll` where available (Linux), otherwise `poll`.
    #[default]
    Auto,
    /// Always the portable `poll(2)` backend.
    Poll,
}

enum Impl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollfds::PollSet),
}

/// A readiness poller over non-blocking fds.
pub struct Poller {
    inner: Impl,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => "Poller(epoll)",
            Impl::Poll(_) => "Poller(poll)",
        })
    }
}

impl Poller {
    /// Creates a poller on the platform's best backend.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller {
                inner: Impl::Epoll(epoll::Epoll::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::new_poll()
        }
    }

    /// Creates a poller on the portable `poll(2)` backend.
    pub fn new_poll() -> io::Result<Poller> {
        Ok(Poller {
            inner: Impl::Poll(pollfds::PollSet::new()),
        })
    }

    /// Creates a poller on the requested backend.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            Backend::Auto => Poller::new(),
            Backend::Poll => Poller::new_poll(),
        }
    }

    /// Starts watching `fd` under `token`. One registration per fd.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.register(fd, token, interest),
            Impl::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes the interest set of a registered fd.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.reregister(fd, token, interest),
            Impl::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    /// Stops watching a registered fd. Must be called **before** the fd is
    /// closed (both backends key bookkeeping by fd).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.deregister(fd),
            Impl::Poll(p) => p.deregister(fd),
        }
    }

    /// Waits for readiness, appending events to `events` (cleared first).
    /// `None` blocks until an event arrives; `Some(d)` returns (possibly
    /// empty) after at most roughly `d`. A wait interrupted by a signal
    /// returns empty rather than erroring.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.wait(events, timeout),
            Impl::Poll(p) => p.wait(events, timeout),
        }
    }
}

/// Rounds a timeout up to whole milliseconds for the C APIs (`None` → -1 =
/// block forever). Rounding *up* keeps sub-millisecond timeouts from
/// spinning at 0.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .try_into()
            .unwrap_or(i32::MAX),
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! The Linux backend: one `epoll` instance, O(ready) waits.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    // epoll_event carries a packed 12-byte layout on x86-64; on other
    // targets the natural C layout matches the kernel ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Capacity of the per-wait event buffer; more ready fds than this
    /// simply surface on the next (level-triggered) wait.
    const WAIT_CAPACITY: usize = 1024;

    pub(super) struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_CAPACITY],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = 0;
            if interest.readable {
                // EPOLLRDHUP distinguishes a peer half-close from silence,
                // so an abandoned connection surfaces without a read. It
                // rides the read interest: a parked connection (empty
                // mask) must not be woken by a condition it won't consume.
                m |= EPOLLIN | EPOLLRDHUP;
            }
            if interest.writable {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: Self::mask(interest),
                    data: token,
                }),
            )
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: Self::mask(interest),
                    data: token,
                }),
            )
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    super::timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let token = ev.data;
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

mod pollfds {
    //! The portable backend: a maintained `pollfd` array, O(registered)
    //! waits. Fine for hundreds of fds; Linux gets epoll for thousands.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short};
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    pub(super) struct PollSet {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
        index: std::collections::HashMap<RawFd, usize>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                fds: Vec::new(),
                tokens: Vec::new(),
                index: std::collections::HashMap::new(),
            }
        }

        fn mask(interest: Interest) -> c_short {
            let mut m = 0;
            if interest.readable {
                m |= POLLIN;
            }
            if interest.writable {
                m |= POLLOUT;
            }
            m
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("fd {fd} already registered"),
                ));
            }
            self.index.insert(fd, self.fds.len());
            self.fds.push(PollFd {
                fd,
                events: Self::mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        fn slot(&self, fd: RawFd) -> io::Result<usize> {
            self.index.get(&fd).copied().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("fd {fd} not registered"))
            })
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let i = self.slot(fd)?;
            self.fds[i].events = Self::mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self.slot(fd)?;
            self.index.remove(&fd);
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            if i < self.fds.len() {
                self.index.insert(self.fds[i].fd, i);
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let n = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as NFds,
                    super::timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &token) in self.fds.iter().zip(&self.tokens) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    error: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// Wakes a [`Poller`] parked in [`Poller::wait`] from another thread.
///
/// A socketpair in disguise: the read end lives in the poller's interest
/// set under a caller-chosen token; [`Waker::wake`] makes it readable.
/// Cloneable and cheap — every worker thread holds one.
#[derive(Debug)]
pub struct Waker {
    write: UnixStream,
    read: UnixStream,
}

impl Waker {
    /// Creates the pair. The caller must register
    /// [`Waker::read_fd`] with read interest.
    pub fn new() -> io::Result<Waker> {
        let (write, read) = UnixStream::pair()?;
        write.set_nonblocking(true)?;
        read.set_nonblocking(true)?;
        Ok(Waker { write, read })
    }

    /// The fd to register with the poller (read interest).
    pub fn read_fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Interrupts the poller. Coalesces: waking an already-woken poller is
    /// a no-op (the pipe simply stays readable).
    pub fn wake(&self) {
        // WouldBlock means a wake is already pending — exactly what we
        // want. Any other error means the poller is gone; nothing to do.
        let _ = (&self.write).write(&[1]);
    }

    /// Drains pending wake bytes. Call when the wake token fires.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.read).read(&mut buf) {
            if n == 0 {
                return;
            }
        }
    }

    /// A handle other threads use to wake this poller.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            write: self.write.try_clone()?,
        })
    }
}

/// A cloneable cross-thread wake handle (see [`Waker::handle`]).
#[derive(Debug)]
pub struct WakeHandle {
    write: UnixStream,
}

impl WakeHandle {
    /// Interrupts the poller (coalescing, never blocking).
    pub fn wake(&self) {
        let _ = (&self.write).write(&[1]);
    }
}

impl Clone for WakeHandle {
    fn clone(&self) -> Self {
        WakeHandle {
            write: self.write.try_clone().expect("clone wake handle"),
        }
    }
}

/// Tracks desired vs registered interest so the event loop only issues
/// `reregister` syscalls when the interest set actually changes.
#[derive(Debug)]
pub struct InterestCache {
    current: HashMap<RawFd, Interest>,
}

impl InterestCache {
    /// An empty cache.
    pub fn new() -> InterestCache {
        InterestCache {
            current: HashMap::new(),
        }
    }

    /// Registers `fd` and remembers its interest.
    pub fn register(
        &mut self,
        poller: &mut Poller,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        poller.register(fd, token, interest)?;
        self.current.insert(fd, interest);
        Ok(())
    }

    /// Reregisters only if `interest` differs from what the poller has.
    /// Returns whether a syscall was actually issued (`false`: elided —
    /// the metric the event loop uses to show the cache earns its keep).
    pub fn ensure(
        &mut self,
        poller: &mut Poller,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<bool> {
        if self.current.get(&fd) == Some(&interest) {
            return Ok(false);
        }
        poller.reregister(fd, token, interest)?;
        self.current.insert(fd, interest);
        Ok(true)
    }

    /// Deregisters and forgets `fd`.
    pub fn deregister(&mut self, poller: &mut Poller, fd: RawFd) -> io::Result<()> {
        self.current.remove(&fd);
        poller.deregister(fd)
    }
}

impl Default for InterestCache {
    fn default() -> Self {
        InterestCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        vec![Poller::new().unwrap(), Poller::new_poll().unwrap()]
    }

    #[test]
    fn readable_event_fires_on_both_backends() {
        for mut poller in backends() {
            let (mut tx, rx) = pair();
            poller.register(rx.as_raw_fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} idle");
            tx.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(events.len(), 1, "{poller:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
        }
    }

    #[test]
    fn writable_event_fires_when_interest_added() {
        for mut poller in backends() {
            let (tx, _rx) = pair();
            poller.register(tx.as_raw_fd(), 3, Interest::READ).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} no write interest yet");
            poller
                .reregister(tx.as_raw_fd(), 4, Interest::BOTH)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(events.len(), 1, "{poller:?}");
            assert_eq!(events[0].token, 4, "token updated by reregister");
            assert!(events[0].writable);
        }
    }

    #[test]
    fn level_triggered_events_repeat_until_consumed() {
        for mut poller in backends() {
            let (mut tx, mut rx) = pair();
            poller.register(rx.as_raw_fd(), 1, Interest::READ).unwrap();
            tx.write_all(b"abc").unwrap();
            let mut events = Vec::new();
            for round in 0..3 {
                poller
                    .wait(&mut events, Some(Duration::from_millis(1000)))
                    .unwrap();
                assert_eq!(events.len(), 1, "{poller:?} round {round}");
            }
            let mut buf = [0u8; 8];
            let n = rx.read(&mut buf).unwrap();
            assert_eq!(n, 3);
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?} consumed");
        }
    }

    #[test]
    fn deregistered_fd_reports_nothing() {
        for mut poller in backends() {
            let (mut tx, rx) = pair();
            poller.register(rx.as_raw_fd(), 9, Interest::READ).unwrap();
            tx.write_all(b"x").unwrap();
            poller.deregister(rx.as_raw_fd()).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?}");
        }
    }

    #[test]
    fn peer_close_surfaces_as_readable() {
        // EOF must wake the loop (it reads 0 and reaps the connection).
        for mut poller in backends() {
            let (tx, rx) = pair();
            poller.register(rx.as_raw_fd(), 2, Interest::READ).unwrap();
            drop(tx);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(events.len(), 1, "{poller:?}");
            assert!(events[0].readable, "{poller:?} close looks readable");
        }
    }

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        for backend in [Backend::Auto, Backend::Poll] {
            let mut poller = Poller::with_backend(backend).unwrap();
            let waker = Waker::new().unwrap();
            poller
                .register(waker.read_fd(), u64::MAX, Interest::READ)
                .unwrap();
            let handle = waker.handle().unwrap();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                handle.wake();
            });
            let start = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert!(start.elapsed() < Duration::from_secs(10));
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, u64::MAX);
            waker.drain();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "drained waker is quiet");
            t.join().unwrap();
        }
    }

    #[test]
    fn waker_wakes_coalesce() {
        let waker = Waker::new().unwrap();
        for _ in 0..10_000 {
            waker.wake(); // must never block, even with no reader
        }
        waker.drain();
        let mut poller = Poller::new().unwrap();
        poller.register(waker.read_fd(), 0, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timeout_expires_without_events() {
        for mut poller in backends() {
            let (_tx, rx) = pair();
            poller.register(rx.as_raw_fd(), 5, Interest::READ).unwrap();
            let start = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(events.is_empty(), "{poller:?}");
            assert!(start.elapsed() >= Duration::from_millis(25), "{poller:?}");
        }
    }

    #[test]
    fn poll_backend_survives_swap_remove_aliasing() {
        // Deregistering from the middle swap-removes the last entry into
        // the hole; its index entry must follow it.
        let mut poller = Poller::new_poll().unwrap();
        let pairs: Vec<_> = (0..4).map(|_| pair()).collect();
        for (i, (_tx, rx)) in pairs.iter().enumerate() {
            poller
                .register(rx.as_raw_fd(), i as u64, Interest::READ)
                .unwrap();
        }
        poller.deregister(pairs[1].1.as_raw_fd()).unwrap();
        let mut tx3 = &pairs[3].0;
        tx3.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 3, "token followed the moved entry");
    }

    #[test]
    fn interest_cache_skips_redundant_reregisters() {
        let mut poller = Poller::new().unwrap();
        let mut cache = InterestCache::new();
        let (mut tx, rx) = pair();
        cache
            .register(&mut poller, rx.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        // ensure() with the same interest is an elided no-op (cannot error
        // even if the fd were gone); with a different set it takes effect
        // and reports that a syscall was issued.
        let reregistered = cache
            .ensure(&mut poller, rx.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        assert!(!reregistered, "unchanged interest must be elided");
        let reregistered = cache
            .ensure(&mut poller, rx.as_raw_fd(), 1, Interest::BOTH)
            .unwrap();
        assert!(reregistered, "changed interest must reach the poller");
        tx.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable && events[0].writable);
        cache.deregister(&mut poller, rx.as_raw_fd()).unwrap();
        assert!(cache
            .ensure(&mut poller, rx.as_raw_fd(), 1, Interest::READ)
            .is_err());
    }

    #[test]
    fn double_register_rejected_by_poll_backend() {
        let mut poller = Poller::new_poll().unwrap();
        let (_tx, rx) = pair();
        poller.register(rx.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(poller.register(rx.as_raw_fd(), 2, Interest::READ).is_err());
        assert!(poller.deregister(rx.as_raw_fd()).is_ok());
        assert!(poller.deregister(rx.as_raw_fd()).is_err());
    }

    #[test]
    fn timeout_ms_rounds_up_and_clamps() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_nanos(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(
            timeout_ms(Some(Duration::from_micros(1500))),
            2,
            "sub-millisecond remainder rounds up"
        );
        assert_eq!(timeout_ms(Some(Duration::from_secs(u64::MAX))), i32::MAX);
    }
}
