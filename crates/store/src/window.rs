//! Time windows: the `(dataset, kind, level, start)` coordinate every
//! summary in the catalog lives at, and the deterministic per-window RNG
//! seed that makes compaction replayable.

use std::cmp::Ordering;
use std::fmt;

use sas_summaries::SummaryKind;

/// Window granularity. Ingest always lands in [`Level::Minute`] windows;
/// compaction rolls sealed minutes into hours and sealed hours into days.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// 60-tick windows — the ingest granularity.
    Minute,
    /// 3600-tick windows — first roll-up.
    Hour,
    /// 86400-tick windows — final roll-up.
    Day,
}

impl Level {
    /// Window length in ticks (the store is unit-agnostic; seconds by
    /// convention).
    pub fn span(self) -> u64 {
        match self {
            Level::Minute => 60,
            Level::Hour => 3_600,
            Level::Day => 86_400,
        }
    }

    /// The coarser level this one compacts into, if any.
    pub fn parent(self) -> Option<Level> {
        match self {
            Level::Minute => Some(Level::Hour),
            Level::Hour => Some(Level::Day),
            Level::Day => None,
        }
    }

    /// Stable name (also the on-disk directory name).
    pub fn name(self) -> &'static str {
        match self {
            Level::Minute => "minute",
            Level::Hour => "hour",
            Level::Day => "day",
        }
    }

    /// Stable wire tag (manifest and protocol).
    pub fn tag(self) -> u8 {
        match self {
            Level::Minute => 0,
            Level::Hour => 1,
            Level::Day => 2,
        }
    }

    /// Inverse of [`Level::tag`].
    pub fn from_tag(tag: u8) -> Option<Level> {
        match tag {
            0 => Some(Level::Minute),
            1 => Some(Level::Hour),
            2 => Some(Level::Day),
            _ => None,
        }
    }

    /// All levels, finest first (the compaction scan order).
    pub fn all() -> [Level; 3] {
        [Level::Minute, Level::Hour, Level::Day]
    }

    /// The start of the window at this level containing tick `ts`.
    pub fn window_start(self, ts: u64) -> u64 {
        ts - ts % self.span()
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Catalog coordinate of one window summary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowKey {
    /// Dataset name (path-safe: `[A-Za-z0-9_-]+`).
    pub dataset: String,
    /// Summary kind of the series.
    pub kind: SummaryKind,
    /// Window granularity.
    pub level: Level,
    /// Window start tick (a multiple of `level.span()`).
    pub start: u64,
}

impl WindowKey {
    /// The minute window an ingest at tick `ts` lands in.
    pub fn minute(dataset: &str, kind: SummaryKind, ts: u64) -> WindowKey {
        WindowKey {
            dataset: dataset.to_string(),
            kind,
            level: Level::Minute,
            start: Level::Minute.window_start(ts),
        }
    }

    /// First tick after the window.
    pub fn end(&self) -> u64 {
        self.start + self.level.span()
    }

    /// The key of the parent window this one compacts into.
    pub fn parent(&self) -> Option<WindowKey> {
        self.level.parent().map(|level| WindowKey {
            dataset: self.dataset.clone(),
            kind: self.kind,
            level,
            start: level.window_start(self.start),
        })
    }

    /// Whether the window's tick span intersects `[t0, t1]` (closed).
    pub fn overlaps(&self, t0: u64, t1: u64) -> bool {
        self.start <= t1 && t0 < self.end()
    }
}

impl Ord for WindowKey {
    fn cmp(&self, other: &Self) -> Ordering {
        (
            self.dataset.as_str(),
            self.kind.tag(),
            self.level,
            self.start,
        )
            .cmp(&(
                other.dataset.as_str(),
                other.kind.tag(),
                other.level,
                other.start,
            ))
    }
}

impl PartialOrd for WindowKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for WindowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.dataset, self.kind, self.level, self.start
        )
    }
}

/// Whether a dataset name is safe to embed in a file path.
pub fn valid_dataset(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Deterministic RNG seed for a window's merges (FNV-1a over the key
/// fields, finished with a splitmix64 scramble). Compaction and its offline
/// rebuild both seed from here, which is what makes them bit-identical.
pub fn window_seed(key: &WindowKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(key.dataset.as_bytes());
    eat(&[0]); // field separator: "ab"+"c" must not collide with "a"+"bc"
    eat(&key.kind.tag().to_le_bytes());
    eat(&[key.level.tag()]);
    eat(&key.start.to_le_bytes());
    // splitmix64 finalizer: spreads the FNV state across all 64 bits.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_nest() {
        assert_eq!(Level::Minute.parent(), Some(Level::Hour));
        assert_eq!(Level::Hour.parent(), Some(Level::Day));
        assert_eq!(Level::Day.parent(), None);
        for l in Level::all() {
            assert_eq!(Level::from_tag(l.tag()), Some(l));
            if let Some(p) = l.parent() {
                assert_eq!(p.span() % l.span(), 0, "{l} must divide {p}");
            }
        }
        assert_eq!(Level::from_tag(9), None);
    }

    #[test]
    fn window_math() {
        let k = WindowKey::minute("web", SummaryKind::Sample, 3725);
        assert_eq!(k.start, 3720);
        assert_eq!(k.end(), 3780);
        let p = k.parent().unwrap();
        assert_eq!((p.level, p.start), (Level::Hour, 3600));
        let d = p.parent().unwrap();
        assert_eq!((d.level, d.start), (Level::Day, 0));
        assert!(k.overlaps(3700, 3750));
        assert!(k.overlaps(3779, 9999));
        assert!(!k.overlaps(3780, 9999));
        assert!(!k.overlaps(0, 3719));
    }

    #[test]
    fn boundary_alignment_at_epoch_edges() {
        // Tick 0 is its own minute, hour, and day boundary.
        for l in Level::all() {
            assert_eq!(l.window_start(0), 0);
            assert_eq!(l.window_start(l.span() - 1), 0);
            assert_eq!(l.window_start(l.span()), l.span());
        }
        // The last tick of a day belongs to that day at every level.
        let last = 86_400 - 1;
        assert_eq!(Level::Minute.window_start(last), 86_340);
        assert_eq!(Level::Hour.window_start(last), 82_800);
        assert_eq!(Level::Day.window_start(last), 0);
        // One tick later everything rolls over together.
        for l in Level::all() {
            assert_eq!(l.window_start(86_400), 86_400);
        }
        // Minute → hour → day nesting: a child window never straddles its
        // parent's boundary (ticks, not civil time — no DST to worry about).
        for ts in [
            0,
            59,
            60,
            3_599,
            3_600,
            86_399,
            86_400,
            90_061,
            253_402_300_799,
        ] {
            let m = WindowKey::minute("web", SummaryKind::Sample, ts);
            let h = m.parent().unwrap();
            let d = h.parent().unwrap();
            assert!(
                h.start <= m.start && m.end() <= h.end(),
                "minute in hour at {ts}"
            );
            assert!(
                d.start <= h.start && h.end() <= d.end(),
                "hour in day at {ts}"
            );
            assert_eq!(m.start % 60, 0);
            assert_eq!(h.start % 3_600, 0);
            assert_eq!(d.start % 86_400, 0);
        }
        // window_start is idempotent and never overflows at u64::MAX.
        for l in Level::all() {
            let s = l.window_start(u64::MAX);
            assert_eq!(l.window_start(s), s);
            assert!(s <= u64::MAX - (u64::MAX % l.span()));
        }
    }

    #[test]
    fn dataset_validation() {
        assert!(valid_dataset("web-requests_2026"));
        assert!(!valid_dataset(""));
        assert!(!valid_dataset("a/b"));
        assert!(!valid_dataset("a b"));
        assert!(!valid_dataset("..\u{2603}"));
        assert!(!valid_dataset(&"x".repeat(200)));
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let k = WindowKey::minute("web", SummaryKind::Sample, 120);
        // Pinned value: the seed is part of the reproducibility contract —
        // a changed hash silently breaks compaction-vs-rebuild identity
        // across versions.
        assert_eq!(window_seed(&k), window_seed(&k));
        let mut seen = std::collections::HashSet::new();
        for ds in ["a", "b", "ab"] {
            for ts in [0, 60, 120] {
                for kind in [SummaryKind::Sample, SummaryKind::QDigest] {
                    seen.insert(window_seed(&WindowKey::minute(ds, kind, ts)));
                }
            }
        }
        assert_eq!(seen.len(), 18, "seed collisions across distinct windows");
        // The separator defeats concatenation collisions.
        let a = WindowKey::minute("ab", SummaryKind::Sample, 0);
        let b = WindowKey::minute("a", SummaryKind::Sample, 0);
        assert_ne!(window_seed(&a), window_seed(&b));
    }
}
