//! Read-only file buffers for cold segment windows: `mmap` on Linux, a
//! plain read-into-`Vec` everywhere else.
//!
//! A v2 segment (`sas_codec::segment`) is queryable in place, so a cold
//! window's bytes never need to live on the heap — [`Mapped::open`] maps
//! the file and the catalog serves estimates straight off the page cache.
//! Like [`crate::poller`], the single syscall pair is declared here against
//! the libc that `std` already links; no external crates. The portable
//! fallback ([`Mapped::open_buffered`]) is exercised in tests on every
//! platform so it cannot rot.

use std::fs;
use std::io;
use std::path::Path;

/// An immutable byte buffer backed by either a private file mapping or an
/// owned `Vec`. Dereferences to the file's bytes either way; dropping it
/// unmaps or frees them.
#[derive(Debug)]
pub struct Mapped {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Owned(Vec<u8>),
    #[cfg(target_os = "linux")]
    Map(mmap::Mapping),
}

impl Mapped {
    /// Opens `path` with the best backend for the platform: a read-only
    /// `MAP_PRIVATE` mapping on Linux, [`Mapped::open_buffered`] elsewhere.
    /// Empty files skip the mapping (zero-length `mmap` is an error).
    pub fn open(path: &Path) -> io::Result<Mapped> {
        #[cfg(target_os = "linux")]
        {
            let file = fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Mapped {
                    inner: Inner::Owned(Vec::new()),
                });
            }
            let mapping = mmap::Mapping::new(&file, len as usize)?;
            Ok(Mapped {
                inner: Inner::Map(mapping),
            })
        }
        #[cfg(not(target_os = "linux"))]
        Self::open_buffered(path)
    }

    /// Opens `path` by reading it into an owned buffer — the portable
    /// fallback, also useful when the caller intends to mutate or outlive
    /// the file.
    pub fn open_buffered(path: &Path) -> io::Result<Mapped> {
        Ok(Mapped {
            inner: Inner::Owned(fs::read(path)?),
        })
    }

    /// Whether the bytes come from a file mapping (false for the buffered
    /// fallback and for empty files).
    pub fn is_mapped(&self) -> bool {
        match self.inner {
            Inner::Owned(_) => false,
            #[cfg(target_os = "linux")]
            Inner::Map(_) => true,
        }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AsRef<[u8]> for Mapped {
    fn as_ref(&self) -> &[u8] {
        match &self.inner {
            Inner::Owned(v) => v,
            #[cfg(target_os = "linux")]
            Inner::Map(m) => m.as_slice(),
        }
    }
}

#[cfg(target_os = "linux")]
mod mmap {
    //! The Linux backend: one `mmap`/`munmap` pair.

    use std::ffi::c_void;
    use std::fs;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::c_int;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x02;
    const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

    /// A read-only private mapping of a whole file. `len` is always
    /// non-zero (the caller special-cases empty files).
    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is PROT_READ and never written through; sharing the
    // pointer across threads is as safe as sharing a `&[u8]`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub fn new(file: &fs::File, len: usize) -> io::Result<Mapping> {
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            // Safety: the pointer spans `len` readable bytes for the
            // mapping's lifetime; MAP_PRIVATE isolates us from concurrent
            // truncation of the *content* (though not of the file length —
            // the store only maps files it wrote atomically and never
            // truncates in place).
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl std::fmt::Debug for Mapping {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mapping").field("len", &self.len).finish()
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(name: &str, bytes: &[u8]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("sas-mapped-test-{}-{name}", std::process::id()));
        fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_bytes_match_file() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("match", &payload);
        let mapped = Mapped::open(&path).unwrap();
        assert_eq!(mapped.as_ref(), &payload[..]);
        assert_eq!(mapped.len(), payload.len());
        assert!(!mapped.is_empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffered_fallback_matches_mapping() {
        let payload = b"portable fallback".to_vec();
        let path = temp_file("fallback", &payload);
        let mapped = Mapped::open(&path).unwrap();
        let buffered = Mapped::open_buffered(&path).unwrap();
        assert!(!buffered.is_mapped());
        assert_eq!(mapped.as_ref(), buffered.as_ref());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_opens_without_mapping() {
        let path = temp_file("empty", b"");
        let mapped = Mapped::open(&path).unwrap();
        assert!(!mapped.is_mapped());
        assert!(mapped.is_empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        let path = std::env::temp_dir().join("sas-mapped-test-definitely-missing");
        assert!(Mapped::open(&path).is_err());
        assert!(Mapped::open_buffered(&path).is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_open_uses_a_real_mapping() {
        let path = temp_file("real-map", b"mapped");
        let mapped = Mapped::open(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.as_ref(), b"mapped");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mapped>();
    }
}
