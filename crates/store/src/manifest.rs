//! The store manifest: the single source of truth for which window frames
//! a store directory contains.
//!
//! The manifest is itself a `sas-codec` frame (tag
//! [`sas_codec::proto::TAG_MANIFEST`]) written atomically after every
//! mutation, *after* the frames it references — so at any crash point the
//! manifest only ever names frames that are fully on disk. Files present
//! but unlisted are compaction/crash orphans and are swept on open.

use std::collections::BTreeMap;

use sas_codec::{encode_frame, open_frame, proto, CodecError, Reader, Writer};
use sas_summaries::SummaryKind;

use crate::policy::Policy;
use crate::window::{Level, WindowKey};

/// One manifest row: a window's key plus the writer state needed to resume
/// it (batch counter for deterministic ingest-merge seeds) and its frame
/// size for integrity checking.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// The window's catalog coordinate.
    pub key: WindowKey,
    /// Batches merged into the window so far.
    pub batches: u64,
    /// Size of the window's frame file in bytes.
    pub frame_bytes: u64,
}

/// The decoded manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Monotonic write counter (diagnostics; bumped every rewrite).
    pub sequence: u64,
    /// All live windows, in key order.
    pub entries: Vec<ManifestEntry>,
    /// Installed lifecycle policies, keyed by dataset. Absent from
    /// pre-lifecycle manifests; those decode to an empty map.
    pub policies: BTreeMap<String, Policy>,
    /// Retention floors per `(dataset, kind-tag)` series: the largest
    /// window end retention has dropped so far. Persisted so recovery
    /// reproduces the series watermark and stale-ingest floor even when
    /// retention removed the newest windows — the invariant behind
    /// retention/recovery commutativity.
    pub retention_floors: BTreeMap<(String, u16), u64>,
}

impl Manifest {
    /// Serializes the manifest as a frame. Stores that never used
    /// lifecycle features encode byte-identically to the pre-lifecycle
    /// format: the policy and floor sections are appended only when one of
    /// them is non-empty.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(proto::TAG_MANIFEST, |w| {
            w.section(1, |w| {
                w.put_u64(self.sequence);
            });
            w.section(2, |w| {
                w.put_u64(self.entries.len() as u64);
                for e in &self.entries {
                    write_entry(w, e);
                }
            });
            if !self.policies.is_empty() || !self.retention_floors.is_empty() {
                w.section(3, |w| {
                    w.put_u64(self.policies.len() as u64);
                    for (dataset, policy) in &self.policies {
                        w.put_str(dataset);
                        policy.write_wire(w);
                    }
                });
                w.section(4, |w| {
                    w.put_u64(self.retention_floors.len() as u64);
                    for ((dataset, kind_tag), floor) in &self.retention_floors {
                        w.put_str(dataset);
                        w.put_u16(*kind_tag);
                        w.put_u64(*floor);
                    }
                });
            }
        })
    }

    /// Decodes a manifest frame (never panics on corrupted input).
    pub fn decode(bytes: &[u8]) -> Result<Manifest, CodecError> {
        let mut frame = open_frame(bytes)?;
        if frame.kind != proto::TAG_MANIFEST {
            return Err(CodecError::UnknownKind(frame.kind));
        }
        let mut meta = frame.body.expect_section(1)?;
        let sequence = meta.get_u64()?;
        meta.finish()?;
        let mut sec = frame.body.expect_section(2)?;
        // Smallest possible entry: 1-byte dataset + fixed fields.
        let n = sec.get_len(8 + 1 + 2 + 1 + 8 + 8 + 8)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(read_entry(&mut sec)?);
        }
        sec.finish()?;
        let mut policies = BTreeMap::new();
        let mut retention_floors = BTreeMap::new();
        // Pre-lifecycle manifests end here; newer ones carry two more
        // sections.
        if frame.body.remaining() > 0 {
            let mut sec = frame.body.expect_section(3)?;
            // Smallest policy row: 1-byte dataset + two option flags + an
            // empty budget map.
            let n = sec.get_len(8 + 1 + 1 + 1 + 8)?;
            let mut prev: Option<String> = None;
            for _ in 0..n {
                let dataset = read_dataset(&mut sec)?;
                if prev.as_deref().is_some_and(|p| p >= dataset.as_str()) {
                    return Err(CodecError::Invalid("manifest policies out of order".into()));
                }
                let policy = Policy::read_wire(&mut sec)?;
                if policy.is_empty() {
                    return Err(CodecError::Invalid(format!(
                        "manifest carries an empty policy for '{dataset}'"
                    )));
                }
                prev = Some(dataset.clone());
                policies.insert(dataset, policy);
            }
            sec.finish()?;
            let mut sec = frame.body.expect_section(4)?;
            let n = sec.get_len(8 + 1 + 2 + 8)?;
            let mut prev: Option<(String, u16)> = None;
            for _ in 0..n {
                let dataset = read_dataset(&mut sec)?;
                let kind_tag = sec.get_u16()?;
                if SummaryKind::from_tag(kind_tag).is_none() {
                    return Err(CodecError::UnknownKind(kind_tag));
                }
                let key = (dataset, kind_tag);
                if prev.as_ref().is_some_and(|p| p >= &key) {
                    return Err(CodecError::Invalid("manifest floors out of order".into()));
                }
                let floor = sec.get_u64()?;
                if floor == 0 {
                    return Err(CodecError::Invalid("manifest floor of zero".into()));
                }
                prev = Some(key.clone());
                retention_floors.insert(key, floor);
            }
            sec.finish()?;
        }
        frame.body.finish()?;
        Ok(Manifest {
            sequence,
            entries,
            policies,
            retention_floors,
        })
    }
}

/// Reads and validates a dataset name (manifest rows must never drive
/// frame paths outside the store directory).
fn read_dataset(r: &mut Reader<'_>) -> Result<String, CodecError> {
    let dataset = r.get_str()?;
    if !crate::window::valid_dataset(&dataset) {
        return Err(CodecError::Invalid(format!(
            "manifest dataset '{dataset}' is not a valid dataset name"
        )));
    }
    Ok(dataset)
}

fn write_entry(w: &mut Writer, e: &ManifestEntry) {
    w.put_str(&e.key.dataset);
    w.put_u16(e.key.kind.tag());
    w.put_u8(e.key.level.tag());
    w.put_u64(e.key.start);
    w.put_u64(e.batches);
    w.put_u64(e.frame_bytes);
}

fn read_entry(r: &mut Reader<'_>) -> Result<ManifestEntry, CodecError> {
    // Re-establish the ingest-time invariant on the recovery path: a
    // crafted or foreign manifest must not be able to point frame paths
    // outside the store directory (e.g. dataset "..").
    let dataset = read_dataset(r)?;
    let kind_tag = r.get_u16()?;
    let kind = SummaryKind::from_tag(kind_tag).ok_or(CodecError::UnknownKind(kind_tag))?;
    let level_tag = r.get_u8()?;
    let level = Level::from_tag(level_tag)
        .ok_or_else(|| CodecError::Invalid(format!("unknown window level {level_tag}")))?;
    let start = r.get_u64()?;
    if start % level.span() != 0 {
        return Err(CodecError::Invalid(format!(
            "window start {start} is not aligned to a {level} span"
        )));
    }
    let batches = r.get_u64()?;
    let frame_bytes = r.get_u64()?;
    Ok(ManifestEntry {
        key: WindowKey {
            dataset,
            kind,
            level,
            start,
        },
        batches,
        frame_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            sequence: 17,
            entries: vec![
                ManifestEntry {
                    key: WindowKey {
                        dataset: "web".into(),
                        kind: SummaryKind::Sample,
                        level: Level::Minute,
                        start: 120,
                    },
                    batches: 3,
                    frame_bytes: 999,
                },
                ManifestEntry {
                    key: WindowKey {
                        dataset: "web".into(),
                        kind: SummaryKind::Sample,
                        level: Level::Hour,
                        start: 0,
                    },
                    batches: 60,
                    frame_bytes: 12345,
                },
            ],
            policies: BTreeMap::new(),
            retention_floors: BTreeMap::new(),
        }
    }

    fn sample_with_lifecycle() -> Manifest {
        let mut m = sample();
        m.policies.insert(
            "web".into(),
            Policy {
                compact_after: Some(60),
                retention_ttl: Some(7200),
                per_kind_budget: [(SummaryKind::Sample.tag(), 64)].into_iter().collect(),
            },
        );
        m.retention_floors
            .insert(("web".into(), SummaryKind::Sample.tag()), 3600);
        m
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        // Empty manifests are valid too.
        let empty = Manifest::default();
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
        // And manifests carrying lifecycle state.
        let m = sample_with_lifecycle();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn pre_lifecycle_manifests_still_decode() {
        // A manifest without sections 3/4 — exactly what every store wrote
        // before policies existed — decodes to empty lifecycle state, and a
        // store that never used lifecycle features re-encodes to the same
        // bytes (no silent format drift for old stores).
        let m = sample();
        let old = m.encode();
        let decoded = Manifest::decode(&old).unwrap();
        assert!(decoded.policies.is_empty());
        assert!(decoded.retention_floors.is_empty());
        assert_eq!(decoded.encode(), old);
    }

    #[test]
    fn lifecycle_sections_corruption_rejected() {
        let bytes = sample_with_lifecycle().encode();
        for len in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..len]).is_err(), "prefix {len}");
        }
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(Manifest::decode(&corrupt).is_err(), "bit {bit}");
        }
    }

    #[test]
    fn hostile_lifecycle_rows_rejected() {
        // Policy for an invalid dataset name, unsorted policy rows, an
        // empty policy, a zero floor, an unknown floor kind: each must be
        // rejected structurally, not just by CRC.
        let base = |f: &mut dyn FnMut(&mut sas_codec::Writer)| {
            encode_frame(proto::TAG_MANIFEST, |w| {
                w.section(1, |w| w.put_u64(1));
                w.section(2, |w| w.put_u64(0));
                f(w);
            })
        };
        let ttl_policy = |w: &mut sas_codec::Writer| {
            w.put_u8(0);
            w.put_u8(1);
            w.put_u64(60);
            w.put_u64(0);
        };
        let cases: Vec<Vec<u8>> = vec![
            base(&mut |w| {
                w.section(3, |w| {
                    w.put_u64(1);
                    w.put_str("..");
                    ttl_policy(w);
                });
                w.section(4, |w| w.put_u64(0));
            }),
            base(&mut |w| {
                w.section(3, |w| {
                    w.put_u64(2);
                    w.put_str("b");
                    ttl_policy(w);
                    w.put_str("a");
                    ttl_policy(w);
                });
                w.section(4, |w| w.put_u64(0));
            }),
            base(&mut |w| {
                w.section(3, |w| {
                    w.put_u64(1);
                    w.put_str("a");
                    w.put_u8(0);
                    w.put_u8(0);
                    w.put_u64(0);
                });
                w.section(4, |w| w.put_u64(0));
            }),
            base(&mut |w| {
                w.section(3, |w| w.put_u64(0));
                w.section(4, |w| {
                    w.put_u64(1);
                    w.put_str("a");
                    w.put_u16(SummaryKind::Sample.tag());
                    w.put_u64(0);
                });
            }),
            base(&mut |w| {
                w.section(3, |w| w.put_u64(0));
                w.section(4, |w| {
                    w.put_u64(1);
                    w.put_str("a");
                    w.put_u16(0xFFFF);
                    w.put_u64(60);
                });
            }),
        ];
        for (i, bytes) in cases.iter().enumerate() {
            assert!(Manifest::decode(bytes).is_err(), "case {i}");
        }
    }

    #[test]
    fn corruption_is_rejected_not_panicking() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..len]).is_err(), "prefix {len}");
        }
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(Manifest::decode(&corrupt).is_err(), "bit {bit}");
        }
    }

    #[test]
    fn summary_frames_are_not_manifests() {
        let frame = encode_frame(SummaryKind::Sample.tag(), |w| w.put_u64(0));
        assert!(matches!(
            Manifest::decode(&frame),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn path_traversal_dataset_rejected() {
        // A manifest naming dataset ".." must not drive frame paths
        // outside the store directory on recovery.
        for hostile in ["..", "../../etc", "a/b", ""] {
            let bytes = encode_frame(proto::TAG_MANIFEST, |w| {
                w.section(1, |w| w.put_u64(1));
                w.section(2, |w| {
                    w.put_u64(1);
                    w.put_str(hostile);
                    w.put_u16(SummaryKind::Sample.tag());
                    w.put_u8(Level::Minute.tag());
                    w.put_u64(0);
                    w.put_u64(0);
                    w.put_u64(0);
                });
            });
            // Non-empty hostile names reach the validity check (Invalid);
            // the empty name already dies at the section length floor.
            assert!(
                Manifest::decode(&bytes).is_err(),
                "dataset '{hostile}' must be rejected"
            );
        }
    }

    #[test]
    fn misaligned_start_rejected() {
        // Hand-build a manifest whose hour window starts mid-span.
        let bytes = encode_frame(proto::TAG_MANIFEST, |w| {
            w.section(1, |w| w.put_u64(1));
            w.section(2, |w| {
                w.put_u64(1);
                w.put_str("d");
                w.put_u16(SummaryKind::Sample.tag());
                w.put_u8(Level::Hour.tag());
                w.put_u64(1800);
                w.put_u64(0);
                w.put_u64(0);
            });
        });
        assert!(matches!(
            Manifest::decode(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }
}
